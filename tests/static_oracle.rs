//! Differential oracle for the static analyzer: the hand-authored IR
//! models are validated against the runtime (registrations and recorded
//! traces), and every `must` static diagnostic is confirmed by the
//! dynamic detector — the soundness contract behind `arbalest lint`.

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_ir::Program;
use arbalest_offload::events::DataOpKind;
use arbalest_offload::prelude::*;
use arbalest_offload::trace::{TraceEvent, TraceRecorder};
use arbalest_spec::Preset;
use arbalest_static::{analyze, Severity};
use std::collections::HashMap;
use std::sync::Arc;

/// All 61 (program, trace) pairs: 56 DRACC benchmarks plus the 5 SPEC
/// workloads at the Test preset.
fn corpus() -> Vec<(Program, Vec<TraceEvent>)> {
    let mut v = Vec::new();
    for b in arbalest_dracc::all() {
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        b.run(&rt);
        let model = arbalest_dracc::ir_models::ir_model(b.id).expect("model");
        v.push((model, rec.take()));
    }
    for w in arbalest_spec::workloads() {
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        (w.run)(&rt, Preset::Test);
        rt.taskwait();
        let model = arbalest_spec::ir_models::ir_model(w.name, Preset::Test).expect("model");
        v.push((model, rec.take()));
    }
    v
}

#[test]
fn ir_buffer_decls_match_runtime_registrations() {
    for (model, trace) in corpus() {
        let mut registered = 0usize;
        for ev in &trace {
            let TraceEvent::BufferRegistered(info) = ev else { continue };
            registered += 1;
            let id = model
                .buf_by_name(&info.name)
                .unwrap_or_else(|| panic!("{}: no decl for buffer '{}'", model.name, info.name));
            let decl = model.decl(id);
            assert_eq!(decl.elem_size, info.elem_size as u64, "{}: '{}'", model.name, info.name);
            assert_eq!(decl.len, info.len as u64, "{}: '{}'", model.name, info.name);
        }
        assert_eq!(
            registered,
            model.buffers.len(),
            "{}: every declared buffer is registered exactly once",
            model.name
        );
    }
}

/// Replaying a recorded trace must touch no buffer/section outside the
/// IR's may-sets: the IR is a sound over-approximation of the program.
#[test]
fn trace_accesses_stay_within_ir_may_sets() {
    for (model, trace) in corpus() {
        // OV geometry by buffer id, and live CV intervals by device.
        let mut ov: HashMap<BufferId, (String, u64, u64)> = HashMap::new();
        // (device, cv_base) -> (buffer, cv_len, byte offset of cv_base into the OV)
        let mut cv: HashMap<(DeviceId, u64), (BufferId, u64, u64)> = HashMap::new();
        for ev in &trace {
            match ev {
                TraceEvent::BufferRegistered(info) => {
                    ov.insert(info.id, (info.name.clone(), info.ov_base, info.byte_len()));
                }
                TraceEvent::DataOp(op) => match op.kind {
                    DataOpKind::CvAlloc => {
                        let (_, ov_base, _) = ov[&op.buffer];
                        cv.insert(
                            (op.device, op.cv_base),
                            (op.buffer, op.len, op.ov_addr - ov_base),
                        );
                    }
                    DataOpKind::CvDelete => {
                        cv.remove(&(op.device, op.cv_base));
                    }
                },
                TraceEvent::Access(a) => {
                    let Some(buf) = a.buffer else { continue };
                    if !a.mapped {
                        // A missing-map access has no CV to resolve
                        // against; it is its own (dynamic) bug class.
                        continue;
                    }
                    let (name, ov_base, ov_len) = ov[&buf].clone();
                    let off = if a.device.is_host() {
                        assert!(
                            a.addr >= ov_base && a.addr + a.size as u64 <= ov_base + ov_len,
                            "{}: host access to '{}' outside the OV",
                            model.name,
                            name
                        );
                        a.addr - ov_base
                    } else {
                        let (&(_, cv_base), &(_, _, sect_off)) = cv
                            .iter()
                            .find(|(&(dev, base), &(b, len, _))| {
                                dev == a.device
                                    && b == buf
                                    && a.addr >= base
                                    && a.addr + a.size as u64 <= base + len
                            })
                            .unwrap_or_else(|| {
                                panic!("{}: device access to '{}' outside any CV", model.name, name)
                            });
                        a.addr - cv_base + sect_off
                    };
                    assert!(
                        model.covers(&name, a.is_write, off, off + a.size as u64),
                        "{}: {} of '{}' bytes [{}, {}) not in the IR {}-cover",
                        model.name,
                        if a.is_write { "write" } else { "read" },
                        name,
                        off,
                        off + a.size as u64,
                        if a.is_write { "write" } else { "read" },
                    );
                }
                _ => {}
            }
        }
    }
}

/// Soundness: every `must` diagnostic from the static checker is
/// confirmed by a same-kind, same-buffer dynamic report, and the correct
/// programs draw no static diagnostic of any severity.
#[test]
fn static_must_diagnostics_are_confirmed_dynamically() {
    for b in arbalest_dracc::all() {
        let model = arbalest_dracc::ir_models::ir_model(b.id).expect("model");
        let diags = analyze(&model);
        if b.expected.is_none() {
            assert!(
                diags.is_empty(),
                "{}: static diagnostic on a correct benchmark: {:?}",
                b.dracc_id(),
                diags[0]
            );
            continue;
        }
        assert!(!diags.is_empty(), "{}: seeded bug not flagged", b.dracc_id());

        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default(), tool);
        b.run(&rt);
        let dynamic = rt.reports();
        for d in diags.iter().filter(|d| d.severity == Severity::Must) {
            assert!(
                dynamic
                    .iter()
                    .any(|r| r.kind == d.kind && r.buffer.as_deref() == Some(d.buffer.as_str())),
                "{}: must-diagnostic {:?} on '{}' has no dynamic confirmation",
                b.dracc_id(),
                d.kind,
                d.buffer
            );
        }
    }
    for w in arbalest_spec::workloads() {
        let model = arbalest_spec::ir_models::ir_model(w.name, Preset::Test).expect("model");
        assert!(analyze(&model).is_empty(), "{}: static diagnostic on a correct workload", w.name);
    }
}

/// The static and dynamic reports speak the same hint vocabulary: a
/// must-diagnostic's suggested fix matches a dynamic report's fix for
/// the same (kind, buffer) pair.
#[test]
fn static_and_dynamic_hints_share_a_vocabulary() {
    let mut compared = 0usize;
    for b in arbalest_dracc::buggy() {
        let model = arbalest_dracc::ir_models::ir_model(b.id).expect("model");
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default(), tool);
        b.run(&rt);
        let dynamic = rt.reports();
        for d in analyze(&model).iter().filter(|d| d.severity == Severity::Must) {
            for r in dynamic
                .iter()
                .filter(|r| r.kind == d.kind && r.buffer.as_deref() == Some(d.buffer.as_str()))
            {
                let dyn_fix = r.suggested_fix.as_deref().expect("dynamic hint");
                assert_eq!(dyn_fix, d.suggested_fix, "{}: hint mismatch", b.dracc_id());
                compared += 1;
            }
        }
    }
    assert!(compared >= 15, "every must-finding pair compared, got {compared}");
}
