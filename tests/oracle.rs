//! Property-based differential test: a reference oracle of the paper's
//! VSM semantics versus the real runtime + ARBALEST detector.
//!
//! A generator produces random sequences of offloading operations. An
//! oracle tracks the abstract (validity, initialisation) state of every
//! buffer under the paper's rules and classifies each candidate
//! operation as legal or as a specific violation.
//!
//! * Executing only the legal prefix must produce **zero** reports
//!   (no-false-positive property, §VI-C).
//! * Appending one oracle-illegal read must produce a report of exactly
//!   the oracle-predicted kind — UUM when the location was never
//!   initialised, USD when it is stale (completeness + classification).

use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

const NBUF: usize = 3;
const LEN: usize = 16;

#[derive(Debug, Clone, Copy)]
enum Op {
    HostWrite(usize),
    HostRead(usize),
    KernelWrite(usize),
    KernelRead(usize),
    EnterTo(usize),
    EnterAlloc(usize),
    ExitFrom(usize),
    ExitRelease(usize),
    UpdateTo(usize),
    UpdateFrom(usize),
}

/// Oracle state for one buffer (single accelerator).
#[derive(Debug, Clone, Copy, Default)]
struct ModelBuf {
    host_valid: bool,
    host_init: bool,
    cv: Option<Cv>,
    refcount: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Cv {
    valid: bool,
    init: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Verdict {
    Legal,
    /// Illegal read; true ⇒ UUM (never initialised), false ⇒ USD.
    IllegalRead(bool),
    /// Preconditions not met (e.g. kernel op without a CV): skip.
    Skip,
}

fn classify(m: &ModelBuf, op: Op) -> Verdict {
    match op {
        Op::HostWrite(_) => Verdict::Legal,
        Op::HostRead(_) => {
            if m.host_valid {
                Verdict::Legal
            } else {
                Verdict::IllegalRead(!m.host_init)
            }
        }
        Op::KernelWrite(_) => {
            if m.cv.is_some() {
                Verdict::Legal
            } else {
                Verdict::Skip
            }
        }
        Op::KernelRead(_) => match m.cv {
            Some(cv) if cv.valid => Verdict::Legal,
            Some(cv) => Verdict::IllegalRead(!cv.init),
            None => Verdict::Skip,
        },
        Op::EnterTo(_) | Op::EnterAlloc(_) => Verdict::Legal,
        Op::ExitFrom(_) | Op::ExitRelease(_) | Op::UpdateTo(_) | Op::UpdateFrom(_) => {
            if m.cv.is_some() {
                Verdict::Legal
            } else {
                Verdict::Skip
            }
        }
    }
}

/// Apply a legal operation to the oracle (mirrors Fig. 4 / Table I).
fn model_apply(m: &mut ModelBuf, op: Op) {
    match op {
        Op::HostWrite(_) => {
            m.host_valid = true;
            m.host_init = true;
            if let Some(cv) = &mut m.cv {
                cv.valid = false;
            }
        }
        Op::HostRead(_) | Op::KernelRead(_) => {}
        Op::KernelWrite(_) => {
            let cv = m.cv.as_mut().expect("classified");
            cv.valid = true;
            cv.init = true;
            m.host_valid = false;
        }
        Op::EnterTo(_) => {
            if m.cv.is_none() {
                m.cv = Some(Cv { valid: m.host_valid, init: m.host_init });
                m.refcount = 1;
            } else {
                m.refcount += 1;
            }
        }
        Op::EnterAlloc(_) => {
            if m.cv.is_none() {
                m.cv = Some(Cv { valid: false, init: false });
                m.refcount = 1;
            } else {
                m.refcount += 1;
            }
        }
        Op::ExitFrom(_) => {
            m.refcount = m.refcount.saturating_sub(1);
            if m.refcount == 0 {
                let cv = m.cv.take().expect("classified");
                m.host_valid = cv.valid;
                m.host_init = cv.init;
            }
        }
        Op::ExitRelease(_) => {
            m.refcount = m.refcount.saturating_sub(1);
            if m.refcount == 0 {
                m.cv = None;
            }
        }
        Op::UpdateTo(_) => {
            let host = (m.host_valid, m.host_init);
            let cv = m.cv.as_mut().expect("classified");
            cv.valid = host.0;
            cv.init = host.1;
        }
        Op::UpdateFrom(_) => {
            let cv = *m.cv.as_ref().expect("classified");
            m.host_valid = cv.valid;
            m.host_init = cv.init;
        }
    }
}

struct Harness {
    rt: Runtime,
    tool: Arc<Arbalest>,
    bufs: Vec<Buffer<f64>>,
}

impl Harness {
    fn new() -> Harness {
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default(), tool.clone());
        let bufs = (0..NBUF).map(|i| rt.alloc::<f64>(&format!("buf{i}"), LEN)).collect();
        Harness { rt, tool, bufs }
    }

    /// Execute one operation against the real runtime.
    fn exec(&self, op: Op) {
        let (rt, b) = (&self.rt, &self.bufs);
        match op {
            Op::HostWrite(i) => {
                for j in 0..LEN {
                    rt.write(&b[i], j, (i * LEN + j) as f64);
                }
            }
            Op::HostRead(i) => {
                let mut acc = 0.0;
                for j in 0..LEN {
                    acc += rt.read(&b[i], j);
                }
                std::hint::black_box(acc);
            }
            Op::KernelWrite(i) => {
                let buf = b[i];
                rt.target().map(Map::alloc(&buf)).run(move |k| {
                    k.for_each(0..LEN, |k, j| k.write(&buf, j, j as f64));
                });
            }
            Op::KernelRead(i) => {
                let buf = b[i];
                rt.target().map(Map::alloc(&buf)).run(move |k| {
                    k.for_each(0..LEN, |k, j| {
                        std::hint::black_box(k.read(&buf, j));
                    });
                });
            }
            Op::EnterTo(i) => rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&b[i])]),
            Op::EnterAlloc(i) => rt.target_enter_data(DeviceId::ACCEL0, &[Map::alloc(&b[i])]),
            Op::ExitFrom(i) => rt.target_exit_data(DeviceId::ACCEL0, &[Map::from(&b[i])]),
            Op::ExitRelease(i) => rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&b[i])]),
            Op::UpdateTo(i) => rt.update_to(&b[i]),
            Op::UpdateFrom(i) => rt.update_from(&b[i]),
        }
    }
}

/// Deterministic xorshift64* generator (hermetic proptest replacement).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_op(rng: &mut Rng) -> Op {
    let i = rng.below(NBUF as u64) as usize;
    match rng.below(10) {
        0 => Op::HostWrite(i),
        1 => Op::HostRead(i),
        2 => Op::KernelWrite(i),
        3 => Op::KernelRead(i),
        4 => Op::EnterTo(i),
        5 => Op::EnterAlloc(i),
        6 => Op::ExitFrom(i),
        7 => Op::ExitRelease(i),
        8 => Op::UpdateTo(i),
        _ => Op::UpdateFrom(i),
    }
}

fn buffer_of(op: Op) -> usize {
    match op {
        Op::HostWrite(i)
        | Op::HostRead(i)
        | Op::KernelWrite(i)
        | Op::KernelRead(i)
        | Op::EnterTo(i)
        | Op::EnterAlloc(i)
        | Op::ExitFrom(i)
        | Op::ExitRelease(i)
        | Op::UpdateTo(i)
        | Op::UpdateFrom(i) => i,
    }
}

/// No false positives: executing only oracle-legal operations never
/// produces a report.
#[test]
fn legal_programs_are_report_free() {
    for seed in 1..=48u64 {
        let mut rng = Rng::new(seed);
        let h = Harness::new();
        let mut model = [ModelBuf::default(); NBUF];
        let steps = 1 + rng.below(59);
        for _ in 0..steps {
            let op = random_op(&mut rng);
            let i = buffer_of(op);
            match classify(&model[i], op) {
                Verdict::Legal => {
                    model_apply(&mut model[i], op);
                    h.exec(op);
                }
                _ => continue,
            }
        }
        let reports = h.tool.reports();
        assert!(
            reports.is_empty(),
            "false positives (seed {seed}): {:?}",
            reports.iter().map(|r| (r.kind, r.message.clone())).collect::<Vec<_>>()
        );
    }
}

/// Completeness + classification: after a legal prefix, an
/// oracle-illegal read is reported with the oracle-predicted kind.
#[test]
fn illegal_reads_are_reported_with_the_right_kind() {
    for seed in 1..=48u64 {
        let mut rng = Rng::new(seed ^ 0x0BAD_F00D);
        let h = Harness::new();
        let mut model = [ModelBuf::default(); NBUF];
        let steps = 1 + rng.below(39);
        for _ in 0..steps {
            let op = random_op(&mut rng);
            let i = buffer_of(op);
            if classify(&model[i], op) == Verdict::Legal {
                model_apply(&mut model[i], op);
                h.exec(op);
            }
        }
        // Reinterpret a random probe as a read on its buffer.
        let probe = random_op(&mut rng);
        let i = buffer_of(probe);
        let read = if matches!(probe, Op::KernelRead(_) | Op::KernelWrite(_) | Op::EnterTo(_)
            | Op::EnterAlloc(_)) {
            Op::KernelRead(i)
        } else {
            Op::HostRead(i)
        };
        match classify(&model[i], read) {
            Verdict::IllegalRead(uninit) => {
                h.exec(read);
                let want = if uninit { ReportKind::MappingUum } else { ReportKind::MappingUsd };
                let reports = h.tool.reports();
                assert!(
                    reports.iter().any(|r| r.kind == want),
                    "expected {:?} for {:?} (seed {seed}), got {:?}",
                    want,
                    read,
                    reports.iter().map(|r| r.kind).collect::<Vec<_>>()
                );
            }
            _ => {
                // Legal or skipped probe: nothing to check this case.
            }
        }
    }
}
