//! Cross-crate integration tests: the full stack (runtime → events →
//! detectors) exercised end to end.

use arbalest::baselines::{AddressSanitizer, Archer, Memcheck, MemorySanitizer};
use arbalest::core::{certify, Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use arbalest::spec::Preset;
use std::sync::Arc;

/// All five tools attached to ONE runtime: they share the event stream
/// without interfering (the paper's "same infrastructure" setup).
#[test]
fn five_tools_coexist_on_one_runtime() {
    let rt = Runtime::new(Config::default());
    rt.attach(Arc::new(Arbalest::new(ArbalestConfig::default())));
    rt.attach(Arc::new(Memcheck::new()));
    rt.attach(Arc::new(Archer::new()));
    rt.attach(Arc::new(AddressSanitizer::new()));
    rt.attach(Arc::new(MemorySanitizer::new()));

    // The Fig. 1 bug: ARBALEST and MSan fire, the others stay silent.
    let b = rt.alloc_with::<f64>("b", 32, |_| 1.0);
    let c = rt.alloc_with::<f64>("c", 32, |_| 0.0);
    rt.target().map(Map::alloc(&b)).map(Map::tofrom(&c)).run(move |k| {
        k.par_for(0..32, |k, i| {
            let v = k.read(&b, i);
            k.write(&c, i, v);
        });
    });

    assert!(rt.reports_of("arbalest").iter().any(|r| r.kind == ReportKind::MappingUum));
    assert!(rt.reports_of("msan").iter().any(|r| r.kind == ReportKind::UninitRead));
    assert!(rt.reports_of("memcheck").is_empty());
    assert!(rt.reports_of("archer").is_empty());
    assert!(rt.reports_of("asan").is_empty());
}

/// Theorem-1 certification across the whole DRACC suite: every correct
/// benchmark certifies; every buggy one is rejected.
#[test]
fn certification_partitions_the_dracc_suite() {
    for b in arbalest::dracc::correct() {
        let cert = certify(Config::default(), |rt| b.run(rt));
        assert!(cert.certified(), "{} must certify: {:?}", b.dracc_id(), cert);
    }
    for b in arbalest::dracc::buggy() {
        let cert = certify(Config::default(), |rt| b.run(rt));
        assert!(!cert.certified(), "{} must be rejected", b.dracc_id());
    }
}

/// Instrumentation must not perturb results: every SPEC-like workload
/// produces the same checksum native and under every tool.
#[test]
fn checksums_are_tool_invariant() {
    for w in arbalest::spec::workloads() {
        let native = {
            let rt = Runtime::new(Config::default().team_size(2));
            (w.run)(&rt, Preset::Test)
        };
        for tool in ["arbalest", "memcheck", "archer", "asan", "msan"] {
            let t: Arc<dyn Tool> = match tool {
                "arbalest" => Arc::new(Arbalest::new(ArbalestConfig::default())),
                "memcheck" => Arc::new(Memcheck::new()),
                "archer" => Arc::new(Archer::new()),
                "asan" => Arc::new(AddressSanitizer::new()),
                _ => Arc::new(MemorySanitizer::new()),
            };
            let rt = Runtime::with_tool(Config::default().team_size(2), t);
            let sum = (w.run)(&rt, Preset::Test);
            let tol = 1e-9 * native.abs().max(1.0);
            assert!(
                (sum - native).abs() <= tol,
                "{} under {tool}: {sum} vs native {native}",
                w.name
            );
        }
    }
}

/// The five spec workloads are clean under ARBALEST (no false positives
/// on realistic applications, not just micro-benchmarks).
#[test]
fn spec_workloads_clean_under_arbalest() {
    for w in arbalest::spec::workloads() {
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default().team_size(2), tool.clone());
        (w.run)(&rt, Preset::Test);
        assert!(tool.reports().is_empty(), "{}: {:?}", w.name, tool.reports());
    }
}

/// Space accounting: shadow memory scales with the touched footprint and
/// ARBALEST's footprint stays close to Archer's (Fig. 9's key shape).
#[test]
fn space_accounting_tracks_footprint() {
    let run = |tool: Arc<dyn Tool>, n: usize| -> u64 {
        let rt = Runtime::with_tool(Config::default().team_size(2), tool);
        let a = rt.alloc_with::<f64>("a", n, |_| 1.0);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.par_for(0..n, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
        rt.tool_bytes()
    };
    let small = run(Arc::new(Arbalest::new(ArbalestConfig::default())), 1_000);
    let large = run(Arc::new(Arbalest::new(ArbalestConfig::default())), 64_000);
    assert!(large > 4 * small, "shadow must scale with footprint: {small} -> {large}");

    let arb = run(Arc::new(Arbalest::new(ArbalestConfig::default())), 16_000);
    let arch = run(Arc::new(Archer::new()), 16_000);
    let ratio = arb as f64 / arch as f64;
    assert!(
        (0.5..4.0).contains(&ratio),
        "Arbalest/Archer footprint ratio out of family: {ratio}"
    );
}

/// Reports survive the facade: render end-to-end through the `arbalest`
/// crate's re-exports.
#[test]
fn facade_reexports_work() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    let a = rt.alloc::<f64>("a", 8);
    let _ = rt.read(&a, 0); // UUM on the host: never initialised
    let reports = tool.reports();
    assert_eq!(reports.len(), 1);
    let text = reports[0].render();
    assert!(text.contains("mapping-issue(UUM)"));
    assert!(text.contains("'a'"));
}

/// A kernel overflow that lands inside ANOTHER variable's CV is
/// attributed as §IV-D's undefined-behaviour case, naming both buffers.
#[test]
fn overflow_into_neighbour_names_both_variables() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    let a = rt.alloc_with::<f64>("alpha", 8, |_| 1.0);
    let b = rt.alloc_with::<f64>("beta", 8, |_| 2.0);
    rt.target().map(Map::to(&a)).map(Map::to(&b)).run(move |k| {
        k.for_each(0..1, |k, _| {
            // 8 elements + 64-byte gap = 16 elements to reach beta's CV.
            let _ = k.read(&a, 16);
        });
    });
    let reports = tool.reports();
    let bo = reports.iter().find(|r| r.kind == ReportKind::MappingOverflow).expect("BO");
    assert!(bo.message.contains("alpha") && bo.message.contains("beta"), "{}", bo.message);
}
