//! Long-running randomized fault-injection soak (ignored by default; run
//! with `cargo test --test soak -- --ignored`). Hammers the full stack —
//! random *correct* programs, all five tools attached at once, real
//! concurrency — at fault rates 0%, 5% and 25%, and checks the global
//! invariants: no panics, no deadlocks, no false positives, and finite
//! results no matter which recovery paths (retry, partial-transfer
//! completion, rollback, host fallback) the fault plan forces.

use arbalest::baselines::{AddressSanitizer, Archer, Memcheck, MemorySanitizer};
use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

/// Deterministic xorshift so failures are reproducible by seed.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Fault rates the soak sweeps. 0 keeps the no-fault baseline honest; 5%
/// exercises isolated recoveries; 25% forces recovery paths to compose.
const RATES: [f64; 3] = [0.0, 0.05, 0.25];

fn random_correct_program(rt: &Runtime, seed: u64) {
    let mut rng = Rng(seed | 1);
    let n = 64 + rng.below(192) as usize;
    let a = rt.alloc_with::<f64>("a", n, |i| i as f64);
    let b = rt.alloc_with::<f64>("b", n, |_| 1.0);
    for _ in 0..(2 + rng.below(4)) {
        match rng.below(5) {
            0 => {
                rt.target().map(Map::tofrom(&a)).map(Map::to(&b)).run(move |k| {
                    k.par_for(0..n, |k, i| {
                        let v = k.read(&a, i) + k.read(&b, i);
                        k.write(&a, i, v);
                    });
                });
            }
            1 => {
                // nowait + immediate wait: the delayed-completion fault
                // stretches this window without breaking the ordering.
                let h = rt.target().map(Map::tofrom(&b)).nowait().run(move |k| {
                    k.par_for(0..n, |k, i| {
                        let v = k.read(&b, i);
                        k.write(&b, i, v * 1.5);
                    });
                });
                h.wait();
            }
            2 => {
                rt.target().map(Map::to(&a)).map(Map::tofrom(&b)).run(move |k| {
                    let s = k.par_reduce(0..n, 0.0, |k, i| k.read(&a, i), |x, y| x + y);
                    k.write(&b, 0, s);
                });
            }
            3 => {
                // Persistent mapping: entry allocation can fail and roll
                // back, in which case the construct pair degrades to
                // host-only no-ops and the kernel maps `a` itself.
                rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
                rt.target().map(Map::tofrom(&a)).run(move |k| {
                    k.par_for(0..n, |k, i| {
                        let v = k.read(&a, i);
                        k.write(&a, i, v + 0.5);
                    });
                });
                rt.update_from(&a);
                rt.target_exit_data(DeviceId::ACCEL0, &[Map::delete(&a)]);
            }
            _ => {
                for i in 0..n {
                    let v = rt.read(&a, i);
                    rt.write(&a, i, v + 1.0);
                }
            }
        }
    }
    rt.taskwait();
    let mut acc = 0.0;
    for i in 0..n {
        acc += rt.read(&a, i) + rt.read(&b, i);
    }
    assert!(acc.is_finite());
}

fn soak_one(seed: u64, rate: f64, all_tools: bool) {
    // Decorrelate the fault stream from the program stream.
    let fault_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ rate.to_bits();
    let rt = Runtime::new(Config::default().team_size(4).faults(fault_seed, rate));
    rt.attach(Arc::new(Arbalest::new(ArbalestConfig::default())));
    if all_tools {
        rt.attach(Arc::new(Memcheck::new()));
        rt.attach(Arc::new(Archer::new()));
        rt.attach(Arc::new(AddressSanitizer::new()));
        rt.attach(Arc::new(MemorySanitizer::new()));
    }
    random_correct_program(&rt, seed);
    let reports = rt.reports();
    assert!(
        reports.is_empty(),
        "seed {seed} rate {rate}: false positives: {:?}",
        reports.iter().map(|r| (r.tool, r.kind, r.message.clone())).collect::<Vec<_>>()
    );
    if rate == 0.0 {
        assert!(rt.errors().is_empty(), "seed {seed}: errors logged at rate 0");
    }
}

#[test]
#[ignore = "long-running soak; run explicitly"]
fn soak_all_tools_no_false_positives() {
    for &rate in &RATES {
        for seed in 0..64u64 {
            soak_one(seed, rate, true);
        }
    }
}

#[test]
fn mini_soak_smoke() {
    // The unignored cousin: a handful of seeds per rate so CI always
    // exercises the fault-injection recovery paths.
    for &rate in &RATES {
        for seed in 0..8u64 {
            soak_one(seed, rate, false);
        }
    }
}
