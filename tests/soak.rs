//! Long-running randomized soak test (ignored by default; run with
//! `cargo test --test soak -- --ignored`). Hammers the full stack —
//! random programs, all five tools attached at once, real concurrency —
//! and checks the global invariants: no false positives on oracle-legal
//! programs and no panics/deadlocks anywhere.

use arbalest::baselines::{AddressSanitizer, Archer, Memcheck, MemorySanitizer};
use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

/// Deterministic xorshift so failures are reproducible by seed.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_correct_program(rt: &Runtime, seed: u64) {
    let mut rng = Rng(seed | 1);
    let n = 64 + rng.below(192) as usize;
    let a = rt.alloc_with::<f64>("a", n, |i| i as f64);
    let b = rt.alloc_with::<f64>("b", n, |_| 1.0);
    for _ in 0..(2 + rng.below(4)) {
        match rng.below(4) {
            0 => {
                rt.target().map(Map::tofrom(&a)).map(Map::to(&b)).run(move |k| {
                    k.par_for(0..n, |k, i| {
                        let v = k.read(&a, i) + k.read(&b, i);
                        k.write(&a, i, v);
                    });
                });
            }
            1 => {
                let h = rt.target().map(Map::tofrom(&b)).nowait().run(move |k| {
                    k.par_for(0..n, |k, i| {
                        let v = k.read(&b, i);
                        k.write(&b, i, v * 1.5);
                    });
                });
                h.wait();
            }
            2 => {
                rt.target().map(Map::to(&a)).map(Map::tofrom(&b)).run(move |k| {
                    let s = k.par_reduce(0..n, 0.0, |k, i| k.read(&a, i), |x, y| x + y);
                    k.write(&b, 0, s);
                });
            }
            _ => {
                for i in 0..n {
                    let v = rt.read(&a, i);
                    rt.write(&a, i, v + 1.0);
                }
            }
        }
    }
    rt.taskwait();
    let mut acc = 0.0;
    for i in 0..n {
        acc += rt.read(&a, i) + rt.read(&b, i);
    }
    assert!(acc.is_finite());
}

#[test]
#[ignore = "long-running soak; run explicitly"]
fn soak_all_tools_no_false_positives() {
    for seed in 0..200u64 {
        let rt = Runtime::new(Config::default().team_size(4));
        rt.attach(Arc::new(Arbalest::new(ArbalestConfig::default())));
        rt.attach(Arc::new(Memcheck::new()));
        rt.attach(Arc::new(Archer::new()));
        rt.attach(Arc::new(AddressSanitizer::new()));
        rt.attach(Arc::new(MemorySanitizer::new()));
        random_correct_program(&rt, seed);
        let reports = rt.reports();
        assert!(
            reports.is_empty(),
            "seed {seed}: false positives: {:?}",
            reports.iter().map(|r| (r.tool, r.kind, r.message.clone())).collect::<Vec<_>>()
        );
    }
}

#[test]
fn mini_soak_smoke() {
    // The unignored cousin: a handful of seeds so CI always exercises
    // the path.
    for seed in 0..8u64 {
        let rt = Runtime::new(Config::default().team_size(2));
        rt.attach(Arc::new(Arbalest::new(ArbalestConfig::default())));
        random_correct_program(&rt, seed);
        assert!(rt.reports().is_empty());
    }
}
