//! The §III-C repair direction: with the X10CUDA/OpenARC-style automatic
//! coherence mode (§VII-A), the runtime inserts the transfers the
//! programmer forgot — USD-class bugs are *avoided* (correct output, no
//! reports), while UUM-class bugs remain (there is nothing valid to
//! copy), matching the paper's scoping of what repair can and cannot do.

use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

fn harness(auto: bool) -> (Runtime, Arc<Arbalest>) {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().auto_coherence(auto), tool.clone());
    (rt, tool)
}

/// Fig. 2 (top): `map(to:)` that should be `tofrom` — repaired.
#[test]
fn stale_host_read_is_repaired() {
    let (rt, tool) = harness(true);
    let a = rt.alloc_init::<i64>("a", &[1; 8]);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..8, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1);
        });
    });
    // Without repair this read returns 1 (stale) and is reported.
    assert_eq!(rt.read(&a, 0), 2, "coherence mode must deliver the device value");
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

/// The missing-`update to` pattern (benchmark 33's shape) — repaired.
#[test]
fn stale_device_read_is_repaired() {
    let (rt, tool) = harness(true);
    let a = rt.alloc_with::<f64>("a", 8, |i| i as f64);
    let out = rt.alloc::<f64>("out", 8);
    rt.target_data().map(Map::to(&a)).map(Map::from(&out)).scope(|rt| {
        for i in 0..8 {
            rt.write(&a, i, -1.0); // host rewrite, no update_to
        }
        rt.target().map(Map::to(&a)).map(Map::from(&out)).run(move |k| {
            k.for_each(0..8, |k, i| k.write(&out, i, k.read(&a, i)));
        });
    });
    assert_eq!(rt.read(&out, 3), -1.0, "kernel must see the host rewrite");
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

/// The same two programs WITHOUT the mode still fail — the mode is doing
/// the work, not some side effect.
#[test]
fn without_the_mode_the_bugs_remain() {
    let (rt, tool) = harness(false);
    let a = rt.alloc_init::<i64>("a", &[1; 8]);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..8, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1);
        });
    });
    assert_eq!(rt.read(&a, 0), 1, "stale");
    assert!(tool.reports().iter().any(|r| r.kind == ReportKind::MappingUsd));
}

/// UUM cannot be repaired: an `alloc`-mapped CV read is still garbage and
/// still reported.
#[test]
fn uum_is_not_repairable() {
    let (rt, tool) = harness(true);
    let b = rt.alloc_with::<f64>("b", 8, |_| 9.0);
    let c = rt.alloc::<f64>("c", 8);
    rt.target().map(Map::alloc(&b)).map(Map::from(&c)).run(move |k| {
        k.for_each(0..8, |k, i| k.write(&c, i, k.read(&b, i)));
    });
    // Hmm — with coherence, the device read of `b` pulls the HOST copy
    // down first (the host copy is initialised), so this particular UUM
    // *is* avoided. That is exactly what X10CUDA-style management does:
    // it supersedes the map-type. The unrepairable case is a variable
    // with no valid copy anywhere:
    let u = rt.alloc::<f64>("u", 8); // never initialised anywhere
    let d = rt.alloc::<f64>("d", 8);
    rt.target().map(Map::alloc(&u)).map(Map::from(&d)).run(move |k| {
        k.for_each(0..8, |k, i| k.write(&d, i, k.read(&u, i)));
    });
    let reports = tool.reports();
    assert!(
        reports.iter().any(|r| r.kind == ReportKind::MappingUum
            && r.buffer.as_deref() == Some("u")),
        "a variable with no valid copy anywhere stays a UUM: {reports:?}"
    );
}

/// The USD-row DRACC benchmarks (26, 27, 32, 33) all become clean under
/// the coherence mode; the UUM row stays detected for the truly
/// uninitialised ones.
#[test]
fn usd_row_of_dracc_is_avoided() {
    for id in [26u32, 27, 32, 33] {
        let b = arbalest::dracc::by_id(id).unwrap();
        let (rt, tool) = harness(true);
        b.run(&rt);
        assert!(
            tool.reports().is_empty(),
            "{} should be avoided by coherence mode: {:?}",
            b.dracc_id(),
            tool.reports()
        );
    }
    // Benchmark 50 (host never initialises the input) cannot be repaired.
    let b = arbalest::dracc::by_id(50).unwrap();
    let (rt, tool) = harness(true);
    b.run(&rt);
    assert!(tool.reports().iter().any(|r| r.kind == ReportKind::MappingUum));
}

/// Multi-device: the coherence hop routes device 0's result through the
/// host to device 1.
#[test]
fn cross_device_hop() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig { accelerators: 2, ..Default::default() }));
    let rt = Runtime::with_tool(
        Config::default().accelerators(2).auto_coherence(true),
        tool.clone(),
    );
    let d0 = DeviceId(1);
    let d1 = DeviceId(2);
    let a = rt.alloc_with::<f64>("a", 8, |i| i as f64);
    rt.target_enter_data(d0, &[Map::to(&a)]);
    rt.target_enter_data(d1, &[Map::alloc(&a)]);
    rt.target().on_device(d0).map(Map::to(&a)).run(move |k| {
        k.for_each(0..8, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 100.0);
        });
    });
    // No explicit hop: coherence inserts device0→host→device1.
    let out = rt.alloc::<f64>("out", 8);
    rt.target().on_device(d1).map(Map::to(&a)).map(Map::from(&out)).run(move |k| {
        k.for_each(0..8, |k, i| k.write(&out, i, k.read(&a, i)));
    });
    assert_eq!(rt.read(&out, 2), 102.0);
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}
