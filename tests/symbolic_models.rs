//! Symbolic-vs-instantiation agreement for the loop-form IR models.
//!
//! The static analyzer checks each symbolic model once; these tests pin
//! the contract that makes that single check meaningful:
//!
//! * analyzing the symbolic program over-approximates analyzing any
//!   concrete instantiation (same `(kind, buffer)` vocabulary), and
//! * every symbolic `Must` diagnostic survives instantiation — a
//!   verdict claimed for *all* trip counts must hold at each one.
//!
//! The six loop-shaped DRACC benchmarks are swept over a range of trip
//! counts; the five SPEC workloads over every preset.

use arbalest_ir::Binding;
use arbalest_spec::Preset;
use arbalest_static::{analyze, Severity};
use std::collections::BTreeSet;

type Key = (&'static str, String);

fn keys(diags: &[arbalest_static::Diagnostic]) -> BTreeSet<Key> {
    diags.iter().map(|d| (d.kind.label(), d.buffer.clone())).collect()
}

fn must_keys(diags: &[arbalest_static::Diagnostic]) -> BTreeSet<Key> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Must)
        .map(|d| (d.kind.label(), d.buffer.clone()))
        .collect()
}

fn assert_agreement(name: &str, symbolic: &arbalest_ir::Program, binding: &Binding) {
    let sym = analyze(symbolic);
    let concrete = symbolic.concretize(binding).expect("binding in range");
    let conc = analyze(&concrete);
    let (sym_any, sym_must, conc_any) = (keys(&sym), must_keys(&sym), keys(&conc));
    for k in &conc_any {
        assert!(
            sym_any.contains(k),
            "{name}: concrete finding {k:?} missing from the symbolic analysis"
        );
    }
    for k in &sym_must {
        assert!(
            conc_any.contains(k),
            "{name}: symbolic Must {k:?} not reproduced by the instantiation"
        );
    }
}

#[test]
fn dracc_loop_models_agree_with_every_instantiation() {
    let loop_ids = [9u32, 13, 21, 41, 43, 55];
    for id in loop_ids {
        let (program, _historic) =
            arbalest_dracc::ir_models::symbolic_model(id).expect("loop-form model");
        let iters = arbalest_ir::ParamId(0);
        assert!(!program.is_concrete(), "DRACC {id}: model should be symbolic");
        for trips in 1..=6 {
            let binding = Binding::new().set(iters, trips);
            assert_agreement(&format!("DRACC {id} @ trips={trips}"), &program, &binding);
        }
    }
}

#[test]
fn dracc_loop_models_stay_silent_symbolically() {
    // All six loop benchmarks are correct programs: the single symbolic
    // check must clear them for every admissible trip count.
    for id in [9u32, 13, 21, 41, 43, 55] {
        let (program, _) = arbalest_dracc::ir_models::symbolic_model(id).expect("model");
        let diags = analyze(&program);
        assert!(diags.is_empty(), "DRACC {id}: {:?}", diags[0]);
    }
}

#[test]
fn spec_models_agree_at_every_preset() {
    for w in arbalest_spec::workloads() {
        let m = arbalest_spec::ir_models::symbolic_model(w.name).expect("model");
        let sym = analyze(&m.program);
        assert!(sym.is_empty(), "{}: symbolic diagnostic {:?}", w.name, sym[0]);
        for preset in [Preset::Test, Preset::Small, Preset::Medium] {
            assert_agreement(&format!("{} @ {preset:?}", w.name), &m.program, &m.binding(preset));
        }
    }
}
