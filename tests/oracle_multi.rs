//! Multi-device differential oracle: the §IV-C (n+1)-tuple VSM checked
//! against an independent model, over random two-accelerator programs.
//!
//! Same methodology as `tests/oracle.rs`, with the state generalised to
//! one CV per device plus device-to-device copies.

use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

const NBUF: usize = 2;
const NDEV: usize = 2;
const LEN: usize = 8;

#[derive(Debug, Clone, Copy)]
enum Op {
    HostWrite(usize),
    HostRead(usize),
    KernelWrite(usize, u16),
    KernelRead(usize, u16),
    EnterTo(usize, u16),
    EnterAlloc(usize, u16),
    ExitFrom(usize, u16),
    ExitRelease(usize, u16),
    UpdateTo(usize, u16),
    UpdateFrom(usize, u16),
    DevCopy(usize, u16, u16),
}

impl Op {
    fn buffer(self) -> usize {
        match self {
            Op::HostWrite(b)
            | Op::HostRead(b)
            | Op::KernelWrite(b, _)
            | Op::KernelRead(b, _)
            | Op::EnterTo(b, _)
            | Op::EnterAlloc(b, _)
            | Op::ExitFrom(b, _)
            | Op::ExitRelease(b, _)
            | Op::UpdateTo(b, _)
            | Op::UpdateFrom(b, _)
            | Op::DevCopy(b, _, _) => b,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Side {
    valid: bool,
    init: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct ModelBuf {
    host: Side,
    cv: [Option<Side>; NDEV],
    rc: [u32; NDEV],
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Verdict {
    Legal,
    IllegalRead(bool), // true = UUM
    Skip,
}

fn classify(m: &ModelBuf, op: Op) -> Verdict {
    match op {
        Op::HostWrite(_) => Verdict::Legal,
        Op::HostRead(_) => {
            if m.host.valid {
                Verdict::Legal
            } else {
                Verdict::IllegalRead(!m.host.init)
            }
        }
        Op::KernelWrite(_, d) => {
            if m.cv[d as usize].is_some() {
                Verdict::Legal
            } else {
                Verdict::Skip
            }
        }
        Op::KernelRead(_, d) => match m.cv[d as usize] {
            Some(cv) if cv.valid => Verdict::Legal,
            Some(cv) => Verdict::IllegalRead(!cv.init),
            None => Verdict::Skip,
        },
        Op::EnterTo(_, _) | Op::EnterAlloc(_, _) => Verdict::Legal,
        Op::ExitFrom(_, d) | Op::ExitRelease(_, d) | Op::UpdateTo(_, d) | Op::UpdateFrom(_, d) => {
            if m.cv[d as usize].is_some() {
                Verdict::Legal
            } else {
                Verdict::Skip
            }
        }
        Op::DevCopy(_, s, t) => {
            if s != t && m.cv[s as usize].is_some() && m.cv[t as usize].is_some() {
                Verdict::Legal
            } else {
                Verdict::Skip
            }
        }
    }
}

fn model_apply(m: &mut ModelBuf, op: Op) {
    match op {
        Op::HostWrite(_) => {
            m.host = Side { valid: true, init: true };
            for cv in m.cv.iter_mut().flatten() {
                cv.valid = false;
            }
        }
        Op::HostRead(_) | Op::KernelRead(_, _) => {}
        Op::KernelWrite(_, d) => {
            m.host.valid = false;
            for (i, cv) in m.cv.iter_mut().enumerate() {
                if let Some(cv) = cv {
                    if i == d as usize {
                        *cv = Side { valid: true, init: true };
                    } else {
                        cv.valid = false;
                    }
                }
            }
        }
        Op::EnterTo(_, d) => {
            let d = d as usize;
            if m.cv[d].is_none() {
                m.cv[d] = Some(m.host);
                m.rc[d] = 1;
            } else {
                m.rc[d] += 1;
            }
        }
        Op::EnterAlloc(_, d) => {
            let d = d as usize;
            if m.cv[d].is_none() {
                m.cv[d] = Some(Side::default());
                m.rc[d] = 1;
            } else {
                m.rc[d] += 1;
            }
        }
        Op::ExitFrom(_, d) => {
            let d = d as usize;
            m.rc[d] = m.rc[d].saturating_sub(1);
            if m.rc[d] == 0 {
                m.host = m.cv[d].take().expect("classified");
            }
        }
        Op::ExitRelease(_, d) => {
            let d = d as usize;
            m.rc[d] = m.rc[d].saturating_sub(1);
            if m.rc[d] == 0 {
                m.cv[d] = None;
            }
        }
        Op::UpdateTo(_, d) => {
            let host = m.host;
            *m.cv[d as usize].as_mut().expect("classified") = host;
        }
        Op::UpdateFrom(_, d) => {
            m.host = *m.cv[d as usize].as_ref().expect("classified");
        }
        Op::DevCopy(_, s, t) => {
            let src = *m.cv[s as usize].as_ref().expect("classified");
            *m.cv[t as usize].as_mut().expect("classified") = src;
        }
    }
}

struct Harness {
    rt: Runtime,
    tool: Arc<Arbalest>,
    bufs: Vec<Buffer<f64>>,
}

impl Harness {
    fn new() -> Harness {
        let tool =
            Arc::new(Arbalest::new(ArbalestConfig { accelerators: NDEV as u16, ..Default::default() }));
        let rt = Runtime::with_tool(Config::default().accelerators(NDEV as u16), tool.clone());
        let bufs = (0..NBUF).map(|i| rt.alloc::<f64>(&format!("buf{i}"), LEN)).collect();
        Harness { rt, tool, bufs }
    }

    fn dev(d: u16) -> DeviceId {
        DeviceId(d + 1)
    }

    fn exec(&self, op: Op) {
        let (rt, b) = (&self.rt, &self.bufs);
        match op {
            Op::HostWrite(i) => {
                for j in 0..LEN {
                    rt.write(&b[i], j, (i + j) as f64);
                }
            }
            Op::HostRead(i) => {
                for j in 0..LEN {
                    std::hint::black_box(rt.read(&b[i], j));
                }
            }
            Op::KernelWrite(i, d) => {
                let buf = b[i];
                rt.target().on_device(Self::dev(d)).map(Map::alloc(&buf)).run(move |k| {
                    k.for_each(0..LEN, |k, j| k.write(&buf, j, j as f64));
                });
            }
            Op::KernelRead(i, d) => {
                let buf = b[i];
                rt.target().on_device(Self::dev(d)).map(Map::alloc(&buf)).run(move |k| {
                    k.for_each(0..LEN, |k, j| {
                        std::hint::black_box(k.read(&buf, j));
                    });
                });
            }
            Op::EnterTo(i, d) => rt.target_enter_data(Self::dev(d), &[Map::to(&b[i])]),
            Op::EnterAlloc(i, d) => rt.target_enter_data(Self::dev(d), &[Map::alloc(&b[i])]),
            Op::ExitFrom(i, d) => rt.target_exit_data(Self::dev(d), &[Map::from(&b[i])]),
            Op::ExitRelease(i, d) => rt.target_exit_data(Self::dev(d), &[Map::release(&b[i])]),
            Op::UpdateTo(i, d) => rt.update_to_on(Self::dev(d), &b[i]),
            Op::UpdateFrom(i, d) => rt.update_from_on(Self::dev(d), &b[i]),
            Op::DevCopy(i, s, t) => rt.device_memcpy(Self::dev(s), Self::dev(t), &b[i]),
        }
    }
}

/// Deterministic xorshift64* generator (hermetic proptest replacement).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_op(rng: &mut Rng) -> Op {
    let i = rng.below(NBUF as u64) as usize;
    let d = rng.below(NDEV as u64) as u16;
    let d2 = rng.below(NDEV as u64) as u16;
    match rng.below(11) {
        0 => Op::HostWrite(i),
        1 => Op::HostRead(i),
        2 => Op::KernelWrite(i, d),
        3 => Op::KernelRead(i, d),
        4 => Op::EnterTo(i, d),
        5 => Op::EnterAlloc(i, d),
        6 => Op::ExitFrom(i, d),
        7 => Op::ExitRelease(i, d),
        8 => Op::UpdateTo(i, d),
        9 => Op::UpdateFrom(i, d),
        _ => Op::DevCopy(i, d, d2),
    }
}

#[test]
fn legal_multi_device_programs_are_report_free() {
    for seed in 1..=40u64 {
        let mut rng = Rng::new(seed);
        let h = Harness::new();
        let mut model = [ModelBuf::default(); NBUF];
        let steps = 1 + rng.below(49);
        for _ in 0..steps {
            let op = random_op(&mut rng);
            let i = op.buffer();
            if classify(&model[i], op) == Verdict::Legal {
                model_apply(&mut model[i], op);
                h.exec(op);
            }
        }
        let reports = h.tool.reports();
        assert!(
            reports.is_empty(),
            "false positives (seed {seed}): {:?}",
            reports.iter().map(|r| (r.kind, r.message.clone())).collect::<Vec<_>>()
        );
    }
}

#[test]
fn illegal_multi_device_reads_are_classified() {
    for seed in 1..=40u64 {
        let mut rng = Rng::new(seed ^ 0xD1CE);
        let h = Harness::new();
        let mut model = [ModelBuf::default(); NBUF];
        let steps = 1 + rng.below(39);
        for _ in 0..steps {
            let op = random_op(&mut rng);
            let i = op.buffer();
            if classify(&model[i], op) == Verdict::Legal {
                model_apply(&mut model[i], op);
                h.exec(op);
            }
        }
        let probe_buf = rng.below(NBUF as u64) as usize;
        let probe_dev = rng.below(NDEV as u64 + 1) as u16; // NDEV means "host"
        let read = if probe_dev == NDEV as u16 {
            Op::HostRead(probe_buf)
        } else {
            Op::KernelRead(probe_buf, probe_dev)
        };
        if let Verdict::IllegalRead(uninit) = classify(&model[probe_buf], read) {
            h.exec(read);
            let want = if uninit { ReportKind::MappingUum } else { ReportKind::MappingUsd };
            let reports = h.tool.reports();
            assert!(
                reports.iter().any(|r| r.kind == want),
                "expected {:?} for {:?} (seed {seed}), got {:?}",
                want,
                read,
                reports.iter().map(|r| r.kind).collect::<Vec<_>>()
            );
        }
    }
}
