//! Recovery-invariant tests for the fault-injection layer.
//!
//! The contract under test: whatever the fault plan does — failed device
//! allocations, partial or dropped transfers, refused kernel launches,
//! delayed `nowait` completions — a *correct* program keeps computing the
//! right answer, the detectors stay silent (no false UUM/USD, no phantom
//! races), and aborted constructs leave no residue in the present table or
//! the detector's shadow state.

use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

fn with_arbalest(cfg: Config) -> Runtime {
    Runtime::with_tool(cfg, Arc::new(Arbalest::new(ArbalestConfig::default())))
}

fn assert_clean(rt: &Runtime, ctx: &str) {
    let reports = rt.reports();
    assert!(
        reports.is_empty(),
        "{ctx}: false positives: {:?}",
        reports.iter().map(|r| (r.tool, r.kind, r.message.clone())).collect::<Vec<_>>()
    );
}

/// Increment every element once. Written to be *presence-agnostic*: it
/// computes the same values whether `a` is persistently mapped, freshly
/// mapped per construct, or never mapped at all (host fallback) — so it is
/// correct under every recovery path the runtime can take.
fn increment_round(rt: &Runtime, a: &Buffer<f64>, n: usize) {
    let a2 = *a;
    rt.target().map(Map::tofrom(a)).run(move |k| {
        k.par_for(0..n, |k, i| {
            let v = k.read(&a2, i);
            k.write(&a2, i, v + 1.0);
        });
    });
    // Pulls the device copy when one is persistently present; no-op when
    // the buffer is unmapped (the tofrom exit transfer already ran then).
    rt.update_from(a);
}

#[test]
fn total_fault_rate_degrades_to_host_and_stays_correct() {
    // rate = 1.0: every allocation eventually fails permanently, every
    // kernel launch is refused, every transfer needs the degraded path.
    // The whole program must still run — on the host — with exact results
    // and zero detector reports.
    let rt = with_arbalest(Config::default().faults(0xC0FFEE, 1.0));
    let n = 96;
    let a = rt.alloc_with::<f64>("a", n, |i| i as f64);

    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
    for _ in 0..3 {
        increment_round(&rt, &a, n);
    }
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::from(&a)]);
    rt.taskwait();

    for i in 0..n {
        assert_eq!(rt.read(&a, i), i as f64 + 3.0, "element {i}");
    }
    // Nothing can be resident after total allocation failure.
    assert!(!rt.is_present(DeviceId::ACCEL0, &a));
    assert_clean(&rt, "rate=1.0");
    assert!(!rt.errors().is_empty(), "total fault rate must log errors");
}

#[test]
fn alloc_failure_rolls_back_present_table_atomically() {
    // A construct that maps two buffers must commit both or neither:
    // if the second allocation fails, the first committed map is rolled
    // back (present-table entry removed, CV freed, CvDelete emitted so the
    // detector drops its shadow interval). Scanning seeds exercises both
    // the success and the rollback branch.
    let mut rollbacks = 0usize;
    let mut successes = 0usize;
    for seed in 0..96u64 {
        let rt = with_arbalest(Config::default().faults(seed, 0.35));
        let n = 64;
        let a = rt.alloc_with::<f64>("a", n, |i| i as f64);
        let b = rt.alloc_with::<f64>("b", n, |_| 1.0);

        rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a), Map::to(&b)]);
        let pa = rt.is_present(DeviceId::ACCEL0, &a);
        let pb = rt.is_present(DeviceId::ACCEL0, &b);
        assert_eq!(pa, pb, "seed {seed}: entry mapping must be all-or-nothing");
        let alloc_failed =
            rt.errors().iter().any(|e| matches!(e, RuntimeError::DeviceAllocFailed { .. }));
        if pa {
            successes += 1;
            rt.target_exit_data(DeviceId::ACCEL0, &[Map::delete(&a), Map::delete(&b)]);
        } else {
            assert!(alloc_failed, "seed {seed}: absent mapping must come with a logged error");
            rollbacks += 1;
        }
        assert!(!rt.is_present(DeviceId::ACCEL0, &a));
        assert!(!rt.is_present(DeviceId::ACCEL0, &b));

        // A subsequent correct run over the same data must be exact and
        // report-free: rollback may not leave stale shadow intervals or
        // VSM states behind.
        increment_round(&rt, &a, n);
        rt.taskwait();
        for i in 0..n {
            assert_eq!(rt.read(&a, i), i as f64 + 1.0, "seed {seed} element {i}");
        }
        assert_clean(&rt, &format!("seed {seed}"));
    }
    assert!(rollbacks > 0, "seed scan never hit the rollback branch");
    assert!(successes > 0, "seed scan never hit the success branch");
}

#[test]
fn partial_transfers_eventually_complete_with_consistent_vsm() {
    // Partial transfers copy a prefix and are retried; the degraded path
    // finishes the copy after MAX_RETRIES. Per-word VSM states must end up
    // exactly as if the transfer succeeded first try — same values, no
    // false reports.
    let mut partials_seen = false;
    for seed in 0..48u64 {
        let rt = with_arbalest(Config::default().faults(seed, 0.25));
        let n = 256;
        let a = rt.alloc_with::<f64>("a", n, |i| (i * 7) as f64);

        rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
        for _ in 0..2 {
            increment_round(&rt, &a, n);
        }
        rt.target_exit_data(DeviceId::ACCEL0, &[Map::from(&a)]);
        rt.taskwait();

        for i in 0..n {
            assert_eq!(rt.read(&a, i), (i * 7) as f64 + 2.0, "seed {seed} element {i}");
        }
        assert_clean(&rt, &format!("seed {seed}"));
        partials_seen |= rt
            .errors()
            .iter()
            .any(|e| matches!(e, RuntimeError::TransferIncomplete { .. }));
    }
    assert!(partials_seen, "seed scan never exercised a faulted transfer");
}

#[test]
fn launch_failure_falls_back_to_host_with_exact_results() {
    let mut fallbacks = 0usize;
    for seed in 0..48u64 {
        let rt = with_arbalest(Config::default().faults(seed, 0.4));
        let n = 80;
        let a = rt.alloc_with::<f64>("a", n, |i| i as f64);
        for _ in 0..4 {
            increment_round(&rt, &a, n);
        }
        rt.taskwait();
        for i in 0..n {
            assert_eq!(rt.read(&a, i), i as f64 + 4.0, "seed {seed} element {i}");
        }
        assert_clean(&rt, &format!("seed {seed}"));
        if rt.errors().iter().any(|e| matches!(e, RuntimeError::KernelLaunchFailed { .. })) {
            fallbacks += 1;
        }
    }
    assert!(fallbacks > 0, "seed scan never exercised host fallback");
}

#[test]
fn delayed_nowait_completion_does_not_deadlock() {
    // Every nowait completion is delayed at rate 1.0 (and every launch is
    // refused); wait()/taskwait must still terminate with exact values.
    let rt = with_arbalest(Config::default().faults(77, 1.0));
    let n = 64;
    let a = rt.alloc_with::<f64>("a", n, |_| 2.0);
    let a2 = a;
    let h = rt.target().map(Map::tofrom(&a)).nowait().run(move |k| {
        k.par_for(0..n, |k, i| {
            let v = k.read(&a2, i);
            k.write(&a2, i, v * v);
        });
    });
    h.wait();
    rt.taskwait();
    for i in 0..n {
        assert_eq!(rt.read(&a, i), 4.0, "element {i}");
    }
    assert_clean(&rt, "delayed nowait");
}

#[test]
fn zero_rate_is_byte_identical_to_no_faults() {
    let run = |cfg: Config| -> (Vec<f64>, usize, usize) {
        let rt = with_arbalest(cfg);
        let n = 64;
        let a = rt.alloc_with::<f64>("a", n, |i| i as f64);
        for _ in 0..2 {
            increment_round(&rt, &a, n);
        }
        rt.taskwait();
        let vals = rt.read_all(&a);
        (vals, rt.reports().len(), rt.errors().len())
    };
    let (base_vals, base_reports, base_errors) = run(Config::default());
    let (vals, reports, errors) = run(Config::default().faults(12345, 0.0));
    assert_eq!(vals, base_vals);
    assert_eq!(reports, 0);
    assert_eq!(base_reports, 0);
    assert_eq!(errors, 0, "rate 0 must never log an error");
    assert_eq!(base_errors, 0);
}

#[test]
fn abnormal_public_api_input_is_panic_free() {
    // No panic!/assert! is reachable from the public runtime API: abnormal
    // input degrades to typed errors (and, for genuine program bugs like a
    // double free, a report) instead of crashing.
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<f64>("a", 8, |i| i as f64);

    // Out-of-range access: read yields the zero scalar, write is dropped,
    // both log a typed error; the try_ variants surface it directly.
    assert_eq!(rt.read(&a, 999), 0.0);
    rt.write(&a, 999, 1.0);
    assert!(matches!(rt.try_read(&a, 999), Err(RuntimeError::OutOfRange { .. })));
    assert!(matches!(rt.try_write(&a, 999, 1.0), Err(RuntimeError::OutOfRange { .. })));

    // Zero-length buffers can be mapped, updated and released without
    // crashing the detectors (degenerate shadow intervals are ignored).
    let e = rt.alloc::<f64>("empty", 0);
    let e2 = e;
    rt.target().map(Map::tofrom(&e)).run(move |k| {
        k.par_for(0..0, |k, i| {
            let _ = k.read(&e2, i);
        });
    });
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&e)]);
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::delete(&e)]);
    rt.free(&e);

    // Double free: first succeeds, second produces a typed error and a
    // use-after-free report attributed to the runtime itself.
    rt.free(&a);
    assert!(matches!(rt.try_free(&a), Err(RuntimeError::DoubleFree { .. })));
    assert!(rt
        .reports()
        .iter()
        .any(|r| r.tool == "runtime" && r.kind == ReportKind::UseAfterFree));
    assert!(rt.errors().iter().any(|e| matches!(e, RuntimeError::OutOfRange { .. })));
}
