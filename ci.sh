#!/usr/bin/env bash
# CI gate: build, tier-1 tests, lints. Everything runs offline.
#
# The full fault-injection soak (64 seeds x 3 fault rates x 5 tools) is
# ignored by default; CI runs it here with a bounded thread pool. Drop
# RUN_SOAK=0 into the environment to skip it locally.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${RUN_SOAK:-1}" == "1" ]]; then
    echo "==> fault-injection soak (ignored test, bounded)"
    cargo test -q --test soak -- --ignored
fi

echo "CI OK"
