#!/usr/bin/env bash
# CI gate: build, tier-1 tests, lints. Everything runs offline.
#
# The full fault-injection soak (64 seeds x 3 fault rates x 5 tools) is
# ignored by default; CI runs it here with a bounded thread pool. Drop
# RUN_SOAK=0 into the environment to skip it locally.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> arbalest lint all (static analyzer gate)"
# Exit code enforces the contract: buggy models flagged, correct silent.
./target/release/arbalest lint all --quiet

echo "==> arbalest fuzz-lint --seeds 64 (differential soundness gate)"
# Generated programs + all 56 DRACC models through both detectors:
# every static Must confirmed dynamically, every dynamic report
# statically anticipated.
./target/release/arbalest fuzz-lint --seeds 64 --quiet

echo "==> arbalest fix all (repair synthesis gate)"
# Every model convicted at Must needs a synthesized repair clearing
# both oracles (static re-check clean, zero dynamic reports).
./target/release/arbalest fix all --quiet

echo "==> arbalest optimize (SPEC report-parity gate)"
# Transfer minimization must hold diagnostics byte-identical; the
# --apply-check re-verification fails the run on any parity break.
for w in postencil polbm pomriq pep pcg; do
    ./target/release/arbalest optimize "spec/$w" --apply-check --quiet
done

if [[ "${RUN_SOAK:-1}" == "1" ]]; then
    echo "==> fault-injection soak (ignored test, bounded)"
    cargo test -q --test soak -- --ignored

    echo "==> network-chaos soak (all DRACC cases, fixed seeds, 60s budget)"
    # Compile outside the wall-clock budget; only the soak itself is bounded.
    cargo test -q --release -p arbalest-server --test chaos_soak --no-run
    timeout 60 cargo test -q --release -p arbalest-server --test chaos_soak -- --ignored
fi

echo "==> analysis-service smoke (unix socket, 30s budget)"
SOCK="$(mktemp -u /tmp/arbalest-ci-XXXXXX.sock)"
TRACE="$(mktemp /tmp/arbalest-ci-XXXXXX.trace)"
ARB=./target/release/arbalest
timeout 30 "$ARB" serve --listen "unix:$SOCK" --shards 2 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SOCK" "$TRACE"' EXIT
for _ in $(seq 1 50); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
[[ -S "$SOCK" ]] || { echo "server never bound $SOCK"; exit 1; }
"$ARB" record 22 -o "$TRACE" --connect "unix:$SOCK"
SUBMIT_OUT="$("$ARB" submit "$TRACE" --connect "unix:$SOCK")"
echo "$SUBMIT_OUT" | grep -q "mapping-issue(UUM)" \
    || { echo "submit produced no UUM report:"; echo "$SUBMIT_OUT"; exit 1; }
# Capture before grepping: `grep -q` closing the pipe early would EPIPE
# the client under pipefail.
STATS_OUT="$("$ARB" stats --connect "unix:$SOCK")"
echo "$STATS_OUT" | grep -q "1 finished" \
    || { echo "stats did not count the finished session"; exit 1; }
PROM_OUT="$("$ARB" stats --format prom --connect "unix:$SOCK")"
echo "$PROM_OUT" | grep -q "^arbalest_server_sessions_finished_total 1$" \
    || { echo "prometheus export disagrees with stats"; exit 1; }
# The live scrape must pass the text-exposition conformance checker.
echo "$PROM_OUT" | "$ARB" check-prom \
    || { echo "prometheus export failed conformance"; exit 1; }
"$ARB" stop --connect "unix:$SOCK"
# Clean drain must finish well inside the timeout's budget.
wait "$SERVE_PID" || { echo "server exited non-zero"; exit 1; }
trap - EXIT
rm -f "$SOCK" "$TRACE"
echo "    server smoke OK"

echo "==> crash-recovery smoke (kill -9 mid-session, 60s budget)"
DATA="$(mktemp -d /tmp/arbalest-ci-XXXXXX.data)"
DSOCK="$(mktemp -u /tmp/arbalest-ci-XXXXXX.sock)"
DTRACE="$(mktemp /tmp/arbalest-ci-XXXXXX.trace)"
# No `timeout` wrapper here: $! must be the server itself (killing a
# wrapper would orphan it), and this instance is SIGKILLed just below —
# the EXIT trap bounds the failure paths.
"$ARB" serve --listen "unix:$DSOCK" --shards 2 \
    --data-dir "$DATA" --snapshot-every-events 512 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$DSOCK" "$DTRACE" "$DATA"' EXIT
for _ in $(seq 1 50); do [[ -S "$DSOCK" ]] && break; sleep 0.1; done
[[ -S "$DSOCK" ]] || { echo "durable server never bound $DSOCK"; exit 1; }
"$ARB" record 22 -o "$DTRACE"
# Stream half the trace, leave the session open, then SIGKILL: the only
# surviving copy of the session is its write-ahead log.
OPEN_OUT="$("$ARB" submit "$DTRACE" --connect "unix:$DSOCK" --take 1800 --no-finish --deadline 30)"
SESSION="$(echo "$OPEN_OUT" | sed -n 's/.*session \([0-9]*\) left open.*/\1/p')"
[[ -n "$SESSION" ]] || { echo "no open session id in: $OPEN_OUT"; exit 1; }
kill -9 "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true
# Capture before grepping (as above: `grep -q` would EPIPE the binary).
INSPECT_OUT="$("$ARB" store inspect "$DATA")"
echo "$INSPECT_OUT" | grep -q "session $SESSION" \
    || { echo "WAL lost session $SESSION after kill -9:"; echo "$INSPECT_OUT"; exit 1; }
# Restart over the same data directory: recovery must rebuild the
# session, and resuming + finishing it must match an uninterrupted run.
timeout 60 "$ARB" serve --listen "unix:$DSOCK" --shards 2 --data-dir "$DATA" &
SERVE_PID=$!
for _ in $(seq 1 50); do [[ -S "$DSOCK" ]] && break; sleep 0.1; done
[[ -S "$DSOCK" ]] || { echo "durable server never rebound $DSOCK"; exit 1; }
RESUMED_OUT="$("$ARB" submit "$DTRACE" --connect "unix:$DSOCK" --resume "$SESSION" --deadline 30)"
FRESH_OUT="$("$ARB" submit "$DTRACE" --connect "unix:$DSOCK" --deadline 30)"
[[ "$RESUMED_OUT" == "$FRESH_OUT" ]] \
    || { echo "recovered session diverged from uninterrupted run"; \
         diff <(echo "$RESUMED_OUT") <(echo "$FRESH_OUT") || true; exit 1; }
# Both sessions finished cleanly, so their durable state must be gone.
LEFT="$(ls "$DATA/sessions" 2>/dev/null | wc -l)"
[[ "$LEFT" == "0" ]] || { echo "finished sessions left durable state"; exit 1; }
"$ARB" stop --connect "unix:$DSOCK"
wait "$SERVE_PID" || { echo "durable server exited non-zero"; exit 1; }
trap - EXIT
rm -rf "$DSOCK" "$DTRACE" "$DATA"
echo "    crash-recovery smoke OK"

echo "==> causal-tracing smoke (serve --trace-dir, 30s budget)"
TSOCK="$(mktemp -u /tmp/arbalest-ci-XXXXXX.sock)"
TDIR="$(mktemp -d /tmp/arbalest-ci-XXXXXX.traces)"
timeout 30 "$ARB" serve --listen "unix:$TSOCK" --shards 2 --trace-dir "$TDIR" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$TSOCK" "$TDIR"' EXIT
for _ in $(seq 1 50); do [[ -S "$TSOCK" ]] && break; sleep 0.1; done
[[ -S "$TSOCK" ]] || { echo "tracing server never bound $TSOCK"; exit 1; }
"$ARB" submit 22 --connect "unix:$TSOCK" --trace --quiet
TRACE_FILE="$(ls "$TDIR"/session-*.json 2>/dev/null | head -1)"
[[ -n "$TRACE_FILE" ]] || { echo "traced session wrote no trace file in $TDIR"; exit 1; }
# The file must be a well-formed Perfetto document with linked causal ids,
# and carry every leg of the batch pipeline.
"$ARB" check-trace "$TRACE_FILE"
for leg in client_submit wal_append shard_job detector_feed; do
    # wal_append only appears with --data-dir; skip it on this instance.
    [[ "$leg" == "wal_append" ]] && continue
    grep -q "\"name\":\"$leg\"" "$TRACE_FILE" \
        || { echo "trace file missing $leg spans"; exit 1; }
done
"$ARB" stop --connect "unix:$TSOCK"
wait "$SERVE_PID" || { echo "tracing server exited non-zero"; exit 1; }
trap - EXIT
rm -rf "$TSOCK" "$TDIR"
echo "    causal-tracing smoke OK"

echo "==> arbalest explain smoke (provenance chains agree with hints)"
EXPLAIN_OUT="$("$ARB" explain 22)"
echo "$EXPLAIN_OUT" | grep -q "causal VSM history" \
    || { echo "explain 22 produced no provenance chain"; exit 1; }
echo "$EXPLAIN_OUT" | grep -q "read_target" \
    || { echo "explain 22 chain lacks the faulting read"; exit 1; }

echo "==> observability smoke (metrics + trace dumps parse)"
METRICS="$(mktemp /tmp/arbalest-ci-XXXXXX.metrics.json)"
SPANS="$(mktemp /tmp/arbalest-ci-XXXXXX.trace.jsonl)"
"$ARB" dracc 22 --quiet --metrics-out "$METRICS" --trace-out "$SPANS"
python3 - "$METRICS" "$SPANS" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["counters"], "metrics dump has no counters"
names = {c["name"] for c in snap["counters"]}
assert "arbalest_detector_accesses_total" in names, names
assert "arbalest_detector_vsm_transition_pairs_total" in names, names
spans = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
assert spans and all("name" in s and "dur_ns" in s for s in spans), "bad span dump"
PY
rm -f "$METRICS" "$SPANS"
echo "    observability smoke OK"

echo "==> observability overhead gate (quick, <=5%)"
OBS_OUT="$(mktemp /tmp/arbalest-ci-XXXXXX.obs.json)"
./target/release/obs_overhead --quick --budget 5 --out "$OBS_OUT"
rm -f "$OBS_OUT"

echo "CI OK"
