//! # arbalest
//!
//! Facade crate for the ARBALEST reproduction: re-exports the offloading
//! runtime, the ARBALEST detector, the baseline tool models, and the
//! benchmark suites under one prelude.
//!
//! See the workspace README for the architecture overview and
//! EXPERIMENTS.md for the paper-vs-measured record.

pub use arbalest_baselines as baselines;
pub use arbalest_core as core;
pub use arbalest_dracc as dracc;
pub use arbalest_offload as offload;
pub use arbalest_race as race;
pub use arbalest_shadow as shadow;
pub use arbalest_spec as spec;

pub mod prelude {
    //! Everything a detector-using program needs.
    pub use arbalest_offload::prelude::*;
}
