//! §III-B: unified memory does not prevent data mapping issues.
//!
//! The same `map(to:)`-only program behaves differently on the two memory
//! models: under separate memories the host reads stale data; under
//! unified memory the implicit flushes at target-region boundaries make
//! the device's update visible. ARBALEST models both — and still rejects
//! the *racy* unified program, which is exactly the residual bug class
//! the paper identifies for unified memory.
//!
//! Run with: `cargo run --example unified_memory`

use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

fn increment_on_device(rt: &Runtime) -> i64 {
    let a = rt.alloc_init::<i64>("a", &[1]);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..1, |k, _| {
            let v = k.read(&a, 0);
            k.write(&a, 0, v + 1);
        });
    });
    rt.read(&a, 0)
}

fn main() {
    // Separate memory model: the host misses the device's increment.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    let v = increment_on_device(&rt);
    println!("separate memories: host sees a = {v} (stale)");
    assert_eq!(v, 1);
    assert!(tool.reports().iter().any(|r| r.kind == ReportKind::MappingUsd));
    println!("  ARBALEST: {} report(s), including use-of-stale-data\n", tool.reports().len());

    // Unified memory: same program, shared storage + implicit flushes.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().unified(true), tool.clone());
    let v = increment_on_device(&rt);
    println!("unified memory:    host sees a = {v} (coherent)");
    assert_eq!(v, 2);
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    println!("  ARBALEST: no reports — the flushes synchronise the views\n");

    // But unified memory cannot fix *concurrent* access without
    // synchronization: the nowait hazard still races.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().unified(true).serialize(true), tool.clone());
    let a = rt.alloc_init::<i64>("a", &[1]);
    rt.target().map(Map::to(&a)).nowait().run(move |k| {
        k.for_each(0..1, |k, _| k.write(&a, 0, 3));
    });
    rt.write(&a, 0, 9); // concurrent host write, no taskwait first
    rt.taskwait();
    let races = rt
        .reports()
        .iter()
        .filter(|r| r.kind == ReportKind::DataRace)
        .count();
    println!("unified + unsynchronized nowait: {races} data race report(s)");
    assert!(races > 0, "unified memory must not hide the race (§III-B)");
}
