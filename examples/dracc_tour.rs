//! Tour of the DRACC-like suite: run all 56 benchmarks under all five
//! tools and print a per-benchmark detection matrix (the long-form
//! version of Table III).
//!
//! Run with: `cargo run --release --example dracc_tour`

use arbalest::baselines::{AddressSanitizer, Archer, Memcheck, MemorySanitizer};
use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

fn make(name: &str) -> Arc<dyn Tool> {
    match name {
        "arbalest" => Arc::new(Arbalest::new(ArbalestConfig::default())),
        "memcheck" => Arc::new(Memcheck::new()),
        "archer" => Arc::new(Archer::new()),
        "asan" => Arc::new(AddressSanitizer::new()),
        _ => Arc::new(MemorySanitizer::new()),
    }
}

fn main() {
    const TOOLS: [&str; 5] = ["arbalest", "memcheck", "archer", "asan", "msan"];
    println!(
        "{:<16}{:<10}{:<34}arbalest memchk archer asan msan",
        "benchmark", "effect", "name"
    );
    println!("{}", "-".repeat(100));
    for b in arbalest::dracc::all() {
        let effect = b.expected.map(|e| e.to_string()).unwrap_or_else(|| "-".into());
        print!("{:<16}{:<10}{:<34}", b.dracc_id(), effect, b.name);
        for tool in TOOLS {
            let t = make(tool);
            let rt = Runtime::with_tool(Config::default(), t);
            b.run(&rt);
            let hit = match b.expected {
                Some(e) => rt.reports().iter().any(|r| r.kind.credits_effect(e)),
                None => !rt.reports().is_empty(), // any report = false positive
            };
            let mark = match (b.expected.is_some(), hit) {
                (true, true) => "\u{2713}",
                (true, false) => "\u{b7}",
                (false, true) => "FP!",
                (false, false) => "\u{b7}",
            };
            print!("{:^8}", mark);
        }
        println!();
    }
    println!("\n\u{2713} = seeded bug detected, \u{b7} = no report, FP! = false positive");
}
