//! The §VI-D case study: SPEC ACCEL 503.postencil 1.2's pointer-swap bug.
//!
//! Runs the buggy and the fixed stencil side by side, shows that the
//! buggy one silently produces a wrong checksum, and prints ARBALEST's
//! Fig. 7-style stale-access report.
//!
//! Run with: `cargo run --example postencil`

use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use arbalest::spec::{postencil, Preset};
use std::sync::Arc;

fn main() {
    // Fixed version (the SPEC 1.3 shape): clean under ARBALEST.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    let good = postencil::run(&rt, Preset::Test);
    println!("fixed   postencil checksum: {good:.6}   reports: {}", tool.reports().len());
    assert!(tool.reports().is_empty());

    // Buggy version (SPEC 1.2): host swaps its grid handles after each
    // kernel; with an odd iteration count the results stay in an
    // `alloc`-mapped corresponding variable that is never copied back.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    let bad = postencil::run_buggy(&rt, Preset::Test);
    println!("buggy   postencil checksum: {bad:.6}   reports: {}", tool.reports().len());

    let stale: Vec<_> =
        tool.reports().into_iter().filter(|r| r.kind == ReportKind::MappingUsd).collect();
    assert!(!stale.is_empty(), "the stale output read must be detected");
    println!("\nARBALEST's report on the output loop (compare paper Fig. 7):\n");
    print!("{}", stale[0].render());
}
