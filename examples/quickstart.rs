//! Quickstart: write an offloading program, attach ARBALEST, and catch
//! the Fig. 1 bug (DRACC_OMP_022) — a `map(alloc:)` that should have
//! been `map(to:)`.
//!
//! Run with: `cargo run --example quickstart`

use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

const N: usize = 64;

fn main() {
    // 1. Create a runtime with ARBALEST attached.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());

    // 2. Allocate tracked host buffers (the "original variables").
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    let b = rt.alloc_with::<f64>("b", N * 4, |_| 1.0);
    let c = rt.alloc_with::<f64>("c", N, |_| 0.0);

    // 3. Offload a matrix-vector-style kernel. The map clause for `b`
    //    says `alloc` — the device copy is allocated but never filled.
    //    (Figure 1 of the paper; the map-type should be `to`.)
    rt.target()
        .map(Map::to(&a))
        .map(Map::alloc(&b)) // BUG
        .map(Map::tofrom(&c))
        .run(move |k| {
            k.par_for(0..N, |k, i| {
                let mut acc = k.read(&c, i);
                for j in 0..4 {
                    acc += k.read(&b, j + i * 4) * k.read(&a, (i + j) % N);
                }
                k.write(&c, i, acc);
            });
        });

    // 4. The program "works" — it just computes garbage:
    println!("c[0] = {} (expected 4.0 if b had been transferred)", rt.read(&c, 0));

    // 5. ARBALEST pinpoints the root cause.
    for report in tool.reports() {
        print!("{}", report.render());
    }
    assert!(tool
        .reports()
        .iter()
        .any(|r| r.kind == ReportKind::MappingUum && r.buffer.as_deref() == Some("b")));
    println!("ARBALEST found the use of uninitialized memory in `b`'s corresponding variable.");
}
