//! Run one buggy program under all five tools and compare what each one
//! sees — a miniature of the paper's §VI-A observation that every prior
//! tool covers only a slice of the data-mapping-issue space.
//!
//! The program contains three seeded issues:
//!   1. a UUM  (`map(alloc:)` that should be `map(to:)`),
//!   2. a BO   (array section longer than the variable),
//!   3. a USD  (`map(to:)` that should be `map(tofrom:)`).
//!
//! Run with: `cargo run --example tool_shootout`

use arbalest::baselines::{AddressSanitizer, Archer, Memcheck, MemorySanitizer};
use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

const N: usize = 64;

fn buggy_program(rt: &Runtime) {
    // Issue 1: UUM.
    let table = rt.alloc_with::<f64>("table", N, |i| i as f64);
    let out = rt.alloc::<f64>("out", N);
    rt.target().map(Map::alloc(&table)).map(Map::from(&out)).run(move |k| {
        k.par_for(0..N, |k, i| k.write(&out, i, k.read(&table, i)));
    });

    // Issue 2: BO (transfer reads past `vec`).
    let vec = rt.alloc_with::<f64>("vec", N, |_| 1.0);
    rt.target().map(Map::to_section(&vec, 0, N + 8)).run(move |k| {
        k.for_each(0..N, |k, i| {
            let _ = k.read(&vec, i);
        });
    });

    // Issue 3: USD.
    let acc = rt.alloc_init::<i64>("acc", &[5; N]);
    rt.target().map(Map::to(&acc)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&acc, i);
            k.write(&acc, i, v * 2);
        });
    });
    let _ = rt.read(&acc, 0); // stale
}

fn main() {
    let tools: Vec<(&str, Arc<dyn Tool>)> = vec![
        ("Arbalest", Arc::new(Arbalest::new(ArbalestConfig::default()))),
        ("Valgrind", Arc::new(Memcheck::new())),
        ("Archer", Arc::new(Archer::new())),
        ("ASan", Arc::new(AddressSanitizer::new())),
        ("MSan", Arc::new(MemorySanitizer::new())),
    ];
    println!("{:<10}{:<8}{:<8}{:<8}  findings", "tool", "UUM", "BO", "USD");
    println!("{}", "-".repeat(70));
    for (name, tool) in tools {
        let rt = Runtime::with_tool(Config::default(), tool);
        buggy_program(&rt);
        let reports = rt.reports();
        let has = |e: Effect| reports.iter().any(|r| r.kind.credits_effect(e));
        let mark = |b: bool| if b { "\u{2713}" } else { "-" };
        let kinds: Vec<&str> = {
            let mut v: Vec<&str> = reports.iter().map(|r| r.kind.label()).collect();
            v.sort();
            v.dedup();
            v
        };
        println!(
            "{:<10}{:<8}{:<8}{:<8}  {}",
            name,
            mark(has(Effect::Uum)),
            mark(has(Effect::Bo)),
            mark(has(Effect::Usd)),
            if kinds.is_empty() { "(silent)".to_string() } else { kinds.join(", ") }
        );
    }
    println!("\nOnly ARBALEST covers all three classes (Table III's punchline).");
}
