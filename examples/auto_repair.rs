//! §III-C "Repairing Data Mapping Issues": the runtime's automatic
//! coherence mode (an X10CUDA/OpenARC-style manager, §VII-A) inserts the
//! transfers the programmer forgot.
//!
//! The same buggy program runs twice: plain (wrong output + ARBALEST
//! report with a suggested fix) and with `auto_coherence(true)` (correct
//! output, no report). A UUM shows the limit of repair: when no valid
//! copy exists anywhere, there is nothing to transfer.
//!
//! Run with: `cargo run --example auto_repair`

use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

const N: usize = 16;

fn buggy_pipeline(rt: &Runtime) -> f64 {
    // map(to:) both ways — results never copied back (benchmark 27's shape).
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target_data().map(Map::to(&a)).scope(|rt| {
        rt.target().map(Map::to(&a)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v * 10.0);
            });
        });
    });
    (0..N).map(|i| rt.read(&a, i)).sum()
}

fn main() {
    let expected: f64 = (0..N).map(|i| (i * 10) as f64).sum();

    // 1. Plain run: detection.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    let sum = buggy_pipeline(&rt);
    println!("plain run:      sum = {sum}   (expected {expected})");
    let report = &tool.reports()[0];
    println!("  ARBALEST: {}", report.message);
    println!("  suggested fix: {}\n", report.suggested_fix.as_deref().unwrap());
    assert_ne!(sum, expected);

    // 2. Auto-coherence run: avoidance.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().auto_coherence(true), tool.clone());
    let sum = buggy_pipeline(&rt);
    println!("auto-coherence: sum = {sum}   (expected {expected})");
    println!("  ARBALEST reports: {}", tool.reports().len());
    assert_eq!(sum, expected);
    assert!(tool.reports().is_empty());

    // 3. The unrepairable class: a UUM with no valid copy anywhere.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().auto_coherence(true), tool.clone());
    let u = rt.alloc::<f64>("u", N); // never initialised
    let out = rt.alloc::<f64>("out", N);
    rt.target().map(Map::alloc(&u)).map(Map::from(&out)).run(move |k| {
        k.par_for(0..N, |k, i| k.write(&out, i, k.read(&u, i)));
    });
    let uum = tool.reports().iter().filter(|r| r.kind == ReportKind::MappingUum).count();
    println!("\nunrepairable UUM (no valid copy anywhere): {uum} report(s) — repair has limits (§III-C)");
    assert!(uum > 0);
}
