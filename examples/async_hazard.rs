//! Figure 2's nondeterministic hazard and Theorem 1 in action.
//!
//! A `nowait` kernel writes a variable while the host also writes it; the
//! `target data` region's exit transfer can interleave either way, so the
//! final host value is schedule-dependent (the paper's Fig. 3 shows the
//! two dependence graphs). A single VSM run might miss the issue —
//! Theorem 1's certification mode (serialized schedule + race check)
//! rejects the program deterministically, and accepts the fixed variant.
//!
//! Run with: `cargo run --example async_hazard`

use arbalest::core::certify;
use arbalest::prelude::*;

fn buggy(rt: &Runtime) {
    let a = rt.alloc_init::<i64>("a", &[1]);
    rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
        rt.target().nowait().run(move |k| {
            k.for_each(0..1, |k, _| k.write(&a, 0, 3)); // racing write
        });
        let v = rt.read(&a, 0);
        rt.write(&a, 0, v + 1); // racing host write
    });
    rt.taskwait();
    println!("  buggy: final a = {} (nondeterministic: 2, 3, or 4)", rt.read(&a, 0));
}

fn fixed(rt: &Runtime) {
    let a = rt.alloc_init::<i64>("a", &[1]);
    rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
        let h = rt.target().nowait().run(move |k| {
            k.for_each(0..1, |k, _| k.write(&a, 0, 3));
        });
        h.wait(); // order the kernel before the host write
        rt.update_from(&a); // observe the device's value
        let v = rt.read(&a, 0);
        rt.write(&a, 0, v + 1);
        rt.update_to(&a); // and push the host's value back
    });
    println!("  fixed: final a = {} (always 4)", rt.read(&a, 0));
    assert_eq!(rt.read(&a, 0), 4);
}

fn main() {
    println!("Running the buggy program a few times (real concurrency):");
    for _ in 0..3 {
        buggy(&Runtime::new(Config::default()));
    }

    println!("\nTheorem-1 certification of the buggy program:");
    let cert = certify(Config::default(), buggy);
    println!(
        "  certified: {}   mapping issues: {}   races: {}",
        cert.certified(),
        cert.mapping_issues.len(),
        cert.races.len()
    );
    assert!(!cert.certified(), "the hazard must be rejected");
    for r in cert.races.iter().take(1) {
        print!("{}", r.render());
    }

    println!("\nTheorem-1 certification of the fixed program:");
    let cert = certify(Config::default(), fixed);
    println!(
        "  certified: {}   mapping issues: {}   races: {}",
        cert.certified(),
        cert.mapping_issues.len(),
        cert.races.len()
    );
    assert!(cert.certified(), "{:?}", cert);
    println!("\nThe fixed program is mapping-issue-free under EVERY schedule (Theorem 1).");
}
