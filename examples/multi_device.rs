//! §IV-C's multi-accelerator extension: the VSM generalises to an
//! (n+1)-tuple of storage locations, one per device plus the host.
//!
//! A pipeline moves data host → device 0 → host → device 1; forgetting
//! the middle hop leaves device 1 with a stale corresponding variable,
//! which ARBALEST attributes to the right device.
//!
//! Run with: `cargo run --example multi_device`

use arbalest::core::{Arbalest, ArbalestConfig};
use arbalest::prelude::*;
use std::sync::Arc;

const N: usize = 32;

fn main() {
    let d0 = DeviceId(1);
    let d1 = DeviceId(2);

    // Correct pipeline: explicit update hops.
    let tool = Arc::new(Arbalest::new(ArbalestConfig { accelerators: 2, ..Default::default() }));
    let rt = Runtime::with_tool(Config::default().accelerators(2), tool.clone());
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target_enter_data(d0, &[Map::to(&a)]);
    rt.target_enter_data(d1, &[Map::to(&a)]);
    rt.target().on_device(d0).map(Map::to(&a)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 100.0);
        });
    });
    rt.update_from_on(d0, &a); // device 0 → host
    rt.update_to_on(d1, &a); //   host → device 1
    rt.target().on_device(d1).map(Map::to(&a)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v * 2.0);
        });
    });
    rt.update_from_on(d1, &a);
    rt.target_exit_data(d0, &[Map::release(&a)]);
    rt.target_exit_data(d1, &[Map::release(&a)]);
    println!("correct pipeline: a[1] = {} (expected 202)", rt.read(&a, 1));
    assert_eq!(rt.read(&a, 1), 202.0);
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    println!("  ARBALEST (multi-device shadow layout): clean\n");

    // Broken pipeline: missing the device0 → host → device1 hops.
    let tool = Arc::new(Arbalest::new(ArbalestConfig { accelerators: 2, ..Default::default() }));
    let rt = Runtime::with_tool(Config::default().accelerators(2), tool.clone());
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target_enter_data(d0, &[Map::to(&a)]);
    rt.target_enter_data(d1, &[Map::to(&a)]);
    rt.target().on_device(d0).map(Map::to(&a)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 100.0);
        });
    });
    // BUG: no update hops — device 1 still holds the original values.
    rt.target().on_device(d1).map(Map::to(&a)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i); // stale on device 1
            k.write(&a, i, v * 2.0);
        });
    });
    let stale: Vec<_> =
        tool.reports().into_iter().filter(|r| r.kind == ReportKind::MappingUsd).collect();
    println!("broken pipeline: {} stale-access report(s)", stale.len());
    assert!(!stale.is_empty());
    print!("{}", stale[0].render());
    assert_eq!(stale[0].device, d1, "attributed to the second accelerator");
}
