//! `omp atomic` construct tests: linearised updates, visibility through
//! the VSM, and exemption from race detection.

use arbalest_offload::prelude::*;

#[test]
fn atomic_add_linearises_concurrent_increments() {
    let rt = Runtime::new(Config::default().team_size(8));
    let counter = rt.alloc_with::<i64>("counter", 1, |_| 0);
    rt.target().map(Map::tofrom(&counter)).run(move |k| {
        k.par_for(0..1000, |k, _| {
            k.atomic_add(&counter, 0, 1);
        });
    });
    assert_eq!(rt.read(&counter, 0), 1000, "no lost updates");
}

#[test]
fn atomic_update_applies_arbitrary_ops() {
    let rt = Runtime::new(Config::default().team_size(4));
    let m = rt.alloc_with::<f64>("max", 1, |_| f64::NEG_INFINITY);
    rt.target().map(Map::tofrom(&m)).run(move |k| {
        k.par_for(0..256, |k, i| {
            let candidate = ((i * 37) % 101) as f64;
            k.atomic_update(&m, 0, |cur| cur.max(candidate));
        });
    });
    assert_eq!(rt.read(&m, 0), 100.0);
}

#[test]
fn atomic_histogram_under_arbalest_and_archer_is_race_free() {
    use arbalest_core::{Arbalest, ArbalestConfig};
    use std::sync::Arc;
    let arb = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let archer = Arc::new(arbalest_baselines_shim::archer());
    let rt = Runtime::new(Config::default().team_size(8));
    rt.attach(arb.clone());
    rt.attach(archer.clone());

    const BINS: usize = 4;
    let hist = rt.alloc_with::<i64>("hist", BINS, |_| 0);
    rt.target().map(Map::tofrom(&hist)).run(move |k| {
        k.par_for(0..512, |k, i| {
            k.atomic_add(&hist, i % BINS, 1);
        });
    });
    let total: i64 = (0..BINS).map(|b| rt.read(&hist, b)).sum();
    assert_eq!(total, 512);
    assert!(arb.reports().is_empty(), "{:?}", arb.reports());
    assert!(archer.reports().is_empty(), "{:?}", archer.reports());
}

// The offload crate cannot depend on the baselines crate (cycle), so the
// cross-tool part lives behind a tiny indirection compiled only when the
// test target links both — via dev-dependencies of this crate.
mod arbalest_baselines_shim {
    pub fn archer() -> impl arbalest_offload::events::Tool {
        arbalest_baselines::Archer::new()
    }
}

#[test]
fn plain_racy_increment_still_reported() {
    use std::sync::Arc;
    let archer = Arc::new(arbalest_baselines::Archer::new());
    let rt = Runtime::with_tool(Config::default().team_size(8), archer.clone());
    let counter = rt.alloc_with::<i64>("counter", 1, |_| 0);
    rt.target().map(Map::tofrom(&counter)).run(move |k| {
        k.par_for(0..64, |k, _| {
            let v = k.read(&counter, 0); // non-atomic RMW: a real race
            k.write(&counter, 0, v + 1);
        });
    });
    assert!(archer.reports().iter().any(|r| r.kind == ReportKind::DataRace));
}

#[test]
fn atomic_on_uninitialised_cv_is_still_a_uum() {
    use arbalest_core::{Arbalest, ArbalestConfig};
    use std::sync::Arc;
    let arb = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), arb.clone());
    let counter = rt.alloc_with::<i64>("counter", 1, |_| 0);
    // map(alloc): the CV starts uninitialised; the atomic's read half is
    // a use of uninitialized memory even though it is synchronised.
    rt.target().map(Map::alloc(&counter)).run(move |k| {
        k.for_each(0..1, |k, _| {
            k.atomic_add(&counter, 0, 1);
        });
    });
    assert!(
        arb.reports().iter().any(|r| r.kind == ReportKind::MappingUum),
        "{:?}",
        arb.reports()
    );
}
