//! Tests for the extended construct surface: leagues of teams,
//! device-to-device copies, and sectioned updates.

use arbalest_offload::prelude::*;
use arbalest_sync::Mutex;
use std::sync::Arc;

#[test]
fn teams_distribute_parallel_for() {
    // The Fig. 1 nesting: teams distribute over rows, parallel for over
    // columns.
    const R: usize = 8;
    const C: usize = 16;
    let rt = Runtime::new(Config::default().team_size(2));
    let a = rt.alloc_with::<f64>("a", R * C, |_| 1.0);
    rt.target().map(Map::tofrom(&a)).run(move |k| {
        k.teams(4, |k, team| {
            // Static distribution of rows across teams.
            let mut r = team;
            while r < R {
                k.par_for(0..C, |k, c| {
                    let v = k.read(&a, r * C + c);
                    k.write(&a, r * C + c, v + (team + 1) as f64);
                });
                r += 4;
            }
        });
    });
    // Row r was processed by team r % 4, adding (r % 4) + 1.
    for r in 0..R {
        for c in 0..C {
            assert_eq!(rt.read(&a, r * C + c), 1.0 + ((r % 4) + 1) as f64);
        }
    }
}

#[test]
fn teams_create_distinct_tasks() {
    #[derive(Default)]
    struct TaskSpy {
        tasks: Mutex<std::collections::HashSet<u32>>,
    }
    impl Tool for TaskSpy {
        fn name(&self) -> &'static str {
            "spy"
        }
        fn on_access(&self, ev: &AccessEvent) {
            if !ev.device.is_host() {
                self.tasks.lock().insert(ev.task.0);
            }
        }
    }
    let spy = Arc::new(TaskSpy::default());
    let rt = Runtime::with_tool(Config::default(), spy.clone());
    let a = rt.alloc_with::<i64>("a", 12, |_| 0);
    rt.target().map(Map::tofrom(&a)).run(move |k| {
        k.teams(3, |k, team| {
            for i in 0..4 {
                k.write(&a, team * 4 + i, team as i64);
            }
        });
    });
    assert_eq!(spy.tasks.lock().len(), 3, "one task per team");
}

#[test]
fn device_to_device_copies_between_accelerators() {
    let rt = Runtime::new(Config::default().accelerators(2));
    let d0 = DeviceId(1);
    let d1 = DeviceId(2);
    let a = rt.alloc_with::<f64>("a", 16, |i| i as f64);
    rt.target_enter_data(d0, &[Map::to(&a)]);
    rt.target_enter_data(d1, &[Map::alloc(&a)]);
    // Compute on device 0.
    rt.target().on_device(d0).map(Map::to(&a)).run(move |k| {
        k.for_each(0..16, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v * 2.0);
        });
    });
    // Direct CV→CV hop (no host round trip).
    rt.device_memcpy(d0, d1, &a);
    // Consume on device 1 and pull back from there.
    rt.target().on_device(d1).map(Map::to(&a)).run(move |k| {
        k.for_each(0..16, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1.0);
        });
    });
    rt.update_from_on(d1, &a);
    for i in 0..16 {
        assert_eq!(rt.read(&a, i), 2.0 * i as f64 + 1.0);
    }
}

#[test]
fn device_memcpy_copies_only_section_overlap() {
    let rt = Runtime::new(Config::default().accelerators(2));
    let d0 = DeviceId(1);
    let d1 = DeviceId(2);
    let a = rt.alloc_with::<f64>("a", 16, |i| i as f64);
    rt.target_enter_data(d0, &[Map::to_section(&a, 0, 8)]);
    rt.target_enter_data(d1, &[Map::alloc_section(&a, 4, 8)]);
    rt.device_memcpy(d0, d1, &a); // overlap is elements 4..8
    rt.update_from_section(d1, &a, 4, 4);
    assert_eq!(rt.read(&a, 5), 5.0);
}

#[test]
fn device_memcpy_without_presence_is_noop() {
    let rt = Runtime::new(Config::default().accelerators(2));
    let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
    rt.device_memcpy(DeviceId(1), DeviceId(2), &a); // neither present
    assert_eq!(rt.read(&a, 0), 1.0);
}

#[test]
fn sectioned_updates_move_partial_data() {
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<f64>("a", 16, |_| 0.0);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..16, |k, i| k.write(&a, i, 100.0 + i as f64));
    });
    // Pull back only the middle quarter.
    rt.update_from_section(DeviceId::ACCEL0, &a, 4, 4);
    for i in 0..16 {
        let expect = if (4..8).contains(&i) { 100.0 + i as f64 } else { 0.0 };
        assert_eq!(rt.read(&a, i), expect, "i = {i}");
    }
    // Push a host patch to the device, covering a different quarter.
    for i in 8..12 {
        rt.write(&a, i, -1.0);
    }
    rt.update_to_section(DeviceId::ACCEL0, &a, 8, 4);
    let out = rt.alloc::<f64>("out", 16);
    rt.target().map(Map::to(&a)).map(Map::from(&out)).run(move |k| {
        k.for_each(0..16, |k, i| k.write(&out, i, k.read(&a, i)));
    });
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&a)]);
    assert_eq!(rt.read(&out, 9), -1.0);
    assert_eq!(rt.read(&out, 2), 102.0);
}
