//! Property-based tests of the memory substrate: the paged address space
//! behaves like a flat byte array, and the mapping layer preserves data
//! through arbitrary legal map/update sequences.

use arbalest_offload::addr::DeviceId;
use arbalest_offload::mem::AddressSpace;
use arbalest_offload::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The address space is an array of bytes: a model HashMap of byte
    /// values agrees with every sized load after arbitrary sized stores.
    #[test]
    fn address_space_is_a_flat_byte_array(
        ops in prop::collection::vec(
            (0u64..256, prop::sample::select(vec![1usize, 2, 4, 8]), any::<u64>()), 1..100)
    ) {
        let space = AddressSpace::new(DeviceId::ACCEL0);
        let base = space.alloc(256 + 8);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (off, size, value) in ops {
            let off = off - (off % size as u64); // align to the size
            let addr = base + off;
            space.store(addr, size, value);
            for b in 0..size as u64 {
                model.insert(off + b, ((value >> (8 * b)) & 0xFF) as u8);
            }
            // Check a few random loads of every size.
            for check_size in [1usize, 2, 4, 8] {
                let coff = off - (off % check_size as u64);
                let got = space.load(base + coff, check_size);
                let mut want = 0u64;
                for b in (0..check_size as u64).rev() {
                    want = (want << 8) | *model.get(&(coff + b)).unwrap_or(&0) as u64;
                }
                prop_assert_eq!(got, want, "off={} size={}", coff, check_size);
            }
        }
    }

    /// Tracked buffers round-trip arbitrary values through a device and
    /// back (map tofrom), element-wise, for every scalar width.
    #[test]
    fn tofrom_roundtrip_preserves_values(values in prop::collection::vec(any::<i64>(), 1..64)) {
        let rt = Runtime::new(Config::default().team_size(2));
        let a = rt.alloc_init::<i64>("a", &values);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..a.len(), |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v);
            });
        });
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(rt.read(&a, i), *v);
        }
    }

    /// Float bit patterns (incl. NaN payloads) survive the round trip.
    #[test]
    fn float_bits_survive(bits in prop::collection::vec(any::<u64>(), 1..32)) {
        let rt = Runtime::new(Config::default());
        let values: Vec<f64> = bits.iter().map(|b| f64::from_bits(*b)).collect();
        let a = rt.alloc_init::<f64>("a", &values);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..a.len(), |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v);
            });
        });
        for (i, b) in bits.iter().enumerate() {
            prop_assert_eq!(rt.read(&a, i).to_bits(), *b);
        }
    }

    /// Reference counting: after N matching enter/exit pairs, presence is
    /// restored to the initial state and host data equals the device's
    /// last copy-back, regardless of nesting depth.
    #[test]
    fn refcount_nesting_depth_invariant(depth in 1usize..6) {
        let rt = Runtime::new(Config::default());
        let a = rt.alloc_with::<i64>("a", 16, |i| i as i64);
        for _ in 0..depth {
            rt.target_enter_data(DeviceId::ACCEL0, &[Map::tofrom(&a)]);
        }
        prop_assert!(rt.is_present(DeviceId::ACCEL0, &a));
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..16, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1000);
            });
        });
        for step in 0..depth {
            prop_assert!(rt.is_present(DeviceId::ACCEL0, &a), "still present at {step}");
            rt.target_exit_data(DeviceId::ACCEL0, &[Map::tofrom(&a)]);
        }
        prop_assert!(!rt.is_present(DeviceId::ACCEL0, &a));
        prop_assert_eq!(rt.read(&a, 3), 1003, "copy-back happened exactly at depth 0");
    }

    /// Sections: mapping [start, start+len) moves exactly those elements.
    #[test]
    fn section_boundaries_are_exact(start in 0usize..24, len in 1usize..24) {
        let n = 64usize;
        prop_assume!(start + len <= n);
        let rt = Runtime::new(Config::default());
        let a = rt.alloc_with::<i64>("a", n, |i| i as i64);
        rt.target().map(Map::tofrom_section(&a, start, len)).run(move |k| {
            k.for_each(start..start + len, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, -v - 1);
            });
        });
        for i in 0..n {
            let expect = if (start..start + len).contains(&i) { -(i as i64) - 1 } else { i as i64 };
            prop_assert_eq!(rt.read(&a, i), expect, "i = {}", i);
        }
    }
}
