//! Property-based tests of the memory substrate: the paged address space
//! behaves like a flat byte array, and the mapping layer preserves data
//! through arbitrary legal map/update sequences.
//!
//! The properties run as deterministic seeded loops (hermetic proptest
//! replacement — the workspace builds without registry access).

use arbalest_offload::addr::DeviceId;
use arbalest_offload::mem::AddressSpace;
use arbalest_offload::prelude::*;
use std::collections::HashMap;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The address space is an array of bytes: a model HashMap of byte
/// values agrees with every sized load after arbitrary sized stores.
#[test]
fn address_space_is_a_flat_byte_array() {
    for seed in 1..=64u64 {
        let mut rng = Rng::new(seed);
        let space = AddressSpace::new(DeviceId::ACCEL0);
        let base = space.alloc(256 + 8);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for _ in 0..100 {
            let off = rng.below(256);
            let size = [1usize, 2, 4, 8][rng.below(4) as usize];
            let value = rng.next();
            let off = off - (off % size as u64); // align to the size
            let addr = base + off;
            space.store(addr, size, value);
            for b in 0..size as u64 {
                model.insert(off + b, ((value >> (8 * b)) & 0xFF) as u8);
            }
            // Check loads of every size at the same spot.
            for check_size in [1usize, 2, 4, 8] {
                let coff = off - (off % check_size as u64);
                let got = space.load(base + coff, check_size);
                let mut want = 0u64;
                for b in (0..check_size as u64).rev() {
                    want = (want << 8) | *model.get(&(coff + b)).unwrap_or(&0) as u64;
                }
                assert_eq!(got, want, "seed={seed} off={coff} size={check_size}");
            }
        }
    }
}

/// Tracked buffers round-trip arbitrary values through a device and
/// back (map tofrom), element-wise, for every scalar width.
#[test]
fn tofrom_roundtrip_preserves_values() {
    for seed in 1..=32u64 {
        let mut rng = Rng::new(seed);
        let n = 1 + rng.below(63) as usize;
        let values: Vec<i64> = (0..n).map(|_| rng.next() as i64).collect();
        let rt = Runtime::new(Config::default().team_size(2));
        let a = rt.alloc_init::<i64>("a", &values);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..a.len(), |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v);
            });
        });
        for (i, v) in values.iter().enumerate() {
            assert_eq!(rt.read(&a, i), *v, "seed={seed} i={i}");
        }
    }
}

/// Float bit patterns (incl. NaN payloads) survive the round trip.
#[test]
fn float_bits_survive() {
    for seed in 1..=32u64 {
        let mut rng = Rng::new(seed ^ 0xF10A7);
        let n = 1 + rng.below(31) as usize;
        // Mix fully random bit patterns with NaN-payload patterns.
        let bits: Vec<u64> = (0..n)
            .map(|i| if i % 3 == 0 { 0x7FF8_0000_0000_0000 | rng.below(1 << 50) } else { rng.next() })
            .collect();
        let rt = Runtime::new(Config::default());
        let values: Vec<f64> = bits.iter().map(|b| f64::from_bits(*b)).collect();
        let a = rt.alloc_init::<f64>("a", &values);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..a.len(), |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v);
            });
        });
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(rt.read(&a, i).to_bits(), *b, "seed={seed} i={i}");
        }
    }
}

/// Reference counting: after N matching enter/exit pairs, presence is
/// restored to the initial state and host data equals the device's
/// last copy-back, regardless of nesting depth.
#[test]
fn refcount_nesting_depth_invariant() {
    for depth in 1usize..6 {
        let rt = Runtime::new(Config::default());
        let a = rt.alloc_with::<i64>("a", 16, |i| i as i64);
        for _ in 0..depth {
            rt.target_enter_data(DeviceId::ACCEL0, &[Map::tofrom(&a)]);
        }
        assert!(rt.is_present(DeviceId::ACCEL0, &a));
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..16, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1000);
            });
        });
        for step in 0..depth {
            assert!(rt.is_present(DeviceId::ACCEL0, &a), "still present at {step}");
            rt.target_exit_data(DeviceId::ACCEL0, &[Map::tofrom(&a)]);
        }
        assert!(!rt.is_present(DeviceId::ACCEL0, &a));
        assert_eq!(rt.read(&a, 3), 1003, "copy-back happened exactly at depth 0");
    }
}

/// Sections: mapping [start, start+len) moves exactly those elements.
#[test]
fn section_boundaries_are_exact() {
    let n = 64usize;
    for seed in 1..=48u64 {
        let mut rng = Rng::new(seed ^ 0x5EC7);
        let start = rng.below(24) as usize;
        let len = 1 + rng.below(23) as usize;
        let rt = Runtime::new(Config::default());
        let a = rt.alloc_with::<i64>("a", n, |i| i as i64);
        rt.target().map(Map::tofrom_section(&a, start, len)).run(move |k| {
            k.for_each(start..start + len, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, -v - 1);
            });
        });
        for i in 0..n {
            let expect = if (start..start + len).contains(&i) { -(i as i64) - 1 } else { i as i64 };
            assert_eq!(rt.read(&a, i), expect, "seed={seed} i={i}");
        }
    }
}
