//! `omp critical` tests: mutual exclusion, acquire/release ordering for
//! the race detectors, and independence of differently named sections.

use arbalest_baselines::Archer;
use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;

#[test]
fn critical_increment_is_exact_and_race_free() {
    let arb = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let archer = Arc::new(Archer::new());
    let rt = Runtime::new(Config::default().team_size(8));
    rt.attach(arb.clone());
    rt.attach(archer.clone());

    let c = rt.alloc_with::<i64>("c", 1, |_| 0);
    rt.target().map(Map::tofrom(&c)).run(move |k| {
        k.par_for(0..500, |k, _| {
            k.critical("tally", |k| {
                let v = k.read(&c, 0);
                k.write(&c, 0, v + 1);
            });
        });
    });
    assert_eq!(rt.read(&c, 0), 500, "mutual exclusion: no lost updates");
    assert!(arb.reports().is_empty(), "{:?}", arb.reports());
    assert!(archer.reports().is_empty(), "{:?}", archer.reports());
}

#[test]
fn differently_named_sections_do_not_synchronise() {
    // Two team threads under DIFFERENT critical names touching the same
    // location: mutual exclusion does not hold between them, and the
    // race detector must notice even if the timing happens to be benign.
    let archer = Arc::new(Archer::new());
    let rt = Runtime::with_tool(Config::default().team_size(2), archer.clone());
    let c = rt.alloc_with::<i64>("c", 1, |_| 0);
    rt.target().map(Map::tofrom(&c)).run(move |k| {
        k.par_for(0..2, |k, i| {
            let name = if i == 0 { "left" } else { "right" };
            k.critical(name, |k| {
                let v = k.read(&c, 0);
                k.write(&c, 0, v + 1);
            });
        });
    });
    assert!(
        archer.reports().iter().any(|r| r.kind == ReportKind::DataRace),
        "disjoint locks give no ordering: {:?}",
        archer.reports()
    );
}

#[test]
fn critical_returns_values_and_nests_host_state() {
    let rt = Runtime::new(Config::default().team_size(2));
    let c = rt.alloc_with::<i64>("c", 4, |_| 5);
    let out = rt.alloc::<i64>("out", 1);
    rt.target().map(Map::to(&c)).map(Map::from(&out)).run(move |k| {
        let total = k.par_reduce(
            0..4,
            0i64,
            move |k, i| k.critical("sum", |k| k.read(&c, i)),
            |a, b| a + b,
        );
        k.write(&out, 0, total);
    });
    assert_eq!(rt.read(&out, 0), 20);
}
