//! Integration tests for the offloading runtime's observable semantics:
//! data movement per Table I, async tasks, dependences, sections, and
//! unified memory. These tests use a recording tool to also validate the
//! event stream detectors rely on.

use arbalest_offload::prelude::*;
use arbalest_sync::Mutex;
use std::sync::Arc;

/// Records every event category for assertions.
#[derive(Default)]
struct Recorder {
    accesses: Mutex<Vec<(DeviceId, u64, bool, TaskId)>>,
    transfers: Mutex<Vec<(TransferKind, u64, bool)>>,
    data_ops: Mutex<Vec<(DataOpKind, u64, bool)>>,
    syncs: Mutex<Vec<String>>,
    pools: Mutex<Vec<(DeviceId, u64)>>,
}

impl Tool for Recorder {
    fn name(&self) -> &'static str {
        "recorder"
    }
    fn on_access(&self, ev: &AccessEvent) {
        self.accesses.lock().push((ev.device, ev.addr, ev.is_write, ev.task));
    }
    fn on_transfer(&self, ev: &TransferEvent) {
        self.transfers.lock().push((ev.kind, ev.len, ev.staged));
    }
    fn on_data_op(&self, ev: &DataOpEvent) {
        self.data_ops.lock().push((ev.kind, ev.len, ev.plugin_visible));
    }
    fn on_sync(&self, ev: &SyncEvent) {
        let s = match ev {
            SyncEvent::TaskCreate { parent, child } => format!("create {}->{}", parent.0, child.0),
            SyncEvent::TaskEnd { task } => format!("end {}", task.0),
            SyncEvent::TaskJoin { waiter, joined } => format!("join {}<-{}", waiter.0, joined.0),
            SyncEvent::Acquire { task, lock } => format!("acquire {} {}", task.0, lock),
            SyncEvent::Release { task, lock } => format!("release {} {}", task.0, lock),
        };
        self.syncs.lock().push(s);
    }
    fn on_pool_alloc(&self, device: DeviceId, base: u64, _len: u64) {
        self.pools.lock().push((device, base));
    }
}

fn rt_with_recorder(cfg: Config) -> (Runtime, Arc<Recorder>) {
    let rec = Arc::new(Recorder::default());
    let rt = Runtime::with_tool(cfg, rec.clone());
    (rt, rec)
}

#[test]
fn tofrom_roundtrips_computation() {
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<f64>("a", 100, |i| i as f64);
    let b = rt.alloc::<f64>("b", 100);
    rt.target().map(Map::to(&a)).map(Map::from(&b)).run(move |k| {
        k.for_each(0..100, |k, i| {
            let v = k.read(&a, i);
            k.write(&b, i, v * v);
        });
    });
    for i in 0..100 {
        assert_eq!(rt.read(&b, i), (i * i) as f64);
    }
}

#[test]
fn map_to_does_not_copy_back() {
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<i64>("a", 4, |_| 7);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..4, |k, i| k.write(&a, i, 42));
    });
    // Host copy unchanged: the device wrote only the CV.
    for i in 0..4 {
        assert_eq!(rt.read(&a, i), 7);
    }
}

#[test]
fn alloc_map_provides_zeroed_uninitialized_cv() {
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<i64>("a", 4, |_| 9);
    let out = rt.alloc::<i64>("out", 4);
    rt.target().map(Map::alloc(&a)).map(Map::from(&out)).run(move |k| {
        k.for_each(0..4, |k, i| {
            // Simulated fresh device memory reads zero, not host data.
            let v = k.read(&a, i);
            k.write(&out, i, v);
        });
    });
    for i in 0..4 {
        assert_eq!(rt.read(&out, i), 0);
    }
}

#[test]
fn refcount_suppresses_inner_transfers() {
    let (rt, rec) = rt_with_recorder(Config::default());
    let a = rt.alloc_with::<f64>("a", 8, |i| i as f64);
    rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
        // Host update between kernels is NOT visible on the device:
        // the inner map(to) finds the CV present and skips the copy.
        for i in 0..8 {
            rt.write(&a, i, -1.0);
        }
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 100.0);
            });
        });
    });
    // Device saw the ORIGINAL values (i), not -1.0.
    for i in 0..8 {
        assert_eq!(rt.read(&a, i), i as f64 + 100.0);
    }
    // Exactly one ToDevice and one FromDevice transfer happened.
    let transfers = rec.transfers.lock();
    let to = transfers.iter().filter(|(k, _, _)| *k == TransferKind::ToDevice).count();
    let from = transfers.iter().filter(|(k, _, _)| *k == TransferKind::FromDevice).count();
    assert_eq!((to, from), (1, 1));
}

#[test]
fn update_transfers_ignore_refcount_and_are_staged() {
    let (rt, rec) = rt_with_recorder(Config::default());
    let a = rt.alloc_with::<f64>("a", 8, |i| i as f64);
    rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
        for i in 0..8 {
            rt.write(&a, i, 50.0 + i as f64);
        }
        rt.update_to(&a); // forces OV -> CV
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v * 2.0);
            });
        });
    });
    for i in 0..8 {
        assert_eq!(rt.read(&a, i), 2.0 * (50.0 + i as f64));
    }
    assert!(
        rec.transfers.lock().iter().any(|(k, _, staged)| *k == TransferKind::ToDevice && *staged),
        "update transfer should be staged by default"
    );
}

#[test]
fn sections_map_partially() {
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<i64>("a", 10, |i| i as i64);
    rt.target().map(Map::tofrom_section(&a, 2, 4)).run(move |k| {
        k.for_each(2..6, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1000);
        });
    });
    let host = rt.read_all(&a);
    assert_eq!(host[0..2], [0, 1]);
    assert_eq!(host[2..6], [1002, 1003, 1004, 1005]);
    assert_eq!(host[6..10], [6, 7, 8, 9]);
}

#[test]
fn nowait_plus_taskwait_synchronizes() {
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<i64>("a", 64, |_| 1);
    let h = rt.target().map(Map::tofrom(&a)).nowait().run(move |k| {
        k.par_for(0..64, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v * 3);
        });
    });
    h.wait();
    for i in 0..64 {
        assert_eq!(rt.read(&a, i), 3);
    }
}

#[test]
fn serialize_nowait_keeps_results_and_async_hb_shape() {
    let (rt, rec) = rt_with_recorder(Config::default().serialize(true));
    let a = rt.alloc_with::<i64>("a", 8, |_| 2);
    rt.target().map(Map::tofrom(&a)).nowait().run(move |k| {
        k.for_each(0..8, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 5);
        });
    });
    // Body already ran inline; but no host<-task join edge exists yet.
    let joined_to_host =
        rec.syncs.lock().iter().any(|s| s.starts_with("join 0<-"));
    assert!(!joined_to_host, "serialize mode must not add host join edges before taskwait");
    rt.taskwait();
    assert!(rec.syncs.lock().iter().any(|s| s.starts_with("join 0<-")));
    for i in 0..8 {
        assert_eq!(rt.read(&a, i), 7);
    }
}

#[test]
fn depend_chains_order_async_kernels() {
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<i64>("a", 256, |_| 0);
    // Chain of dependent nowait kernels: each adds 1 to every element.
    for _ in 0..4 {
        rt.target()
            .map(Map::tofrom(&a))
            .depend(Depend::write(&a))
            .nowait()
            .run(move |k| {
                k.for_each(0..256, |k, i| {
                    let v = k.read(&a, i);
                    k.write(&a, i, v + 1);
                });
            });
    }
    rt.taskwait();
    for i in 0..256 {
        assert_eq!(rt.read(&a, i), 4, "dependence chain must serialize increments");
    }
}

#[test]
fn unified_memory_shares_storage() {
    let (rt, rec) = rt_with_recorder(Config::default().unified(true));
    let a = rt.alloc_with::<f64>("a", 16, |i| i as f64);
    // Even map(to): with unified memory the host observes device writes.
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..16, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 0.5);
        });
    });
    for i in 0..16 {
        assert_eq!(rt.read(&a, i), i as f64 + 0.5);
    }
    // Transfer events are flagged unified and move no bytes.
    assert!(rec.transfers.lock().iter().all(|_| true));
    let ops = rec.data_ops.lock();
    assert!(ops.iter().all(|(_, _, visible)| *visible), "unified CVs are plugin visible");
}

#[test]
fn pooled_plugin_hides_cv_ops_and_announces_pool() {
    let (rt, rec) = rt_with_recorder(Config::default());
    let a = rt.alloc_with::<f64>("a", 8, |i| i as f64);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..8, |k, i| {
            let _ = k.read(&a, i);
        });
    });
    assert_eq!(rec.pools.lock().len(), 1, "one pool announcement");
    assert!(rec.data_ops.lock().iter().all(|(_, _, visible)| !visible));

    // Non-pooled plugin: CV ops become visible, no pool.
    let (rt, rec) = rt_with_recorder(Config::default().pooled(false));
    let a = rt.alloc_with::<f64>("a", 8, |i| i as f64);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..8, |k, i| {
            let _ = k.read(&a, i);
        });
    });
    assert!(rec.pools.lock().is_empty());
    assert!(rec.data_ops.lock().iter().all(|(_, _, visible)| *visible));
}

#[test]
fn kernel_accesses_attributed_to_device_and_tasks() {
    let (rt, rec) = rt_with_recorder(Config::default().team_size(4));
    let a = rt.alloc_with::<i64>("a", 32, |_| 1);
    rt.target().map(Map::tofrom(&a)).run(move |k| {
        k.par_for(0..32, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1);
        });
    });
    let accesses = rec.accesses.lock();
    let device_accesses: Vec<_> =
        accesses.iter().filter(|(d, _, _, _)| *d == DeviceId::ACCEL0).collect();
    assert_eq!(device_accesses.len(), 64, "32 reads + 32 writes on device");
    let tasks: std::collections::HashSet<u32> =
        device_accesses.iter().map(|(_, _, _, t)| t.0).collect();
    assert_eq!(tasks.len(), 4, "four team-thread tasks");
}

#[test]
fn multiple_devices_have_independent_present_tables() {
    let rt = Runtime::new(Config::default().accelerators(2));
    let a = rt.alloc_with::<i64>("a", 8, |_| 5);
    let d0 = DeviceId(1);
    let d1 = DeviceId(2);
    rt.target_enter_data(d0, &[Map::to(&a)]);
    assert!(rt.is_present(d0, &a));
    assert!(!rt.is_present(d1, &a));
    rt.target().on_device(d1).map(Map::tofrom(&a)).run(move |k| {
        k.for_each(0..8, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v * 10);
        });
    });
    assert!(!rt.is_present(d1, &a), "structured map released dev1 CV");
    assert!(rt.is_present(d0, &a));
    rt.target_exit_data(d0, &[Map::release(&a)]);
    assert!(!rt.is_present(d0, &a));
    assert_eq!(rt.read(&a, 0), 50);
}

#[test]
fn host_device_target_reads_ov_directly() {
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<i64>("a", 4, |i| i as i64);
    let out = rt.alloc::<i64>("out", 4);
    // Offloading to the host: no mapping needed, kernel sees host data.
    rt.target().on_device(DeviceId::HOST).run(move |k| {
        k.for_each(0..4, |k, i| {
            let v = k.read(&a, i);
            k.write(&out, i, v * 2);
        });
    });
    for i in 0..4 {
        assert_eq!(rt.read(&out, i), 2 * i as i64);
    }
}

#[test]
fn enter_exit_data_persist_cv_across_kernels() {
    let rt = Runtime::new(Config::default());
    let a = rt.alloc_with::<i64>("a", 8, |_| 1);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
    for _ in 0..3 {
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1);
            });
        });
    }
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::from_section(&a, 0, 8)]);
    for i in 0..8 {
        assert_eq!(rt.read(&a, i), 4, "CV persisted across the three kernels");
    }
}

#[test]
fn par_reduce_computes_dot_product() {
    let rt = Runtime::new(Config::default().team_size(3));
    let x = rt.alloc_with::<f64>("x", 100, |i| i as f64);
    let y = rt.alloc_with::<f64>("y", 100, |_| 2.0);
    let out = rt.alloc::<f64>("out", 1);
    rt.target().map(Map::to(&x)).map(Map::to(&y)).map(Map::from(&out)).run(move |k| {
        let dot = k.par_reduce(0..100, 0.0, |k, i| k.read(&x, i) * k.read(&y, i), |a, b| a + b);
        k.write(&out, 0, dot);
    });
    assert_eq!(rt.read(&out, 0), 2.0 * (99.0 * 100.0 / 2.0));
}

#[test]
fn free_buffer_notifies_tools() {
    let (rt, _rec) = rt_with_recorder(Config::default());
    let a = rt.alloc_with::<i64>("a", 4, |_| 0);
    rt.free(&a);
}
