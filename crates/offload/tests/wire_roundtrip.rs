//! Wire-format round-trip coverage: every `TraceEvent` variant encodes
//! and decodes to an equal value, seeded fuzz over random event streams
//! holds `decode(encode(x)) == x`, and truncated or corrupted bytes
//! always yield a typed [`WireError`] — never a panic and never an
//! oversized allocation.

use arbalest_offload::addr::DeviceId;
use arbalest_offload::buffer::{BufferId, BufferInfo};
use arbalest_offload::events::{
    AccessEvent, ConstructEvent, DataOpEvent, DataOpKind, SrcLoc, SyncEvent, TaskId,
    TransferEvent, TransferKind,
};
use arbalest_offload::trace::TraceEvent;
use arbalest_offload::wire::{self, Cursor, WireError};

/// Deterministic splitmix64 stream (the repo's standard test PRNG).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn loc(rng: &mut Rng) -> SrcLoc {
    let files = ["kernel.rs", "host.rs", "crates/dracc/src/buggy.rs"];
    SrcLoc::intern(
        files[rng.below(files.len() as u64) as usize],
        rng.below(5000) as u32,
        rng.below(120) as u32,
    )
}

fn random_event(rng: &mut Rng) -> TraceEvent {
    let task = TaskId(rng.below(32) as u32);
    let device = DeviceId(rng.below(4) as u16);
    let buffer = BufferId(rng.below(16) as u32);
    match rng.below(8) {
        0 => TraceEvent::BufferRegistered(BufferInfo {
            id: buffer,
            name: format!("buf{}", rng.below(100)),
            elem_size: 1 << rng.below(4),
            len: rng.below(4096) as usize,
            ov_base: rng.next() & 0xFFFF_FFFF_F000,
        }),
        1 => TraceEvent::HostFree(BufferInfo {
            id: buffer,
            name: String::new(),
            elem_size: 8,
            len: rng.below(64) as usize,
            ov_base: rng.next() & 0xFFFF_F000,
        }),
        2 => TraceEvent::PoolAlloc { device, base: rng.next(), len: rng.below(1 << 20) },
        3 => TraceEvent::DataOp(DataOpEvent {
            device,
            buffer,
            kind: if rng.chance(50) { DataOpKind::CvAlloc } else { DataOpKind::CvDelete },
            cv_base: rng.next(),
            ov_addr: rng.next(),
            len: rng.below(1 << 16),
            plugin_visible: rng.chance(80),
            task,
        }),
        4 => TraceEvent::Transfer(TransferEvent {
            buffer,
            kind: match rng.below(3) {
                0 => TransferKind::ToDevice,
                1 => TransferKind::FromDevice,
                _ => TransferKind::DeviceToDevice,
            },
            src_device: device,
            src_addr: rng.next(),
            dst_device: DeviceId(rng.below(4) as u16),
            dst_addr: rng.next(),
            len: rng.below(1 << 16),
            task,
            staged: rng.chance(20),
            unified: rng.chance(10),
        }),
        5 => TraceEvent::Access(AccessEvent {
            device,
            addr: rng.next(),
            size: 1 << rng.below(4),
            is_write: rng.chance(50),
            task,
            buffer: if rng.chance(70) { Some(buffer) } else { None },
            mapped: rng.chance(90),
            atomic: rng.chance(5),
            loc: loc(rng),
        }),
        6 => TraceEvent::Sync(match rng.below(5) {
            0 => SyncEvent::TaskCreate { parent: task, child: TaskId(task.0 + 1) },
            1 => SyncEvent::TaskEnd { task },
            2 => SyncEvent::TaskJoin { waiter: task, joined: TaskId(task.0 + 1) },
            3 => SyncEvent::Acquire { task, lock: rng.next() },
            _ => SyncEvent::Release { task, lock: rng.next() },
        }),
        _ => TraceEvent::Construct(if rng.chance(50) {
            ConstructEvent::TargetBegin { task, device, nowait: rng.chance(30) }
        } else {
            ConstructEvent::TargetEnd { task }
        }),
    }
}

fn round_trip(ev: &TraceEvent) -> TraceEvent {
    let mut bytes = Vec::new();
    wire::encode_event(ev, &mut bytes);
    let mut cur = Cursor::new(&bytes);
    let back = wire::decode_event(&mut cur).expect("decode");
    assert!(cur.is_empty(), "decoder left {} trailing byte(s) for {ev:?}", cur.remaining());
    back
}

/// One hand-written exemplar per variant (and per sub-variant), so a tag
/// remap or field reorder fails with a readable diff rather than only in
/// fuzz.
fn exemplars() -> Vec<TraceEvent> {
    let loc = SrcLoc::intern("exemplar.rs", 42, 7);
    vec![
        TraceEvent::BufferRegistered(BufferInfo {
            id: BufferId(3),
            name: "grid".into(),
            elem_size: 8,
            len: 1024,
            ov_base: 0x2000_0000_0000,
        }),
        TraceEvent::HostFree(BufferInfo {
            id: BufferId(3),
            name: "grid".into(),
            elem_size: 8,
            len: 1024,
            ov_base: 0x2000_0000_0000,
        }),
        TraceEvent::PoolAlloc { device: DeviceId(1), base: 0x7000_0000, len: 1 << 26 },
        TraceEvent::DataOp(DataOpEvent {
            device: DeviceId(1),
            buffer: BufferId(3),
            kind: DataOpKind::CvAlloc,
            cv_base: 0x7000_1000,
            ov_addr: 0x2000_0000_0000,
            len: 8192,
            plugin_visible: true,
            task: TaskId(2),
        }),
        TraceEvent::DataOp(DataOpEvent {
            device: DeviceId(1),
            buffer: BufferId(3),
            kind: DataOpKind::CvDelete,
            cv_base: 0x7000_1000,
            ov_addr: 0x2000_0000_0000,
            len: 8192,
            plugin_visible: false,
            task: TaskId(2),
        }),
        TraceEvent::Transfer(TransferEvent {
            buffer: BufferId(3),
            kind: TransferKind::ToDevice,
            src_device: DeviceId(0),
            src_addr: 0x2000_0000_0000,
            dst_device: DeviceId(1),
            dst_addr: 0x7000_1000,
            len: 8192,
            task: TaskId(2),
            staged: false,
            unified: false,
        }),
        TraceEvent::Transfer(TransferEvent {
            buffer: BufferId(4),
            kind: TransferKind::FromDevice,
            src_device: DeviceId(1),
            src_addr: 0x7000_2000,
            dst_device: DeviceId(0),
            dst_addr: 0x2000_0001_0000,
            len: 64,
            task: TaskId(0),
            staged: true,
            unified: false,
        }),
        TraceEvent::Transfer(TransferEvent {
            buffer: BufferId(5),
            kind: TransferKind::DeviceToDevice,
            src_device: DeviceId(1),
            src_addr: 0x7000_3000,
            dst_device: DeviceId(2),
            dst_addr: 0x8000_3000,
            len: 256,
            task: TaskId(1),
            staged: false,
            unified: true,
        }),
        TraceEvent::Access(AccessEvent {
            device: DeviceId(1),
            addr: 0x7000_1008,
            size: 8,
            is_write: true,
            task: TaskId(2),
            buffer: Some(BufferId(3)),
            mapped: true,
            atomic: false,
            loc,
        }),
        TraceEvent::Access(AccessEvent {
            device: DeviceId(0),
            addr: 0x2000_0000_0010,
            size: 4,
            is_write: false,
            task: TaskId(0),
            buffer: None,
            mapped: false,
            atomic: true,
            loc,
        }),
        TraceEvent::Sync(SyncEvent::TaskCreate { parent: TaskId(0), child: TaskId(1) }),
        TraceEvent::Sync(SyncEvent::TaskEnd { task: TaskId(1) }),
        TraceEvent::Sync(SyncEvent::TaskJoin { waiter: TaskId(0), joined: TaskId(1) }),
        TraceEvent::Sync(SyncEvent::Acquire { task: TaskId(1), lock: 0xDEAD_BEEF }),
        TraceEvent::Sync(SyncEvent::Release { task: TaskId(1), lock: 0xDEAD_BEEF }),
        TraceEvent::Construct(ConstructEvent::TargetBegin {
            task: TaskId(2),
            device: DeviceId(1),
            nowait: true,
        }),
        TraceEvent::Construct(ConstructEvent::TargetEnd { task: TaskId(2) }),
    ]
}

#[test]
fn every_variant_round_trips() {
    for ev in exemplars() {
        assert_eq!(round_trip(&ev), ev);
    }
}

#[test]
fn exemplar_stream_round_trips_as_trace() {
    let events = exemplars();
    let bytes = wire::encode_trace(&events);
    assert_eq!(wire::decode_trace(&bytes).expect("decode trace"), events);
}

#[test]
fn fuzz_round_trip_is_identity() {
    let mut rng = Rng(0xA5BA_1E57);
    for _ in 0..200 {
        let events: Vec<TraceEvent> =
            (0..rng.below(64) + 1).map(|_| random_event(&mut rng)).collect();
        let bytes = wire::encode_trace(&events);
        assert_eq!(wire::decode_trace(&bytes).expect("decode trace"), events);
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let events = exemplars();
    let bytes = wire::encode_trace(&events);
    // Every proper prefix must fail cleanly — a cut cannot decode to a
    // full trace (the header carries no length, so truncation shows up as
    // a short read or a short event list).
    for cut in 0..bytes.len() {
        match wire::decode_trace(&bytes[..cut]) {
            Err(_) => {}
            Ok(decoded) => {
                panic!("prefix of {cut}/{} bytes decoded to {} event(s)", bytes.len(), decoded.len())
            }
        }
    }
}

#[test]
fn corrupted_bytes_never_panic() {
    let mut rng = Rng(0xC0FF_EE00);
    let events = exemplars();
    let pristine = wire::encode_trace(&events);
    for _ in 0..500 {
        let mut bytes = pristine.clone();
        // Flip 1–4 random bytes anywhere (magic, tags, lengths, payload).
        for _ in 0..rng.below(4) + 1 {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= (rng.next() & 0xFF) as u8;
        }
        // Either it still decodes (the flip hit a don't-care value like an
        // address) or it fails with a typed error; it must never panic or
        // hang on allocation.
        let _ = wire::decode_trace(&bytes);
    }
}

#[test]
fn hostile_lengths_do_not_allocate() {
    // A count field of u32::MAX with no bytes behind it must be refused
    // by the bound check, not fed to Vec::with_capacity.
    let mut bytes = wire::TRACE_MAGIC.to_vec();
    bytes.extend_from_slice(&wire::WIRE_VERSION.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    match wire::decode_trace(&bytes) {
        Err(WireError::Oversize { .. }) | Err(WireError::Truncated { .. }) => {}
        other => panic!("hostile count accepted: {other:?}"),
    }

    // Same for a string length inside a BufferRegistered event.
    let mut bytes = wire::TRACE_MAGIC.to_vec();
    bytes.extend_from_slice(&wire::WIRE_VERSION.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes()); // one event
    bytes.push(0); // BufferRegistered tag
    bytes.extend_from_slice(&7u32.to_le_bytes()); // BufferId
    bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // name length: hostile
    match wire::decode_trace(&bytes) {
        Err(WireError::Oversize { .. }) => {}
        other => panic!("hostile string length accepted: {other:?}"),
    }
}

#[test]
fn bad_magic_and_version_are_rejected() {
    let events = exemplars();
    let mut bytes = wire::encode_trace(&events);
    bytes[0] ^= 0xFF;
    assert!(matches!(wire::decode_trace(&bytes), Err(WireError::BadMagic)));

    let mut bytes = wire::encode_trace(&events);
    bytes[4] = 0xFE; // version low byte
    assert!(matches!(wire::decode_trace(&bytes), Err(WireError::Version { .. })));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = wire::encode_trace(&exemplars());
    bytes.push(0);
    assert!(matches!(wire::decode_trace(&bytes), Err(WireError::TrailingBytes { extra: 1 })));
}

// ---------------------------------------------------------------------------
// Frame protocol (arbalest-server): every frame type round-trips, the
// type-tag assignment is a bijection, and truncation or corruption of any
// frame yields a typed error — never a panic. Covers the frames added
// after the original protocol (Metrics 0x06, MetricsReply 0x88,
// SessionFailed 0x89), the durability admin pair (Export 0x07 /
// Import 0x08 with their replies 0x8A / 0x8B), and the tracing admin
// pair (TraceSnapshot 0x09 / TraceSnapshotReply 0x8C).
// ---------------------------------------------------------------------------

use arbalest_server::proto::{Frame, ProtoError, StatsSnapshot, WIRE_VERSION};
use arbalest_server::supervise::SessionFailure;

/// One exemplar per frame variant (and per meaningful sub-shape), paired
/// with its wire type tag.
fn frame_exemplars() -> Vec<(u8, Frame)> {
    vec![
        (0x01, Frame::Hello { version: WIRE_VERSION, resume: None }),
        (0x01, Frame::Hello { version: WIRE_VERSION, resume: Some(0xDEAD_BEEF_u64) }),
        (0x02, Frame::Events { events: exemplars(), ctx: None }),
        (
            0x02,
            Frame::Events {
                events: exemplars(),
                ctx: Some(arbalest_obs::SpanContext {
                    trace: 0xDEAD_BEEF_0000_0001_u128 << 64 | 7,
                    span: 0x1234_5678,
                    parent: 0,
                }),
            },
        ),
        (0x03, Frame::Finish),
        (0x04, Frame::Stats),
        (0x05, Frame::Shutdown),
        (0x06, Frame::Metrics),
        (0x07, Frame::Export),
        (0x08, Frame::Import { state: vec![0xAB, 0x55, 0x00, 0x01] }),
        (0x09, Frame::TraceSnapshot),
        (0x81, Frame::HelloAck { version: WIRE_VERSION, shards: 8, session: 42 }),
        (0x82, Frame::EventsAck { accepted: 1024 }),
        (0x83, Frame::Busy { queue_depth: 17 }),
        (0x84, Frame::Reports(Vec::new())),
        (
            0x85,
            Frame::StatsReply(StatsSnapshot {
                sessions_started: 5,
                sessions_finished: 3,
                events_received: 999,
                busy_rejections: 1,
                session_events: 40,
                queue_depths: vec![0, 2, 7],
                ..Default::default()
            }),
        ),
        (0x86, Frame::Ok),
        (0x87, Frame::Error { message: "unknown session 9".into() }),
        (0x88, Frame::MetricsReply("# TYPE arbalest_x counter\narbalest_x 1\n".into())),
        (0x89, Frame::SessionFailed(SessionFailure::ShardPanic { message: "boom".into() })),
        (
            0x89,
            Frame::SessionFailed(SessionFailure::BudgetExceeded {
                used_bytes: 4096,
                budget_bytes: 1024,
            }),
        ),
        (0x89, Frame::SessionFailed(SessionFailure::IdleTimeout { limit_ms: 120_000 })),
        (0x89, Frame::SessionFailed(SessionFailure::DeadlineExceeded { limit_ms: 30_000 })),
        (0x8A, Frame::ExportReply { state: vec![b'A', b'B', b'S', b'S', 1, 0] }),
        (0x8B, Frame::ImportReply { session: u64::MAX }),
        (0x8C, Frame::TraceSnapshotReply(Vec::new())),
        (
            0x8C,
            Frame::TraceSnapshotReply(vec![arbalest_obs::SpanEvent {
                name: "shard_job",
                tid: 3,
                start_ns: 100,
                dur_ns: 25,
                trace: 42,
                span: 9,
                parent: 4,
            }]),
        ),
    ]
}

fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut bytes = Vec::new();
    frame.write_to(&mut bytes).expect("encode frame");
    bytes
}

fn decode_frame(bytes: &[u8]) -> Result<Frame, ProtoError> {
    Frame::read_from(&mut std::io::Cursor::new(bytes), &mut || true)
}

#[test]
fn every_frame_round_trips() {
    for (_, frame) in frame_exemplars() {
        let bytes = encode_frame(&frame);
        let back = decode_frame(&bytes).expect("decode frame");
        assert_eq!(back, frame);
        // And the encoding is deterministic.
        assert_eq!(encode_frame(&back), bytes);
    }
}

#[test]
fn frame_tag_assignment_is_a_bijection() {
    // byte 4 of an encoded frame (after the u32 length prefix) is the
    // type tag. Each tag must match the documented value, and distinct
    // labels must map to distinct tags and back.
    let mut tag_to_label: std::collections::HashMap<u8, &'static str> = Default::default();
    let mut label_to_tag: std::collections::HashMap<&'static str, u8> = Default::default();
    for (want_tag, frame) in frame_exemplars() {
        let bytes = encode_frame(&frame);
        let tag = bytes[4];
        assert_eq!(tag, want_tag, "{} encoded with tag {tag:#04x}", frame.label());
        if let Some(prev) = tag_to_label.insert(tag, frame.label()) {
            assert_eq!(prev, frame.label(), "tag {tag:#04x} shared by two frame types");
        }
        if let Some(prev) = label_to_tag.insert(frame.label(), tag) {
            assert_eq!(prev, tag, "label {} maps to two tags", frame.label());
        }
    }
    assert_eq!(tag_to_label.len(), label_to_tag.len());
}

#[test]
fn unknown_frame_tags_are_typed_errors() {
    for tag in [0x00u8, 0x0A, 0x7F, 0x80, 0x8D, 0xFF] {
        let bytes = [2u32.to_le_bytes().as_slice(), &[tag, 0]].concat();
        match decode_frame(&bytes) {
            Err(ProtoError::Wire(WireError::BadTag { .. })) => {}
            other => panic!("tag {tag:#04x} accepted: {other:?}"),
        }
    }
}

#[test]
fn every_frame_truncation_is_a_typed_error() {
    for (_, frame) in frame_exemplars() {
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                // cut == 0 is a clean between-frames close (plain EOF);
                // any other cut is a mid-frame death and must be typed.
                Err(ProtoError::Io(_)) if cut == 0 => {}
                Err(ProtoError::Wire(_)) => {}
                other => panic!(
                    "{} cut at {cut}/{} bytes: {other:?}",
                    frame.label(),
                    bytes.len()
                ),
            }
        }
    }
}

#[test]
fn corrupted_frames_never_panic() {
    let mut rng = Rng(0xF1A5_ED00);
    for (_, frame) in frame_exemplars() {
        let pristine = encode_frame(&frame);
        for _ in 0..50 {
            let mut bytes = pristine.clone();
            for _ in 0..rng.below(4) + 1 {
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= (rng.next() & 0xFF) as u8;
            }
            // Corrupting the length prefix upward makes the reader wait
            // for bytes that never come; EOF then yields Truncated.
            // Everything else either still decodes or fails typed.
            let _ = decode_frame(&bytes);
        }
    }
}

#[test]
fn fuzzed_event_batches_survive_the_frame_layer() {
    let mut rng = Rng(0xBEEF_CAFE);
    for _ in 0..50 {
        let events: Vec<TraceEvent> =
            (0..rng.below(48) + 1).map(|_| random_event(&mut rng)).collect();
        let frame = Frame::Events { events, ctx: None };
        assert_eq!(decode_frame(&encode_frame(&frame)).expect("decode"), frame);
    }
}
