//! The tool observation interface — this simulation's analogue of OMPT plus
//! sanitizer instrumentation.
//!
//! The runtime broadcasts four event families to every attached [`Tool`]:
//!
//! 1. **Accesses** — every tracked read/write, host-side and kernel-side,
//!    with executing device, logical address, size, owning task, and source
//!    location (what Archer's compile-time instrumentation provides).
//! 2. **Data operations** — corresponding-variable (CV) allocation and
//!    deletion, and OV↔CV transfers (what OMPT `target_data_op` provides).
//!    Each carries a `plugin_visible` flag: when the device plugin pools
//!    its memory (the default, like the LLVM CUDA plugin's memory
//!    manager), per-CV operations are invisible to *binary-level*
//!    instrumentation — the blind spot that shapes the Valgrind column of
//!    Table III.
//! 3. **Synchronization** — task create/end/join edges encoding the
//!    program's happens-before structure (what the OMPT sync callbacks
//!    provide to Archer).
//! 4. **Constructs** — target region begin/end, for bookkeeping.
//!
//! All five tools in the evaluation consume this single stream, mirroring
//! the paper's setup where ARBALEST and the LLVM tools share one
//! infrastructure "so that the difference in implementation has less effect
//! on the evaluation results" (§VI-A).

use crate::addr::DeviceId;
use crate::buffer::{BufferId, BufferInfo};
use crate::report::Report;
use arbalest_sync::Mutex;
use std::collections::BTreeSet;

/// A source location that can cross process boundaries.
///
/// `std::panic::Location` has no public constructor, so a location decoded
/// from a wire frame or a trace file could never become one. `SrcLoc`
/// carries the same three fields with the file name *interned* into a
/// process-wide table, keeping the type `Copy` and cheap to stamp on every
/// access event while staying constructible from serialized bytes. The
/// intern table grows with the number of distinct source files, not with
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SrcLoc {
    /// Source file path.
    pub file: &'static str,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

static INTERNED_FILES: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

impl SrcLoc {
    /// Capture the caller's location (the `Location::caller()` analogue).
    #[track_caller]
    #[inline]
    pub fn caller() -> SrcLoc {
        let l = std::panic::Location::caller();
        SrcLoc { file: l.file(), line: l.line(), column: l.column() }
    }

    /// Build a location from decoded parts, interning the file name.
    pub fn intern(file: &str, line: u32, column: u32) -> SrcLoc {
        let mut table = INTERNED_FILES.lock();
        let file = match table.get(file) {
            Some(f) => f,
            None => {
                let leaked: &'static str = Box::leak(file.to_owned().into_boxed_str());
                table.insert(leaked);
                leaked
            }
        };
        SrcLoc { file, line, column }
    }
}

impl std::fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

/// Identifier of a logical task: the host program, a target region
/// instance, a kernel team thread, or a detached transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The initial host task.
    pub const HOST: TaskId = TaskId(0);
}

/// A tracked memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Device whose processing units executed the access.
    pub device: DeviceId,
    /// Logical address accessed (identifies OV or CV storage).
    pub addr: u64,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: usize,
    /// True for writes.
    pub is_write: bool,
    /// The logical task performing the access.
    pub task: TaskId,
    /// The buffer the *program* addressed, when known.
    pub buffer: Option<BufferId>,
    /// False when a kernel addressed a buffer absent from its device data
    /// environment (a "missing map clause" bug).
    pub mapped: bool,
    /// True for `omp atomic`-style accesses: still a read/write for
    /// visibility (VSM) purposes, but exempt from happens-before race
    /// checking, like TSan's handling of atomics.
    pub atomic: bool,
    /// Source location of the access.
    pub loc: SrcLoc,
}

/// CV lifecycle operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataOpKind {
    /// A corresponding variable was created on the device.
    CvAlloc,
    /// A corresponding variable was destroyed.
    CvDelete,
}

/// A CV allocation or deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOpEvent {
    /// Device owning the CV.
    pub device: DeviceId,
    /// The mapped buffer.
    pub buffer: BufferId,
    /// Alloc or delete.
    pub kind: DataOpKind,
    /// CV base logical address.
    pub cv_base: u64,
    /// Host address of the mapped section's first byte (OV side).
    pub ov_addr: u64,
    /// Section length in bytes.
    pub len: u64,
    /// False when the device plugin serviced this from its internal pool,
    /// hiding it from binary-level instrumentation.
    pub plugin_visible: bool,
    /// Task performing the operation.
    pub task: TaskId,
}

/// Direction of a data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// OV → CV (`to`, `update to`).
    ToDevice,
    /// CV → OV (`from`, `update from`).
    FromDevice,
    /// CV → CV between two accelerators (`omp_target_memcpy` with two
    /// non-host devices).
    DeviceToDevice,
}

/// An OV↔CV memory transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferEvent {
    /// The mapped buffer.
    pub buffer: BufferId,
    /// Direction.
    pub kind: TransferKind,
    /// Source (device, address).
    pub src_device: DeviceId,
    /// Source base address.
    pub src_addr: u64,
    /// Destination (device, address).
    pub dst_device: DeviceId,
    /// Destination base address.
    pub dst_addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Task performing the transfer.
    pub task: TaskId,
    /// True when the transfer was staged through a runtime-internal
    /// buffer (as `target update` is in this runtime). Definedness
    /// trackers relying on allocator/memcpy interception lose shadow
    /// provenance across such a hop.
    pub staged: bool,
    /// True in unified-memory mode, where OV and CV share storage and the
    /// "transfer" is only a coherence flush.
    pub unified: bool,
}

/// Happens-before structure events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEvent {
    /// `child` begins, causally after everything `parent` did so far.
    TaskCreate {
        /// Creating task.
        parent: TaskId,
        /// Created task.
        child: TaskId,
    },
    /// `task` finished its last action.
    TaskEnd {
        /// The completed task.
        task: TaskId,
    },
    /// `waiter` continues causally after all of `joined`.
    TaskJoin {
        /// The waiting task.
        waiter: TaskId,
        /// The task being joined.
        joined: TaskId,
    },
    /// `task` entered a named critical section (lock acquire).
    Acquire {
        /// The acquiring task.
        task: TaskId,
        /// Lock identity (hash of the critical section's name).
        lock: u64,
    },
    /// `task` left the critical section (lock release).
    Release {
        /// The releasing task.
        task: TaskId,
        /// Lock identity.
        lock: u64,
    },
}

/// Construct boundary events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstructEvent {
    /// A target region starts executing (on its own task).
    TargetBegin {
        /// The target region's task.
        task: TaskId,
        /// Destination device.
        device: DeviceId,
        /// True if launched with `nowait`.
        nowait: bool,
    },
    /// A target region finished.
    TargetEnd {
        /// The target region's task.
        task: TaskId,
    },
}

/// A dynamic analysis tool attached to the runtime.
///
/// All callbacks may be invoked concurrently from multiple threads; tools
/// must be internally synchronized (ARBALEST itself is lock-free via CAS).
#[allow(unused_variables)]
pub trait Tool: Send + Sync {
    /// Stable tool name used in reports and harness tables.
    fn name(&self) -> &'static str;

    /// A host buffer (OV) was allocated and registered.
    fn on_buffer_registered(&self, info: &BufferInfo) {}

    /// A host buffer was freed.
    fn on_host_free(&self, info: &BufferInfo) {}

    /// The device plugin reserved a memory pool (binary-visible).
    fn on_pool_alloc(&self, device: DeviceId, base: u64, len: u64) {}

    /// A CV was created or destroyed.
    fn on_data_op(&self, ev: &DataOpEvent) {}

    /// An OV↔CV transfer happened.
    fn on_transfer(&self, ev: &TransferEvent) {}

    /// A tracked memory access happened.
    fn on_access(&self, ev: &AccessEvent) {}

    /// A happens-before structure event.
    fn on_sync(&self, ev: &SyncEvent) {}

    /// A construct boundary.
    fn on_construct(&self, ev: &ConstructEvent) {}

    /// Findings so far (deduplicated by the tool).
    fn reports(&self) -> Vec<Report> {
        Vec::new()
    }

    /// Bytes of tool side tables currently held (shadow memory, clocks,
    /// interval trees) — the tool's contribution to Fig. 9.
    fn side_table_bytes(&self) -> u64 {
        0
    }
}
