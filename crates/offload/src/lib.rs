//! # arbalest-offload
//!
//! A from-scratch, simulated OpenMP-style *target offloading* runtime.
//!
//! This crate is the substrate for the ARBALEST reproduction: it provides
//! everything the paper's tool assumes from the LLVM OpenMP runtime and the
//! OMPT interface, implemented the same way ARBALEST itself ran — with the
//! host acting as a *virtual accelerator*: compute kernels execute on CPU
//! threads, device memory is a logical address space, and memory transfers
//! are word-wise copies between address spaces.
//!
//! The pieces:
//!
//! * [`mem::AddressSpace`] — paged, atomically-accessed logical memories,
//!   one per device, with bump allocation, optional red zones, and live
//!   block tracking (so tool models can reason about heap blocks).
//! * [`mapping`] — the OpenMP data environment: `map` clauses with the
//!   exact Table I reference-counting semantics, array sections,
//!   `target update`, and the present table.
//! * [`runtime::Runtime`] — `target`, `target data`, `target enter/exit
//!   data`, `nowait` asynchronous kernels with `depend` edges and
//!   `taskwait`, kernel teams (`par_for`), and a unified-memory mode.
//! * [`events`] — the OMPT-analogue: a [`events::Tool`] callback interface
//!   receiving every construct event, data operation, transfer, and tracked
//!   memory access. All detectors (ARBALEST and the four baseline models)
//!   consume this one stream.
//!
//! ## Quick taste
//!
//! ```
//! use arbalest_offload::prelude::*;
//!
//! let rt = Runtime::new(Config::default());
//! let a = rt.alloc::<f64>("a", 8);
//! for i in 0..8 { rt.write(&a, i, i as f64); }
//! rt.target().map(Map::tofrom(&a)).run(move |k| {
//!     k.for_each(0..8, |k, i| {
//!         let v = k.read(&a, i);
//!         k.write(&a, i, v * 2.0);
//!     });
//! });
//! assert_eq!(rt.read(&a, 3), 6.0);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod buffer;
pub mod error;
pub mod events;
pub mod fault;
pub mod json;
pub mod mapping;
pub mod mem;
pub mod report;
pub mod runtime;
pub mod scalar;
pub mod sections;
pub mod trace;
pub mod wire;

pub mod prelude {
    //! Convenient glob import for programs written against the runtime.
    pub use crate::addr::DeviceId;
    pub use crate::buffer::{Buffer, BufferId};
    pub use crate::error::RuntimeError;
    pub use crate::events::{
        AccessEvent, ConstructEvent, DataOpEvent, DataOpKind, SyncEvent, TaskId, Tool,
        TransferEvent, TransferKind,
    };
    pub use crate::fault::{FaultConfig, FaultOutcome, FaultSite};
    pub use crate::mapping::{Map, MapType};
    pub use crate::report::{Effect, Report, ReportKind};
    pub use crate::runtime::{Config, Depend, KernelCtx, Runtime, TaskHandle};
    pub use crate::scalar::Scalar;
}
