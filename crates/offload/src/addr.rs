//! Logical addressing shared by every device memory in the simulation.
//!
//! Each device owns a disjoint slice of a single 64-bit logical address
//! space, so an address alone identifies both the device and the location —
//! exactly the property tool models need to attribute an access, and the
//! property a real `omp_get_mapped_ptr` pointer has on a discrete GPU.

/// Identifies a device. `DeviceId::HOST` (0) is the host, accelerators are
/// numbered from 1, mirroring OpenMP's initial device / device numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u16);

impl DeviceId {
    /// The host ("initial device" in OpenMP terms).
    pub const HOST: DeviceId = DeviceId(0);

    /// The first (default) accelerator.
    pub const ACCEL0: DeviceId = DeviceId(1);

    /// True if this is the host device.
    #[inline]
    pub fn is_host(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_host() {
            write!(f, "host")
        } else {
            write!(f, "device({})", self.0 - 1)
        }
    }
}

/// Log2 of the per-device address window (1 TiB each).
pub const DEVICE_WINDOW_SHIFT: u32 = 40;

/// Base logical address of a device's memory window.
#[inline]
pub fn device_base(dev: DeviceId) -> u64 {
    ((dev.0 as u64) + 1) << DEVICE_WINDOW_SHIFT
}

/// Recover the owning device of a logical address.
#[inline]
pub fn device_of(addr: u64) -> DeviceId {
    DeviceId(((addr >> DEVICE_WINDOW_SHIFT) - 1) as u16)
}

/// Reserved offset (within a device window) where accesses to *unmapped*
/// buffers are synthesized. Nothing is ever allocated here, so every tool
/// that tracks addressability sees these accesses as wild.
pub const UNMAPPED_REGION_OFFSET: u64 = 1 << 39;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_windows_are_disjoint_and_invertible() {
        for d in 0..8u16 {
            let dev = DeviceId(d);
            let base = device_base(dev);
            assert_eq!(device_of(base), dev);
            assert_eq!(device_of(base + (1 << 39)), dev);
            if d > 0 {
                assert!(base > device_base(DeviceId(d - 1)));
            }
        }
    }

    #[test]
    fn host_display_and_predicates() {
        assert!(DeviceId::HOST.is_host());
        assert!(!DeviceId::ACCEL0.is_host());
        assert_eq!(DeviceId::HOST.to_string(), "host");
        assert_eq!(DeviceId::ACCEL0.to_string(), "device(0)");
    }
}
