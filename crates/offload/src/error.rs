//! Typed error vocabulary for the offload runtime.
//!
//! The runtime's recovery posture (see DESIGN.md, "Failure model &
//! recovery"): transient device faults are retried with exponential
//! backoff, permanent device faults degrade to host execution, and API
//! misuse is recorded and survived instead of panicking. Every abnormal
//! path that used to `panic!`/`assert!` now produces one of these values;
//! the runtime keeps a log queryable via
//! [`crate::runtime::Runtime::errors`], and `try_*` method variants return
//! them directly.

use crate::addr::DeviceId;
use crate::buffer::BufferId;
use crate::events::{TaskId, TransferKind};
use std::fmt;

/// Everything that can go wrong inside the offloading runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Device memory allocation for a corresponding variable failed and
    /// retries were exhausted (or the failure was permanent). The
    /// construct's already-committed mappings were rolled back and the
    /// region fell back to host execution.
    DeviceAllocFailed {
        /// Device whose allocator failed.
        device: DeviceId,
        /// Buffer whose CV could not be allocated.
        buffer: BufferId,
        /// Requested length in bytes.
        len: u64,
        /// Number of allocation attempts made.
        attempts: u32,
    },
    /// One attempt of an OV↔CV transfer faulted. `copied` bytes (a prefix,
    /// possibly zero) reached the destination before the fault; the
    /// runtime retried and eventually completed the transfer via the
    /// degraded word-wise path, so this is a diagnostic, not a data loss.
    TransferIncomplete {
        /// Buffer being transferred.
        buffer: BufferId,
        /// Transfer direction.
        kind: TransferKind,
        /// Bytes the transfer was asked to move.
        requested: u64,
        /// Bytes that actually arrived before the fault (prefix).
        copied: u64,
        /// 1-based attempt number that faulted.
        attempt: u32,
    },
    /// A kernel launch failed permanently (or exhausted its retries); the
    /// target region executed on the host instead.
    KernelLaunchFailed {
        /// Device that refused the launch.
        device: DeviceId,
        /// Task of the target region.
        task: TaskId,
        /// Number of launch attempts made.
        attempts: u32,
    },
    /// `free` of a block that was already freed.
    DoubleFree {
        /// Base address of the dead block.
        addr: u64,
    },
    /// `free` of an address that was never an allocation base.
    UnknownFree {
        /// The bogus address.
        addr: u64,
    },
    /// Host access with an index past the end of the buffer. The access
    /// was not performed; reads return a zero value.
    OutOfRange {
        /// Buffer addressed.
        buffer: BufferId,
        /// Offending element index.
        index: usize,
        /// Buffer length in elements.
        len: usize,
        /// True for writes.
        is_write: bool,
    },
    /// A `BufferId` that this runtime never allocated (e.g. a handle from
    /// another runtime instance).
    UnknownBuffer {
        /// The foreign id.
        buffer: BufferId,
    },
    /// A device id outside this runtime's configured accelerators (or the
    /// host where an accelerator is required).
    InvalidDevice {
        /// The invalid id.
        device: DeviceId,
    },
    /// `atomic_update` on a scalar narrower than 8 bytes; the update was
    /// applied non-atomically instead.
    UnsupportedAtomicSize {
        /// The scalar's size in bytes.
        size: usize,
    },
    /// Present-table commit raced with an entry disappearing — the plan
    /// was made against a stale table. The commit became a no-op.
    StaleMapping {
        /// Buffer whose entry vanished.
        buffer: BufferId,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DeviceAllocFailed { device, buffer, len, attempts } => write!(
                f,
                "device allocation of {len} bytes for {buffer:?} failed on {device} after {attempts} attempts; fell back to host"
            ),
            RuntimeError::TransferIncomplete { buffer, kind, requested, copied, attempt } => write!(
                f,
                "{kind:?} transfer of {buffer:?} faulted on attempt {attempt}: {copied}/{requested} bytes copied; retried"
            ),
            RuntimeError::KernelLaunchFailed { device, task, attempts } => write!(
                f,
                "kernel launch of task {task:?} on {device} failed after {attempts} attempts; ran on host"
            ),
            RuntimeError::DoubleFree { addr } => write!(f, "double free at {addr:#x}"),
            RuntimeError::UnknownFree { addr } => write!(f, "free of unknown block at {addr:#x}"),
            RuntimeError::OutOfRange { buffer, index, len, is_write } => write!(
                f,
                "host {} of element {index} past the end of {buffer:?} (len {len})",
                if *is_write { "write" } else { "read" }
            ),
            RuntimeError::UnknownBuffer { buffer } => {
                write!(f, "{buffer:?} was not allocated by this runtime")
            }
            RuntimeError::InvalidDevice { device } => {
                write!(f, "{device} is not a configured accelerator")
            }
            RuntimeError::UnsupportedAtomicSize { size } => {
                write!(f, "atomic update on a {size}-byte scalar (8 bytes required); applied non-atomically")
            }
            RuntimeError::StaleMapping { buffer } => {
                write!(f, "present-table commit for {buffer:?} was planned against a stale table")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = RuntimeError::DeviceAllocFailed {
            device: DeviceId::ACCEL0,
            buffer: BufferId(3),
            len: 512,
            attempts: 4,
        };
        let s = e.to_string();
        assert!(s.contains("512"));
        assert!(s.contains("host"));
        let e = RuntimeError::DoubleFree { addr: 0x1000 };
        assert!(e.to_string().contains("0x1000"));
    }
}
