//! Hand-rolled JSON support (no external dependencies): a small value
//! tree, an emitter, a recursive-descent parser, and the [`Report`]
//! (de)serialization the CLI's `--format json` output is built from.
//!
//! The emitter produces deterministic output (object keys keep insertion
//! order) and the parser accepts exactly the JSON this crate emits plus
//! ordinary whitespace — enough for round-tripping findings through CI
//! and external tooling without pulling in serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::addr::DeviceId;
use crate::events::SrcLoc;
use crate::report::{PrevAccess, ProvenanceStep, Report, ReportKind};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (emitted without an exponent; parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved via the paired key list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Integer convenience constructor.
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// String convenience constructor — accepts anything with a
    /// `Display` (patch serializers hand it map-types, sections, and
    /// pre-rendered descriptions alike).
    pub fn str(s: impl std::fmt::Display) -> Json {
        Json::Str(s.to_string())
    }

    /// Look a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a u64, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text. Returns a description of the first error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {pos}", *c as char, pos = *pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

// ---------------------------------------------------------------------
// Report (de)serialization
// ---------------------------------------------------------------------

impl Report {
    /// Serialize to a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("tool", Json::Str(self.tool.to_string())),
            ("kind", Json::Str(self.kind.label().to_string())),
            ("message", Json::Str(self.message.clone())),
            (
                "buffer",
                self.buffer.as_ref().map_or(Json::Null, |b| Json::Str(b.clone())),
            ),
            ("device", Json::int(self.device.0 as u64)),
            ("addr", Json::int(self.addr)),
            ("size", Json::int(self.size as u64)),
        ];
        pairs.push((
            "loc",
            self.loc.map_or(Json::Null, |l| {
                Json::obj(vec![
                    ("file", Json::Str(l.file.to_string())),
                    ("line", Json::int(l.line as u64)),
                    ("column", Json::int(l.column as u64)),
                ])
            }),
        ));
        pairs.push((
            "prev",
            self.prev.map_or(Json::Null, |p| {
                Json::obj(vec![
                    ("tid", Json::int(p.tid as u64)),
                    ("clock", Json::int(p.clock)),
                    ("is_write", Json::Bool(p.is_write)),
                ])
            }),
        ));
        pairs.push((
            "suggested_fix",
            self.suggested_fix.as_ref().map_or(Json::Null, |f| Json::Str(f.clone())),
        ));
        // Provenance only appears when the detector captured a chain
        // (off by default), so default-config JSON output is unchanged.
        if !self.provenance.is_empty() {
            pairs.push((
                "provenance",
                Json::Arr(
                    self.provenance
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("op", Json::Str(s.op.clone())),
                                ("from", Json::Str(s.from.clone())),
                                ("to", Json::Str(s.to.clone())),
                                (
                                    "loc",
                                    s.loc.map_or(Json::Null, |l| {
                                        Json::obj(vec![
                                            ("file", Json::Str(l.file.to_string())),
                                            ("line", Json::int(l.line as u64)),
                                            ("column", Json::int(l.column as u64)),
                                        ])
                                    }),
                                ),
                                ("tid", Json::int(s.tid as u64)),
                                ("clock", Json::int(s.clock)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }

    /// Deserialize from the object [`Report::to_json`] produces.
    pub fn from_json(v: &Json) -> Result<Report, String> {
        let tool = v.get("tool").and_then(Json::as_str).ok_or("missing `tool`")?;
        let tool = intern_tool(tool);
        let kind_label = v.get("kind").and_then(Json::as_str).ok_or("missing `kind`")?;
        let kind = ReportKind::from_label(kind_label)
            .ok_or_else(|| format!("unknown kind `{kind_label}`"))?;
        let loc = match v.get("loc") {
            Some(Json::Obj(_)) => {
                let l = v.get("loc").unwrap();
                Some(SrcLoc::intern(
                    l.get("file").and_then(Json::as_str).ok_or("missing `loc.file`")?,
                    l.get("line").and_then(Json::as_u64).ok_or("missing `loc.line`")? as u32,
                    l.get("column").and_then(Json::as_u64).unwrap_or(0) as u32,
                ))
            }
            _ => None,
        };
        let prev = match v.get("prev") {
            Some(p @ Json::Obj(_)) => Some(PrevAccess {
                tid: p.get("tid").and_then(Json::as_u64).ok_or("missing `prev.tid`")? as u16,
                clock: p.get("clock").and_then(Json::as_u64).ok_or("missing `prev.clock`")?,
                is_write: p.get("is_write").and_then(Json::as_bool).unwrap_or(false),
            }),
            _ => None,
        };
        Ok(Report {
            tool,
            kind,
            message: v.get("message").and_then(Json::as_str).unwrap_or("").to_string(),
            buffer: v.get("buffer").and_then(Json::as_str).map(str::to_string),
            device: DeviceId(v.get("device").and_then(Json::as_u64).unwrap_or(0) as u16),
            addr: v.get("addr").and_then(Json::as_u64).unwrap_or(0),
            size: v.get("size").and_then(Json::as_u64).unwrap_or(0) as usize,
            loc,
            prev,
            suggested_fix: v.get("suggested_fix").and_then(Json::as_str).map(str::to_string),
            provenance: match v.get("provenance") {
                Some(Json::Arr(steps)) => steps
                    .iter()
                    .map(|s| {
                        Ok(ProvenanceStep {
                            op: s
                                .get("op")
                                .and_then(Json::as_str)
                                .ok_or("missing `provenance.op`")?
                                .to_string(),
                            from: s
                                .get("from")
                                .and_then(Json::as_str)
                                .ok_or("missing `provenance.from`")?
                                .to_string(),
                            to: s
                                .get("to")
                                .and_then(Json::as_str)
                                .ok_or("missing `provenance.to`")?
                                .to_string(),
                            loc: match s.get("loc") {
                                Some(l @ Json::Obj(_)) => Some(SrcLoc::intern(
                                    l.get("file")
                                        .and_then(Json::as_str)
                                        .ok_or("missing `provenance.loc.file`")?,
                                    l.get("line").and_then(Json::as_u64).unwrap_or(0) as u32,
                                    l.get("column").and_then(Json::as_u64).unwrap_or(0) as u32,
                                )),
                                _ => None,
                            },
                            tid: s.get("tid").and_then(Json::as_u64).unwrap_or(0) as u16,
                            clock: s.get("clock").and_then(Json::as_u64).unwrap_or(0),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => Vec::new(),
            },
        })
    }
}

/// `Report.tool` is a `&'static str`; map known tool names back to their
/// static identity and leak genuinely novel ones (bounded by the set of
/// distinct tool names in a JSON document).
fn intern_tool(tool: &str) -> &'static str {
    const KNOWN: [&str; 6] =
        ["arbalest", "arbalest-static", "archer", "asan", "msan", "memcheck"];
    for k in KNOWN {
        if k == tool {
            return k;
        }
    }
    use std::sync::Mutex;
    static EXTRA: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut extra = EXTRA.lock().unwrap();
    if let Some(s) = extra.get(tool) {
        return s;
    }
    let leaked: &'static str = Box::leak(tool.to_string().into_boxed_str());
    extra.insert(tool.to_string(), leaked);
    leaked
}

fn labels_json(labels: &[(String, String)]) -> Json {
    Json::Obj(labels.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect())
}

/// Render a metrics [`Snapshot`](arbalest_obs::Snapshot) as JSON — the
/// `--metrics-out` format. Histogram buckets are emitted cumulatively
/// with the same `le` boundaries as the Prometheus exposition, so the
/// two exporters agree sample-for-sample on a given snapshot.
pub fn metrics_json(snap: &arbalest_obs::Snapshot) -> Json {
    let scalar = |series: &[(arbalest_obs::MetricId, u64)]| {
        Json::Arr(
            series
                .iter()
                .map(|(id, v)| {
                    Json::obj(vec![
                        ("name", Json::Str(id.name.clone())),
                        ("labels", labels_json(&id.labels)),
                        ("value", Json::int(*v)),
                    ])
                })
                .collect(),
        )
    };
    let histograms = Json::Arr(
        snap.histograms
            .iter()
            .map(|(id, h)| {
                let mut cum = 0u64;
                let mut buckets: Vec<Json> = h
                    .buckets
                    .iter()
                    .map(|&(i, n)| {
                        cum += n;
                        let le = match arbalest_obs::bucket_upper_bound(i as usize) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        Json::obj(vec![
                            ("le", Json::Str(le)),
                            ("count", Json::int(cum)),
                        ])
                    })
                    .collect();
                let has_inf = h
                    .buckets
                    .last()
                    .is_some_and(|&(i, _)| i as usize == arbalest_obs::BUCKETS - 1);
                if !has_inf {
                    buckets.push(Json::obj(vec![
                        ("le", Json::Str("+Inf".into())),
                        ("count", Json::int(h.count)),
                    ]));
                }
                Json::obj(vec![
                    ("name", Json::Str(id.name.clone())),
                    ("labels", labels_json(&id.labels)),
                    ("count", Json::int(h.count)),
                    ("sum", Json::int(h.sum)),
                    ("min", Json::int(h.min)),
                    ("max", Json::int(h.max)),
                    ("mean", Json::Num(h.mean())),
                    ("buckets", Json::Arr(buckets)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("counters", scalar(&snap.counters)),
        ("gauges", scalar(&snap.gauges)),
        ("histograms", histograms),
    ])
}

/// Render one flight-recorder span as a JSON object — one line of the
/// `--trace-out` JSONL stream.
pub fn span_json(e: &arbalest_obs::SpanEvent) -> Json {
    Json::obj(vec![
        ("name", Json::Str(e.name.to_string())),
        ("tid", Json::int(u64::from(e.tid))),
        ("start_ns", Json::int(e.start_ns)),
        ("dur_ns", Json::int(e.dur_ns)),
        ("trace", Json::Str(format!("{:032x}", e.trace))),
        ("span", Json::Str(format!("{:016x}", e.span))),
        ("parent", Json::Str(format!("{:016x}", e.parent))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::SrcLoc;

    #[test]
    fn values_round_trip() {
        let v = Json::obj(vec![
            ("s", Json::Str("a \"quoted\"\nline\t\\".to_string())),
            ("n", Json::int(12345)),
            ("neg", Json::Num(-7.0)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            ("a", Json::Arr(vec![Json::int(1), Json::Str("two".into()), Json::Null])),
            ("o", Json::obj(vec![("k", Json::Bool(false))])),
        ]);
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Json::Str("héllo \u{1F600} \u{0001}".to_string());
        assert_eq!(Json::parse(&v.emit()).unwrap(), v);
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn reports_round_trip() {
        let r = Report {
            tool: "arbalest",
            kind: ReportKind::MappingUsd,
            message: "read of 'a' on host".to_string(),
            buffer: Some("a".to_string()),
            device: DeviceId::HOST,
            addr: 0x1234,
            size: 8,
            loc: Some(SrcLoc::intern("bench.rs", 42, 7)),
            prev: Some(PrevAccess { tid: 3, clock: 99, is_write: true }),
            suggested_fix: Some("use target update from".to_string()),
            provenance: vec![ProvenanceStep {
                op: "update_target".into(),
                from: "host".into(),
                to: "consistent".into(),
                loc: Some(SrcLoc::intern("bench.rs", 12, 1)),
                tid: 0,
                clock: 4,
            }],
        };
        let back = Report::from_json(&Json::parse(&r.to_json().emit()).unwrap()).unwrap();
        assert_eq!(back.tool, r.tool);
        assert_eq!(back.kind, r.kind);
        assert_eq!(back.message, r.message);
        assert_eq!(back.buffer, r.buffer);
        assert_eq!(back.device, r.device);
        assert_eq!(back.addr, r.addr);
        assert_eq!(back.size, r.size);
        assert_eq!(back.loc.unwrap().line, 42);
        assert_eq!(back.prev.unwrap().clock, 99);
        assert_eq!(back.suggested_fix, r.suggested_fix);
        assert_eq!(back.provenance, r.provenance);
    }

    #[test]
    fn provenance_key_is_absent_when_chain_is_empty() {
        let r = Report {
            tool: "arbalest",
            kind: ReportKind::MappingUum,
            message: String::new(),
            buffer: None,
            device: DeviceId::HOST,
            addr: 0,
            size: 0,
            loc: None,
            prev: None,
            suggested_fix: None,
            provenance: Vec::new(),
        };
        let text = r.to_json().emit();
        assert!(!text.contains("provenance"));
        assert!(Report::from_json(&Json::parse(&text).unwrap()).unwrap().provenance.is_empty());
    }

    #[test]
    fn null_optionals_round_trip_as_none() {
        let r = Report {
            tool: "custom-tool",
            kind: ReportKind::DataRace,
            message: String::new(),
            buffer: None,
            device: DeviceId::ACCEL0,
            addr: 0,
            size: 0,
            loc: None,
            prev: None,
            suggested_fix: None,
            provenance: Vec::new(),
        };
        let back = Report::from_json(&Json::parse(&r.to_json().emit()).unwrap()).unwrap();
        assert_eq!(back.tool, "custom-tool");
        assert!(back.buffer.is_none() && back.loc.is_none() && back.prev.is_none());
        assert!(back.suggested_fix.is_none());
    }

    /// Rebuild a Prometheus series string from the JSON exporter's
    /// `name`/`labels` fields (labels used in the test need no escaping).
    fn prom_series(name: &str, labels: &Json, extra: Option<(&str, &str)>) -> String {
        let Json::Obj(pairs) = labels else { panic!("labels must be an object") };
        let mut body: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", v.as_str().unwrap()))
            .collect();
        if let Some((k, v)) = extra {
            body.push(format!("{k}=\"{v}\""));
        }
        if body.is_empty() {
            name.to_string()
        } else {
            format!("{name}{{{}}}", body.join(","))
        }
    }

    #[test]
    fn json_and_prometheus_exporters_agree_on_the_same_snapshot() {
        let r = arbalest_obs::Registry::new();
        r.counter("arbalest_t_total", &[("kind", "a")]).add(3);
        r.counter("arbalest_t_total", &[("kind", "b")]).inc();
        r.gauge("arbalest_t_depth", &[("shard", "0")]).set(5);
        let h = r.histogram("arbalest_t_nanos", &[]);
        for v in [0u64, 1, 3, 900, 1 << 40] {
            h.record(v);
        }
        let snap = r.snapshot();
        let prom = snap.to_prometheus();
        // Round-trip through the parser to prove the emitted JSON is valid.
        let json = Json::parse(&metrics_json(&snap).emit()).unwrap();

        let mut samples = 0usize;
        for key in ["counters", "gauges"] {
            for c in json.get(key).unwrap().as_arr().unwrap() {
                let line = format!(
                    "{} {}\n",
                    prom_series(c.get("name").unwrap().as_str().unwrap(), c.get("labels").unwrap(), None),
                    c.get("value").unwrap().as_u64().unwrap()
                );
                assert!(prom.contains(&line), "prometheus output missing {line:?}");
                samples += 1;
            }
        }
        for hj in json.get("histograms").unwrap().as_arr().unwrap() {
            let name = hj.get("name").unwrap().as_str().unwrap();
            let labels = hj.get("labels").unwrap();
            for b in hj.get("buckets").unwrap().as_arr().unwrap() {
                let line = format!(
                    "{} {}\n",
                    prom_series(
                        &format!("{name}_bucket"),
                        labels,
                        Some(("le", b.get("le").unwrap().as_str().unwrap()))
                    ),
                    b.get("count").unwrap().as_u64().unwrap()
                );
                assert!(prom.contains(&line), "prometheus output missing {line:?}");
                samples += 1;
            }
            for (suffix, field) in [("_sum", "sum"), ("_count", "count")] {
                let line = format!(
                    "{} {}\n",
                    prom_series(&format!("{name}{suffix}"), labels, None),
                    hj.get(field).unwrap().as_u64().unwrap()
                );
                assert!(prom.contains(&line), "prometheus output missing {line:?}");
                samples += 1;
            }
        }
        // 2 counters + 1 gauge + 5 occupied buckets + +Inf + sum + count.
        assert!(samples >= 11, "only {samples} samples cross-checked");
    }
}
