//! Tracked buffers: the "original variables" (OVs) of the paper.
//!
//! Programs written against the simulated runtime keep their mapped data in
//! `Buffer<T>` handles instead of raw Rust slices, so that every read and
//! write — host-side or kernel-side — flows through the runtime and is
//! observable by tools, playing the role of compiler instrumentation.

use crate::scalar::Scalar;
use std::marker::PhantomData;

/// Stable identifier for a tracked buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub u32);

/// A typed handle to a tracked host buffer (the OV). Cheap to copy into
/// kernel closures.
pub struct Buffer<T: Scalar> {
    pub(crate) id: BufferId,
    pub(crate) len: usize,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T: Scalar> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for Buffer<T> {}

impl<T: Scalar> Buffer<T> {
    /// The buffer's identifier.
    pub fn id(&self) -> BufferId {
        self.id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element size in bytes.
    pub fn elem_size(&self) -> usize {
        T::SIZE
    }
}

impl<T: Scalar> std::fmt::Debug for Buffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buffer")
            .field("id", &self.id.0)
            .field("len", &self.len)
            .field("elem_size", &T::SIZE)
            .finish()
    }
}

/// Runtime-side metadata for a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferInfo {
    /// Identifier, index into the runtime's buffer table.
    pub id: BufferId,
    /// Human-readable name used in bug reports.
    pub name: String,
    /// Element size in bytes.
    pub elem_size: usize,
    /// Number of elements.
    pub len: usize,
    /// Base logical address of the OV in host memory.
    pub ov_base: u64,
}

impl BufferInfo {
    /// Total byte length of the buffer.
    pub fn byte_len(&self) -> u64 {
        (self.len * self.elem_size) as u64
    }

    /// End address (exclusive) of the OV.
    pub fn ov_end(&self) -> u64 {
        self.ov_base + self.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_copy_and_reports_geometry() {
        let b: Buffer<f64> = Buffer { id: BufferId(3), len: 10, _marker: PhantomData };
        let c = b;
        assert_eq!(b.id(), c.id());
        assert_eq!(c.len(), 10);
        assert_eq!(c.elem_size(), 8);
        assert!(!c.is_empty());
    }

    #[test]
    fn info_geometry() {
        let info = BufferInfo { id: BufferId(0), name: "a".into(), elem_size: 4, len: 6, ov_base: 0x100 };
        assert_eq!(info.byte_len(), 24);
        assert_eq!(info.ov_end(), 0x118);
    }
}
