//! Binary wire serialization for trace events and reports.
//!
//! The analysis service (`arbalest-serve`) moves [`TraceEvent`] streams and
//! [`Report`] lists between processes. This module is the single place
//! their byte layout is defined: little-endian fixed-width integers,
//! length-prefixed UTF-8 strings, one tag byte per enum. Everything is
//! hand-rolled over `std` (the workspace builds hermetically — no serde),
//! and decoding is *total*: any byte sequence either yields a value or a
//! typed [`WireError`], never a panic and never an attempt to allocate
//! more than a declared, bounds-checked length.
//!
//! Source locations travel as `(file, line, column)` triples and are
//! re-interned on decode ([`SrcLoc::intern`]), so a report rendered from a
//! decoded trace is byte-identical to one rendered in the recording
//! process.

use crate::addr::DeviceId;
use crate::buffer::{BufferId, BufferInfo};
use crate::events::{
    AccessEvent, ConstructEvent, DataOpEvent, DataOpKind, SrcLoc, SyncEvent, TaskId,
    TransferEvent, TransferKind,
};
use crate::report::{PrevAccess, ProvenanceStep, Report, ReportKind};
use crate::trace::TraceEvent;
use std::fmt;

/// Magic prefix of a serialized trace file (`arbalest record`).
pub const TRACE_MAGIC: [u8; 4] = *b"ABTR";

/// Version of the event/report byte layout. Bump on any layout change.
pub const WIRE_VERSION: u16 = 1;

/// Longest string (buffer name, message, file path) a decoder will
/// allocate. Anything larger is rejected before allocation.
pub const MAX_STRING: u32 = 1 << 20;

/// Largest element count (events in a batch, reports in a list) a decoder
/// accepts from a length prefix.
pub const MAX_COUNT: u32 = 1 << 24;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a field's declared extent.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// An enum tag byte outside the variant range.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A length prefix exceeded its sanity bound.
    Oversize {
        /// Which field declared the length.
        what: &'static str,
        /// Declared length.
        len: u64,
        /// Permitted maximum.
        max: u64,
    },
    /// A trace file did not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The peer (or file) speaks a different layout version.
    Version {
        /// Version found in the stream.
        got: u16,
        /// Version this build understands.
        want: u16,
    },
    /// Trailing bytes after a complete value where none are allowed.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated input: needed {needed} bytes, {have} left")
            }
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Oversize { what, len, max } => {
                write!(f, "{what} length {len} exceeds the {max}-byte bound")
            }
            WireError::BadMagic => write!(f, "not an arbalest trace (bad magic)"),
            WireError::Version { got, want } => {
                write!(f, "wire version {got} (this build speaks {want})")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete value")
            }
        }
    }
}

impl WireError {
    /// Stable snake_case label of the variant, used as the `error` label
    /// on the server's decode-error counters.
    pub fn label(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "truncated",
            WireError::BadTag { .. } => "bad_tag",
            WireError::BadUtf8 => "bad_utf8",
            WireError::Oversize { .. } => "oversize",
            WireError::BadMagic => "bad_magic",
            WireError::Version { .. } => "version",
            WireError::TrailingBytes { .. } => "trailing_bytes",
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked read position over a byte slice.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a strict boolean (0 or 1; anything else is a [`WireError::BadTag`]).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }

    /// Read a `u32`-length-prefixed UTF-8 string (bounded by [`MAX_STRING`]).
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()?;
        if len > MAX_STRING {
            return Err(WireError::Oversize { what: "string", len: len as u64, max: MAX_STRING as u64 });
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Read an element count prefix (bounded by [`MAX_COUNT`]).
    pub fn count(&mut self, what: &'static str) -> Result<usize, WireError> {
        let n = self.u32()?;
        if n > MAX_COUNT {
            return Err(WireError::Oversize { what, len: n as u64, max: MAX_COUNT as u64 });
        }
        Ok(n as usize)
    }
}

/// Append a `u32`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_loc(out: &mut Vec<u8>, loc: SrcLoc) {
    put_str(out, loc.file);
    put_u32(out, loc.line);
    put_u32(out, loc.column);
}

fn get_loc(cur: &mut Cursor<'_>) -> Result<SrcLoc, WireError> {
    let file = cur.string()?;
    let line = cur.u32()?;
    let column = cur.u32()?;
    Ok(SrcLoc::intern(&file, line, column))
}

fn put_buffer_info(out: &mut Vec<u8>, info: &BufferInfo) {
    put_u32(out, info.id.0);
    put_str(out, &info.name);
    put_u64(out, info.elem_size as u64);
    put_u64(out, info.len as u64);
    put_u64(out, info.ov_base);
}

fn get_buffer_info(cur: &mut Cursor<'_>) -> Result<BufferInfo, WireError> {
    Ok(BufferInfo {
        id: BufferId(cur.u32()?),
        name: cur.string()?,
        elem_size: cur.u64()? as usize,
        len: cur.u64()? as usize,
        ov_base: cur.u64()?,
    })
}

fn transfer_kind_tag(kind: TransferKind) -> u8 {
    match kind {
        TransferKind::ToDevice => 0,
        TransferKind::FromDevice => 1,
        TransferKind::DeviceToDevice => 2,
    }
}

fn transfer_kind(tag: u8) -> Result<TransferKind, WireError> {
    Ok(match tag {
        0 => TransferKind::ToDevice,
        1 => TransferKind::FromDevice,
        2 => TransferKind::DeviceToDevice,
        tag => return Err(WireError::BadTag { what: "TransferKind", tag }),
    })
}

/// Serialize one event.
pub fn encode_event(ev: &TraceEvent, out: &mut Vec<u8>) {
    match ev {
        TraceEvent::BufferRegistered(info) => {
            out.push(0);
            put_buffer_info(out, info);
        }
        TraceEvent::HostFree(info) => {
            out.push(1);
            put_buffer_info(out, info);
        }
        TraceEvent::PoolAlloc { device, base, len } => {
            out.push(2);
            put_u16(out, device.0);
            put_u64(out, *base);
            put_u64(out, *len);
        }
        TraceEvent::DataOp(e) => {
            out.push(3);
            put_u16(out, e.device.0);
            put_u32(out, e.buffer.0);
            out.push(match e.kind {
                DataOpKind::CvAlloc => 0,
                DataOpKind::CvDelete => 1,
            });
            put_u64(out, e.cv_base);
            put_u64(out, e.ov_addr);
            put_u64(out, e.len);
            put_bool(out, e.plugin_visible);
            put_u32(out, e.task.0);
        }
        TraceEvent::Transfer(e) => {
            out.push(4);
            put_u32(out, e.buffer.0);
            out.push(transfer_kind_tag(e.kind));
            put_u16(out, e.src_device.0);
            put_u64(out, e.src_addr);
            put_u16(out, e.dst_device.0);
            put_u64(out, e.dst_addr);
            put_u64(out, e.len);
            put_u32(out, e.task.0);
            put_bool(out, e.staged);
            put_bool(out, e.unified);
        }
        TraceEvent::Access(e) => {
            out.push(5);
            put_u16(out, e.device.0);
            put_u64(out, e.addr);
            put_u64(out, e.size as u64);
            put_bool(out, e.is_write);
            put_u32(out, e.task.0);
            match e.buffer {
                Some(b) => {
                    out.push(1);
                    put_u32(out, b.0);
                }
                None => out.push(0),
            }
            put_bool(out, e.mapped);
            put_bool(out, e.atomic);
            put_loc(out, e.loc);
        }
        TraceEvent::Sync(e) => {
            out.push(6);
            match e {
                SyncEvent::TaskCreate { parent, child } => {
                    out.push(0);
                    put_u32(out, parent.0);
                    put_u32(out, child.0);
                }
                SyncEvent::TaskEnd { task } => {
                    out.push(1);
                    put_u32(out, task.0);
                }
                SyncEvent::TaskJoin { waiter, joined } => {
                    out.push(2);
                    put_u32(out, waiter.0);
                    put_u32(out, joined.0);
                }
                SyncEvent::Acquire { task, lock } => {
                    out.push(3);
                    put_u32(out, task.0);
                    put_u64(out, *lock);
                }
                SyncEvent::Release { task, lock } => {
                    out.push(4);
                    put_u32(out, task.0);
                    put_u64(out, *lock);
                }
            }
        }
        TraceEvent::Construct(e) => {
            out.push(7);
            match e {
                ConstructEvent::TargetBegin { task, device, nowait } => {
                    out.push(0);
                    put_u32(out, task.0);
                    put_u16(out, device.0);
                    put_bool(out, *nowait);
                }
                ConstructEvent::TargetEnd { task } => {
                    out.push(1);
                    put_u32(out, task.0);
                }
            }
        }
    }
}

/// Decode one event from the cursor.
pub fn decode_event(cur: &mut Cursor<'_>) -> Result<TraceEvent, WireError> {
    Ok(match cur.u8()? {
        0 => TraceEvent::BufferRegistered(get_buffer_info(cur)?),
        1 => TraceEvent::HostFree(get_buffer_info(cur)?),
        2 => TraceEvent::PoolAlloc {
            device: DeviceId(cur.u16()?),
            base: cur.u64()?,
            len: cur.u64()?,
        },
        3 => TraceEvent::DataOp(DataOpEvent {
            device: DeviceId(cur.u16()?),
            buffer: BufferId(cur.u32()?),
            kind: match cur.u8()? {
                0 => DataOpKind::CvAlloc,
                1 => DataOpKind::CvDelete,
                tag => return Err(WireError::BadTag { what: "DataOpKind", tag }),
            },
            cv_base: cur.u64()?,
            ov_addr: cur.u64()?,
            len: cur.u64()?,
            plugin_visible: cur.bool()?,
            task: TaskId(cur.u32()?),
        }),
        4 => TraceEvent::Transfer(TransferEvent {
            buffer: BufferId(cur.u32()?),
            kind: transfer_kind(cur.u8()?)?,
            src_device: DeviceId(cur.u16()?),
            src_addr: cur.u64()?,
            dst_device: DeviceId(cur.u16()?),
            dst_addr: cur.u64()?,
            len: cur.u64()?,
            task: TaskId(cur.u32()?),
            staged: cur.bool()?,
            unified: cur.bool()?,
        }),
        5 => TraceEvent::Access(AccessEvent {
            device: DeviceId(cur.u16()?),
            addr: cur.u64()?,
            size: cur.u64()? as usize,
            is_write: cur.bool()?,
            task: TaskId(cur.u32()?),
            buffer: match cur.u8()? {
                0 => None,
                1 => Some(BufferId(cur.u32()?)),
                tag => return Err(WireError::BadTag { what: "Option<BufferId>", tag }),
            },
            mapped: cur.bool()?,
            atomic: cur.bool()?,
            loc: get_loc(cur)?,
        }),
        6 => TraceEvent::Sync(match cur.u8()? {
            0 => SyncEvent::TaskCreate { parent: TaskId(cur.u32()?), child: TaskId(cur.u32()?) },
            1 => SyncEvent::TaskEnd { task: TaskId(cur.u32()?) },
            2 => SyncEvent::TaskJoin { waiter: TaskId(cur.u32()?), joined: TaskId(cur.u32()?) },
            3 => SyncEvent::Acquire { task: TaskId(cur.u32()?), lock: cur.u64()? },
            4 => SyncEvent::Release { task: TaskId(cur.u32()?), lock: cur.u64()? },
            tag => return Err(WireError::BadTag { what: "SyncEvent", tag }),
        }),
        7 => TraceEvent::Construct(match cur.u8()? {
            0 => ConstructEvent::TargetBegin {
                task: TaskId(cur.u32()?),
                device: DeviceId(cur.u16()?),
                nowait: cur.bool()?,
            },
            1 => ConstructEvent::TargetEnd { task: TaskId(cur.u32()?) },
            tag => return Err(WireError::BadTag { what: "ConstructEvent", tag }),
        }),
        tag => return Err(WireError::BadTag { what: "TraceEvent", tag }),
    })
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

fn get_opt_str(cur: &mut Cursor<'_>) -> Result<Option<String>, WireError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(cur.string()?)),
        tag => Err(WireError::BadTag { what: "Option<String>", tag }),
    }
}

/// Number of [`ReportKind`] variants. Sizes every per-kind counter array
/// (server stats, wire snapshots) so adding a kind cannot silently
/// truncate counters — extend [`REPORT_KINDS`] and the match arms in
/// [`report_kind_tag`]/[`report_kind`] together and the tests below
/// enforce they stay a bijection over `0..REPORT_KIND_COUNT`.
pub const REPORT_KIND_COUNT: usize = REPORT_KINDS.len();

/// Every report kind, indexed by its wire tag.
pub const REPORT_KINDS: [ReportKind; 7] = [
    ReportKind::MappingUum,
    ReportKind::MappingUsd,
    ReportKind::MappingOverflow,
    ReportKind::DataRace,
    ReportKind::UninitRead,
    ReportKind::HeapOverflow,
    ReportKind::UseAfterFree,
];

/// Stable tag byte of a [`ReportKind`] (also the index used by the
/// server's per-kind report counters).
pub fn report_kind_tag(kind: ReportKind) -> u8 {
    match kind {
        ReportKind::MappingUum => 0,
        ReportKind::MappingUsd => 1,
        ReportKind::MappingOverflow => 2,
        ReportKind::DataRace => 3,
        ReportKind::UninitRead => 4,
        ReportKind::HeapOverflow => 5,
        ReportKind::UseAfterFree => 6,
    }
}

/// Decode a [`ReportKind`] tag byte.
pub fn report_kind(tag: u8) -> Result<ReportKind, WireError> {
    Ok(match tag {
        0 => ReportKind::MappingUum,
        1 => ReportKind::MappingUsd,
        2 => ReportKind::MappingOverflow,
        3 => ReportKind::DataRace,
        4 => ReportKind::UninitRead,
        5 => ReportKind::HeapOverflow,
        6 => ReportKind::UseAfterFree,
        tag => return Err(WireError::BadTag { what: "ReportKind", tag }),
    })
}

/// Serialize one report.
pub fn encode_report(r: &Report, out: &mut Vec<u8>) {
    put_str(out, r.tool);
    out.push(report_kind_tag(r.kind));
    put_str(out, &r.message);
    put_opt_str(out, &r.buffer);
    put_u16(out, r.device.0);
    put_u64(out, r.addr);
    put_u64(out, r.size as u64);
    match r.loc {
        Some(loc) => {
            out.push(1);
            put_loc(out, loc);
        }
        None => out.push(0),
    }
    match r.prev {
        Some(p) => {
            out.push(1);
            put_u16(out, p.tid);
            put_u64(out, p.clock);
            put_bool(out, p.is_write);
        }
        None => out.push(0),
    }
    put_opt_str(out, &r.suggested_fix);
    // Trailing provenance extension (introduced with the explainable
    // diagnostics work). The tag byte is always present; old decoders
    // never saw report bytes followed by trailing data because reports
    // only ride inside count-prefixed lists that are themselves the last
    // field of their frame, so growing the record here is safe at a
    // wire-version bump boundary.
    if r.provenance.is_empty() {
        out.push(0);
    } else {
        out.push(1);
        put_u32(out, r.provenance.len() as u32);
        for step in &r.provenance {
            put_str(out, &step.op);
            put_str(out, &step.from);
            put_str(out, &step.to);
            match step.loc {
                Some(loc) => {
                    out.push(1);
                    put_loc(out, loc);
                }
                None => out.push(0),
            }
            put_u16(out, step.tid);
            put_u64(out, step.clock);
        }
    }
}

/// Decode one report. The tool name is re-interned so the decoded report
/// keeps the `&'static str` field of the original.
pub fn decode_report(cur: &mut Cursor<'_>) -> Result<Report, WireError> {
    let tool = cur.string()?;
    // Tool names come from a tiny closed set per build; interning through
    // the SrcLoc file table gives them back 'static lifetime without a
    // per-report leak.
    let tool = SrcLoc::intern(&tool, 0, 0).file;
    Ok(Report {
        tool,
        kind: report_kind(cur.u8()?)?,
        message: cur.string()?,
        buffer: get_opt_str(cur)?,
        device: DeviceId(cur.u16()?),
        addr: cur.u64()?,
        size: cur.u64()? as usize,
        loc: match cur.u8()? {
            0 => None,
            1 => Some(get_loc(cur)?),
            tag => return Err(WireError::BadTag { what: "Option<SrcLoc>", tag }),
        },
        prev: match cur.u8()? {
            0 => None,
            1 => Some(PrevAccess { tid: cur.u16()?, clock: cur.u64()?, is_write: cur.bool()? }),
            tag => return Err(WireError::BadTag { what: "Option<PrevAccess>", tag }),
        },
        suggested_fix: get_opt_str(cur)?,
        provenance: match cur.u8()? {
            0 => Vec::new(),
            1 => {
                let n = cur.count("provenance chain")?;
                let mut steps = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    steps.push(ProvenanceStep {
                        op: cur.string()?,
                        from: cur.string()?,
                        to: cur.string()?,
                        loc: match cur.u8()? {
                            0 => None,
                            1 => Some(get_loc(cur)?),
                            tag => {
                                return Err(WireError::BadTag { what: "Option<SrcLoc>", tag })
                            }
                        },
                        tid: cur.u16()?,
                        clock: cur.u64()?,
                    });
                }
                steps
            }
            tag => return Err(WireError::BadTag { what: "provenance", tag }),
        },
    })
}

/// Serialize a count-prefixed event batch.
pub fn encode_events(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + events.len() * 48);
    put_u32(&mut out, events.len() as u32);
    for ev in events {
        encode_event(ev, &mut out);
    }
    out
}

/// Decode a count-prefixed event batch.
pub fn decode_events(cur: &mut Cursor<'_>) -> Result<Vec<TraceEvent>, WireError> {
    let n = cur.count("event batch")?;
    let mut events = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        events.push(decode_event(cur)?);
    }
    Ok(events)
}

/// Serialize a count-prefixed report list.
pub fn encode_reports(reports: &[Report]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, reports.len() as u32);
    for r in reports {
        encode_report(r, &mut out);
    }
    out
}

/// Decode a count-prefixed report list.
pub fn decode_reports(cur: &mut Cursor<'_>) -> Result<Vec<Report>, WireError> {
    let n = cur.count("report list")?;
    let mut reports = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        reports.push(decode_report(cur)?);
    }
    Ok(reports)
}

/// Serialize a [`SpanContext`](arbalest_obs::SpanContext): the 128-bit
/// trace id as two little-endian u64 halves (high first), then the span
/// and parent ids.
pub fn put_span_context(out: &mut Vec<u8>, ctx: arbalest_obs::SpanContext) {
    put_u64(out, (ctx.trace >> 64) as u64);
    put_u64(out, ctx.trace as u64);
    put_u64(out, ctx.span);
    put_u64(out, ctx.parent);
}

/// Decode a [`SpanContext`](arbalest_obs::SpanContext).
pub fn get_span_context(cur: &mut Cursor<'_>) -> Result<arbalest_obs::SpanContext, WireError> {
    let hi = cur.u64()?;
    let lo = cur.u64()?;
    Ok(arbalest_obs::SpanContext {
        trace: (hi as u128) << 64 | lo as u128,
        span: cur.u64()?,
        parent: cur.u64()?,
    })
}

/// Serialize a count-prefixed span-event list (the payload of the
/// server's `TraceSnapshotReply` frame).
pub fn encode_span_events(events: &[arbalest_obs::SpanEvent], out: &mut Vec<u8>) {
    put_u32(out, events.len() as u32);
    for e in events {
        put_str(out, e.name);
        put_u32(out, e.tid);
        put_u64(out, e.start_ns);
        put_u64(out, e.dur_ns);
        put_span_context(out, e.context());
    }
}

/// Decode a count-prefixed span-event list. Span names are re-interned
/// (the vocabulary is a tiny closed set per build) so the decoded events
/// keep the `&'static str` field of the original.
pub fn decode_span_events(cur: &mut Cursor<'_>) -> Result<Vec<arbalest_obs::SpanEvent>, WireError> {
    let n = cur.count("span event list")?;
    let mut events = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name = cur.string()?;
        let name = SrcLoc::intern(&name, 0, 0).file;
        let tid = cur.u32()?;
        let start_ns = cur.u64()?;
        let dur_ns = cur.u64()?;
        let ctx = get_span_context(cur)?;
        events.push(arbalest_obs::SpanEvent {
            name,
            tid,
            start_ns,
            dur_ns,
            trace: ctx.trace,
            span: ctx.span,
            parent: ctx.parent,
        });
    }
    Ok(events)
}

/// Serialize a whole trace as a standalone file: magic, version, events.
pub fn encode_trace(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&TRACE_MAGIC);
    put_u16(&mut out, WIRE_VERSION);
    out.extend_from_slice(&encode_events(events));
    out
}

/// Decode a standalone trace file, rejecting bad magic, foreign versions,
/// and trailing garbage.
pub fn decode_trace(bytes: &[u8]) -> Result<Vec<TraceEvent>, WireError> {
    let mut cur = Cursor::new(bytes);
    if cur.take(4)? != TRACE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = cur.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::Version { got: version, want: WIRE_VERSION });
    }
    let events = decode_events(&mut cur)?;
    if !cur.is_empty() {
        return Err(WireError::TrailingBytes { extra: cur.remaining() });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_round_trip() {
        let mut out = Vec::new();
        put_str(&mut out, "héllo");
        let mut cur = Cursor::new(&out);
        assert_eq!(cur.string().unwrap(), "héllo");
        assert!(cur.is_empty());
    }

    #[test]
    fn oversize_string_is_rejected_before_allocation() {
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX);
        let err = Cursor::new(&out).string().unwrap_err();
        assert!(matches!(err, WireError::Oversize { what: "string", .. }));
    }

    #[test]
    fn trace_header_is_checked() {
        assert_eq!(decode_trace(b"NOPE"), Err(WireError::BadMagic));
        let mut bytes = encode_trace(&[]);
        bytes[4] = 0xFF; // forge the version
        assert!(matches!(decode_trace(&bytes), Err(WireError::Version { .. })));
        let mut bytes = encode_trace(&[]);
        bytes.push(0);
        assert_eq!(decode_trace(&bytes), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn report_kind_tags_are_a_bijection_over_the_count() {
        // Every kind's tag indexes REPORT_KINDS back to itself, so a
        // per-kind counter array of REPORT_KIND_COUNT cells can never be
        // indexed out of range or silently alias two kinds.
        for (i, &kind) in REPORT_KINDS.iter().enumerate() {
            assert_eq!(report_kind_tag(kind) as usize, i, "{kind:?}");
            assert_eq!(report_kind(i as u8), Ok(kind));
        }
        // The first tag past the table must be rejected; if someone adds
        // a variant without growing REPORT_KINDS, the exhaustive match in
        // report_kind_tag stops compiling and this assertion catches a
        // half-done wiring job.
        assert!(matches!(
            report_kind(REPORT_KIND_COUNT as u8),
            Err(WireError::BadTag { what: "ReportKind", .. })
        ));
    }

    #[test]
    fn report_provenance_round_trips() {
        let mut r = Report {
            tool: "arbalest",
            kind: ReportKind::MappingUsd,
            message: "stale read".into(),
            buffer: Some("a".into()),
            device: DeviceId::HOST,
            addr: 0x1000,
            size: 8,
            loc: Some(SrcLoc::intern("a.c", 30, 3)),
            prev: None,
            suggested_fix: None,
            provenance: Vec::new(),
        };
        // Empty chain: one tag byte, decodes back to empty.
        let mut bytes = Vec::new();
        encode_report(&r, &mut bytes);
        let mut cur = Cursor::new(&bytes);
        let back = decode_report(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, r);

        r.provenance = vec![
            ProvenanceStep {
                op: "update_target".into(),
                from: "host".into(),
                to: "consistent".into(),
                loc: Some(SrcLoc::intern("a.c", 12, 1)),
                tid: 0,
                clock: 3,
            },
            ProvenanceStep {
                op: "write_target".into(),
                from: "consistent".into(),
                to: "target".into(),
                loc: None,
                tid: 2,
                clock: 9,
            },
        ];
        let mut bytes = Vec::new();
        encode_report(&r, &mut bytes);
        let mut cur = Cursor::new(&bytes);
        let back = decode_report(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, r);

        // A bad provenance tag is a typed error, not a panic.
        let last = bytes.len() - 1;
        let cut = &bytes[..last - 2]; // strip clock tail, corrupt mid-chain
        assert!(decode_report(&mut Cursor::new(cut)).is_err());
        let _ = last;
    }

    #[test]
    fn span_events_round_trip_and_reintern_names() {
        let events = vec![
            arbalest_obs::SpanEvent {
                name: SrcLoc::intern("client_submit", 0, 0).file,
                tid: 1,
                start_ns: 100,
                dur_ns: 50,
                trace: 0xABCD_0000_0000_0000_0000_0000_0000_0001,
                span: 7,
                parent: 0,
            },
            arbalest_obs::SpanEvent {
                name: SrcLoc::intern("shard_job", 0, 0).file,
                tid: 9,
                start_ns: 120,
                dur_ns: 10,
                trace: 0xABCD_0000_0000_0000_0000_0000_0000_0001,
                span: 8,
                parent: 7,
            },
        ];
        let mut bytes = Vec::new();
        encode_span_events(&events, &mut bytes);
        let mut cur = Cursor::new(&bytes);
        let back = decode_span_events(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, events);
        // The 128-bit trace id survives the two-halves encoding.
        assert_eq!(back[0].trace, events[0].trace);
    }

    #[test]
    fn span_context_round_trips() {
        let ctx = arbalest_obs::SpanContext {
            trace: u128::MAX - 5,
            span: u64::MAX - 1,
            parent: 42,
        };
        let mut out = Vec::new();
        put_span_context(&mut out, ctx);
        let mut cur = Cursor::new(&out);
        assert_eq!(get_span_context(&mut cur).unwrap(), ctx);
        assert!(cur.is_empty());
    }

    #[test]
    fn wire_error_labels_are_distinct() {
        let labels = [
            WireError::Truncated { needed: 1, have: 0 }.label(),
            WireError::BadTag { what: "x", tag: 0 }.label(),
            WireError::BadUtf8.label(),
            WireError::Oversize { what: "x", len: 1, max: 0 }.label(),
            WireError::BadMagic.label(),
            WireError::Version { got: 0, want: 1 }.label(),
            WireError::TrailingBytes { extra: 1 }.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
