//! The offloading runtime: devices, target constructs, kernel teams,
//! asynchronous tasks, and tool event dispatch.
//!
//! Execution model (§II of the paper): a host program (one logical host
//! task) offloads *target regions* to devices. Synchronous regions block
//! the host; `nowait` regions run concurrently on their own OS thread.
//! Entry/exit data mappings execute *as part of the target task*, so a
//! `nowait` region's transfers genuinely race with concurrent host code —
//! the hazard of Fig. 2 is executable, not merely modeled.
//!
//! With `Config::serialize_nowait` (ARBALEST's Theorem-1 analysis mode),
//! `nowait` bodies run inline on the host thread **but the emitted
//! happens-before structure is unchanged** — the race detector still sees
//! host and kernel as unordered, while the VSM observes the deterministic
//! serialized schedule. That decoupling is exactly what Theorem 1 needs.

use crate::addr::{device_base, device_of, DeviceId, UNMAPPED_REGION_OFFSET};
use crate::buffer::{Buffer, BufferId, BufferInfo};
use crate::error::RuntimeError;
use crate::events::{
    AccessEvent, ConstructEvent, DataOpEvent, DataOpKind, SrcLoc, SyncEvent, TaskId, Tool,
    TransferEvent, TransferKind,
};
use crate::fault::{FaultConfig, FaultOutcome, FaultPlan, FaultSite, MAX_RETRIES};
use crate::mapping::{ExitPlan, Map, PresentEntry, PresentTable};
use crate::mem::{self, AddressSpace};
use crate::report::{Report, ReportKind};
use crate::scalar::Scalar;
use arbalest_sync::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::marker::PhantomData;

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Weak};

/// Runtime configuration.
#[derive(Clone)]
pub struct Config {
    /// Number of accelerator devices (default 1).
    pub accelerators: u16,
    /// Threads per kernel team for `par_for` (default 4).
    pub team_size: usize,
    /// Unified memory (§III-B): OV and CV share storage; map transfers
    /// become coherence flushes.
    pub unified_memory: bool,
    /// Theorem-1 analysis mode: run `nowait` bodies synchronously while
    /// preserving the asynchronous happens-before structure.
    pub serialize_nowait: bool,
    /// Device plugin pools its allocations (default true, like the LLVM
    /// CUDA plugin) — hides per-CV operations from binary instrumentation.
    pub pooled_device_alloc: bool,
    /// Route `target update` transfers through a runtime-internal staging
    /// buffer (default true) — launders allocator-interception shadow.
    pub staged_update_transfers: bool,
    /// Emit tool events for *implicit* data mappings of `declare target`
    /// globals (default true — the OMPT extension the paper's authors
    /// proposed in §V-A). With `false`, the runtime still performs the
    /// implicit mappings but tools never hear about them — the LLVM-9 OMPT
    /// behaviour that made tools mishandle global variables.
    pub implicit_map_events: bool,
    /// X10CUDA/OpenARC-style automatic memory management (§III-C, §VII-A
    /// of the paper): track per-variable coherence at coarse granularity
    /// and insert the missing transfers before stale reads. Repairs
    /// USD-class mapping issues in synchronous programs; cannot repair
    /// UUMs (there is nothing valid to copy) or asynchronous hazards.
    pub auto_coherence: bool,
    /// Deterministic fault injection (seed + per-site fault rate). The
    /// default is disabled; see [`crate::fault`] for the fault model.
    pub faults: FaultConfig,
    /// Metrics registry the runtime records into (map/update/launch
    /// latencies, transfer volume, fault outcomes). Disabled by default —
    /// an uninstrumented runtime pays one predictable branch per site.
    pub metrics: arbalest_obs::Registry,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            accelerators: 1,
            team_size: 4,
            unified_memory: false,
            serialize_nowait: false,
            pooled_device_alloc: true,
            staged_update_transfers: true,
            implicit_map_events: true,
            auto_coherence: false,
            faults: FaultConfig::disabled(),
            metrics: arbalest_obs::Registry::disabled(),
        }
    }
}

impl Config {
    /// Set the number of accelerators.
    pub fn accelerators(mut self, n: u16) -> Self {
        self.accelerators = n;
        self
    }
    /// Set the kernel team size.
    pub fn team_size(mut self, n: usize) -> Self {
        self.team_size = n.max(1);
        self
    }
    /// Enable unified memory.
    pub fn unified(mut self, on: bool) -> Self {
        self.unified_memory = on;
        self
    }
    /// Enable Theorem-1 serialization of `nowait` kernels.
    pub fn serialize(mut self, on: bool) -> Self {
        self.serialize_nowait = on;
        self
    }
    /// Control device-plugin pooling.
    pub fn pooled(mut self, on: bool) -> Self {
        self.pooled_device_alloc = on;
        self
    }
    /// Control update-transfer staging.
    pub fn staged_updates(mut self, on: bool) -> Self {
        self.staged_update_transfers = on;
        self
    }
    /// Enable automatic coherence management (issue *avoidance*).
    pub fn auto_coherence(mut self, on: bool) -> Self {
        self.auto_coherence = on;
        self
    }
    /// Control implicit-mapping event callbacks (§V-A).
    pub fn implicit_map_events(mut self, on: bool) -> Self {
        self.implicit_map_events = on;
        self
    }
    /// Inject deterministic faults: each fault site fires with probability
    /// `rate`, decided by a SplitMix64 stream seeded with `seed`.
    pub fn faults(mut self, seed: u64, rate: f64) -> Self {
        self.faults = FaultConfig::new(seed, rate);
        self
    }
    /// Set the full fault-injection configuration.
    pub fn fault_config(mut self, cfg: FaultConfig) -> Self {
        self.faults = cfg;
        self
    }
    /// Record runtime metrics into `reg` (share one registry across the
    /// runtime, the detector, and the exporters).
    pub fn metrics(mut self, reg: arbalest_obs::Registry) -> Self {
        self.metrics = reg;
        self
    }
}

/// Pre-registered metric handles for the runtime hot paths; constructed
/// once per runtime so recording never touches the registry tables.
struct RtMetrics {
    /// Map-phase latency histograms: `arbalest_rt_map_nanos{phase}`.
    entry_maps: arbalest_obs::Histogram,
    exit_maps: arbalest_obs::Histogram,
    /// `target update` latency: `arbalest_rt_update_nanos`.
    update: arbalest_obs::Histogram,
    /// Whole target-region latency (launch + maps + body):
    /// `arbalest_rt_target_nanos`.
    target: arbalest_obs::Histogram,
    /// `arbalest_rt_transfers_total` / `arbalest_rt_transfer_bytes_total`.
    transfers: arbalest_obs::Counter,
    transfer_bytes: arbalest_obs::Counter,
    /// Transient-fault retries: `arbalest_rt_fault_retries_total`.
    fault_retries: arbalest_obs::Counter,
    /// `arbalest_rt_fault_outcomes_total{site,outcome}`, indexed
    /// `[site][outcome]` per the label tables below.
    fault_outcomes: Vec<Vec<arbalest_obs::Counter>>,
    sp_entry: arbalest_obs::SpanName,
    sp_exit: arbalest_obs::SpanName,
    sp_update: arbalest_obs::SpanName,
    sp_target: arbalest_obs::SpanName,
    reg: arbalest_obs::Registry,
}

const FAULT_SITE_LABELS: [&str; 13] = [
    "device_alloc",
    "transfer_to_device",
    "transfer_from_device",
    "kernel_launch",
    "nowait_complete",
    "wire_partial_frame",
    "wire_disconnect",
    "wire_stall",
    "shard_panic",
    "budget_pressure",
    "wal_torn_tail",
    "wal_corrupt_record",
    "fsync_fail",
];
const FAULT_OUTCOME_LABELS: [&str; 5] = ["none", "transient", "permanent", "partial", "delay"];

fn fault_site_index(site: FaultSite) -> usize {
    match site {
        FaultSite::DeviceAlloc => 0,
        FaultSite::TransferToDevice => 1,
        FaultSite::TransferFromDevice => 2,
        FaultSite::KernelLaunch => 3,
        FaultSite::NowaitComplete => 4,
        FaultSite::WirePartialFrame => 5,
        FaultSite::WireDisconnect => 6,
        FaultSite::WireStall => 7,
        FaultSite::ShardPanic => 8,
        FaultSite::BudgetPressure => 9,
        FaultSite::WalTornTail => 10,
        FaultSite::WalCorruptRecord => 11,
        FaultSite::FsyncFail => 12,
    }
}

fn fault_outcome_index(outcome: &FaultOutcome) -> usize {
    match outcome {
        FaultOutcome::None => 0,
        FaultOutcome::Transient => 1,
        FaultOutcome::Permanent => 2,
        FaultOutcome::Partial { .. } => 3,
        FaultOutcome::Delay { .. } => 4,
    }
}

impl RtMetrics {
    fn new(reg: &arbalest_obs::Registry) -> RtMetrics {
        let fault_outcomes = FAULT_SITE_LABELS
            .iter()
            .map(|site| {
                FAULT_OUTCOME_LABELS
                    .iter()
                    .map(|outcome| {
                        reg.counter(
                            "arbalest_rt_fault_outcomes_total",
                            &[("site", site), ("outcome", outcome)],
                        )
                    })
                    .collect()
            })
            .collect();
        RtMetrics {
            entry_maps: reg.histogram("arbalest_rt_map_nanos", &[("phase", "entry")]),
            exit_maps: reg.histogram("arbalest_rt_map_nanos", &[("phase", "exit")]),
            update: reg.histogram("arbalest_rt_update_nanos", &[]),
            target: reg.histogram("arbalest_rt_target_nanos", &[]),
            transfers: reg.counter("arbalest_rt_transfers_total", &[]),
            transfer_bytes: reg.counter("arbalest_rt_transfer_bytes_total", &[]),
            fault_retries: reg.counter("arbalest_rt_fault_retries_total", &[]),
            fault_outcomes,
            sp_entry: reg.span_name("rt.entry_maps"),
            sp_exit: reg.span_name("rt.exit_maps"),
            sp_update: reg.span_name("rt.update"),
            sp_target: reg.span_name("rt.target"),
            reg: reg.clone(),
        }
    }

    /// Count one fault-plan decision (only called when injection is
    /// active, so the inactive hot path stays untouched).
    fn note_fault(&self, site: FaultSite, outcome: &FaultOutcome) {
        self.fault_outcomes[fault_site_index(site)][fault_outcome_index(outcome)].inc();
        if matches!(outcome, FaultOutcome::Transient) {
            self.fault_retries.inc();
        }
    }
}

/// Completion latch for a task.
struct TaskRecord {
    done: Mutex<bool>,
    cv: Condvar,
}

impl TaskRecord {
    fn new() -> Self {
        TaskRecord { done: Mutex::new(false), cv: Condvar::new() }
    }
    fn complete(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }
    fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }
}

/// Dependence kind for `depend` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependKind {
    /// `depend(in: ...)` — ordered after the last `out` task.
    In,
    /// `depend(out: ...)` / `depend(inout: ...)` — ordered after the last
    /// `out` task and all intervening `in` tasks.
    Out,
}

/// One `depend` clause.
#[derive(Debug, Clone, Copy)]
pub struct Depend {
    /// Buffer whose dependence chain this participates in.
    pub buffer: BufferId,
    /// In or out.
    pub kind: DependKind,
}

impl Depend {
    /// `depend(in: buf)`
    pub fn read<T: Scalar>(buf: &Buffer<T>) -> Depend {
        Depend { buffer: buf.id(), kind: DependKind::In }
    }
    /// `depend(out: buf)` / `depend(inout: buf)`
    pub fn write<T: Scalar>(buf: &Buffer<T>) -> Depend {
        Depend { buffer: buf.id(), kind: DependKind::Out }
    }
}

#[derive(Default)]
struct DepChain {
    last_out: Option<(TaskId, Arc<TaskRecord>)>,
    last_ins: Vec<(TaskId, Arc<TaskRecord>)>,
}

struct Rt {
    cfg: Config,
    criticals: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
    /// `declare target` globals: implicitly mapped at first device use.
    declared: Mutex<Vec<BufferId>>,
    globals_mapped: Vec<AtomicBool>,
    spaces: Vec<Arc<AddressSpace>>,
    buffers: RwLock<Vec<BufferInfo>>,
    present: Vec<Mutex<PresentTable>>,
    tools: RwLock<Vec<Arc<dyn Tool>>>,
    next_task: AtomicU32,
    pending: Mutex<Vec<(TaskId, Arc<TaskRecord>)>>,
    deps: Mutex<HashMap<BufferId, DepChain>>,
    pool_announced: Vec<AtomicBool>,
    staging_lock: Mutex<()>,
    staging_base: Mutex<Option<(u64, u64)>>,
    /// Coarse per-variable coherence state for `auto_coherence` mode: a
    /// freshness bitmask (bit 0 = host OV, bit d = device d's CV), one
    /// state per whole variable like X10CUDA/OpenARC (§VII-A).
    coherence: Mutex<HashMap<BufferId, u8>>,
    /// Seeded fault-decision stream (inactive when the rate is zero).
    faults: FaultPlan,
    /// Log of every recovered abnormality, in observation order.
    errors: Mutex<Vec<RuntimeError>>,
    /// Reports the runtime itself emits (e.g. double free), merged into
    /// [`Runtime::reports`] alongside tool findings.
    own_reports: Mutex<Vec<Report>>,
    /// Pre-registered observability handles (no-ops unless
    /// [`Config::metrics`] carries an enabled registry).
    metrics: std::sync::Arc<RtMetrics>,
}

/// The offloading runtime. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<Rt>,
}

impl Runtime {
    /// Create a runtime with the given configuration and no tools.
    pub fn new(cfg: Config) -> Runtime {
        let n = cfg.accelerators;
        let spaces = (0..=n).map(|d| Arc::new(AddressSpace::new(DeviceId(d)))).collect();
        let present = (0..n).map(|_| Mutex::new(PresentTable::new())).collect();
        let pool_announced = (0..n).map(|_| AtomicBool::new(false)).collect();
        let faults = FaultPlan::new(cfg.faults);
        // Cached per registry: runtimes sharing a registry share cells, so
        // re-registering the ~35 series per runtime would only slow setup.
        let metrics = cfg.metrics.state(RtMetrics::new);
        Runtime {
            inner: Arc::new(Rt {
                criticals: Mutex::new(HashMap::new()),
                declared: Mutex::new(Vec::new()),
                globals_mapped: (0..cfg.accelerators).map(|_| AtomicBool::new(false)).collect(),
                cfg,
                spaces,
                buffers: RwLock::new(Vec::new()),
                present,
                tools: RwLock::new(Vec::new()),
                next_task: AtomicU32::new(1),
                pending: Mutex::new(Vec::new()),
                deps: Mutex::new(HashMap::new()),
                pool_announced,
                staging_lock: Mutex::new(()),
                staging_base: Mutex::new(None),
                coherence: Mutex::new(HashMap::new()),
                faults,
                errors: Mutex::new(Vec::new()),
                own_reports: Mutex::new(Vec::new()),
                metrics,
            }),
        }
    }

    /// Create a runtime with a single attached tool.
    pub fn with_tool(cfg: Config, tool: Arc<dyn Tool>) -> Runtime {
        let rt = Runtime::new(cfg);
        rt.attach(tool);
        rt
    }

    /// Attach a tool. Attach all tools before allocating buffers so they
    /// observe every registration.
    pub fn attach(&self, tool: Arc<dyn Tool>) {
        self.inner.tools.write().push(tool);
    }

    /// The runtime configuration.
    pub fn config(&self) -> &Config {
        &self.inner.cfg
    }

    /// The metrics registry this runtime records into (the one passed via
    /// [`Config::metrics`]; disabled by default).
    pub fn metrics_registry(&self) -> &arbalest_obs::Registry {
        &self.inner.metrics.reg
    }

    /// Collected reports: the runtime's own findings (e.g. double free)
    /// followed by those of every attached tool.
    pub fn reports(&self) -> Vec<Report> {
        let mut out: Vec<Report> = self.inner.own_reports.lock().clone();
        out.extend(self.inner.tools.read().iter().flat_map(|t| t.reports()));
        out
    }

    /// Every recovered abnormality so far, in observation order: injected
    /// faults the runtime rode out (retries, host fallback) and API misuse
    /// it survived (out-of-range accesses, double frees). An empty log
    /// means the run was fault-free.
    pub fn errors(&self) -> Vec<RuntimeError> {
        self.inner.errors.lock().clone()
    }

    /// Reports from the named tool only.
    pub fn reports_of(&self, name: &str) -> Vec<Report> {
        self.inner
            .tools
            .read()
            .iter()
            .filter(|t| t.name() == name)
            .flat_map(|t| t.reports())
            .collect()
    }

    /// Total bytes materialised by all device memories (application side
    /// of Fig. 9's measurement).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.spaces.iter().map(|s| s.resident_bytes()).sum()
    }

    /// Bytes of tool side tables (shadow memory etc.), summed.
    pub fn tool_bytes(&self) -> u64 {
        self.inner.tools.read().iter().map(|t| t.side_table_bytes()).sum()
    }

    // ------------------------------------------------------------------
    // Buffers (OVs)
    // ------------------------------------------------------------------

    /// Allocate an uninitialized tracked host buffer of `len` elements.
    pub fn alloc<T: Scalar>(&self, name: &str, len: usize) -> Buffer<T> {
        let bytes = (len * T::SIZE) as u64;
        let ov_base = self.inner.spaces[0].alloc(bytes.max(8));
        let id = BufferId(self.inner.buffers.read().len() as u32);
        let info = BufferInfo { id, name: name.to_string(), elem_size: T::SIZE, len, ov_base };
        self.inner.buffers.write().push(info.clone());
        for t in self.inner.tools.read().iter() {
            t.on_buffer_registered(&info);
        }
        Buffer { id, len, _marker: PhantomData }
    }

    /// Allocate and initialise from a slice (each element written through
    /// the instrumented path, so tools see the initialisation).
    #[track_caller]
    pub fn alloc_init<T: Scalar>(&self, name: &str, data: &[T]) -> Buffer<T> {
        let buf = self.alloc(name, data.len());
        for (i, v) in data.iter().enumerate() {
            self.write(&buf, i, *v);
        }
        buf
    }

    /// Allocate and fill with a generator.
    #[track_caller]
    pub fn alloc_with<T: Scalar>(&self, name: &str, len: usize, f: impl Fn(usize) -> T) -> Buffer<T> {
        let buf = self.alloc(name, len);
        for i in 0..len {
            self.write(&buf, i, f(i));
        }
        buf
    }

    /// Free a tracked host buffer. A double free is recorded as a
    /// [`RuntimeError::DoubleFree`] plus a `UseAfterFree` report (visible
    /// in [`Runtime::reports`]) instead of aborting the process.
    #[track_caller]
    pub fn free<T: Scalar>(&self, buf: &Buffer<T>) {
        let _ = self.try_free(buf);
    }

    /// Like [`Runtime::free`], returning the error for a bad free.
    #[track_caller]
    pub fn try_free<T: Scalar>(&self, buf: &Buffer<T>) -> Result<(), RuntimeError> {
        let info = self.info(buf.id());
        match self.inner.spaces[0].free(info.ov_base) {
            Ok(_) => {
                for t in self.inner.tools.read().iter() {
                    t.on_host_free(&info);
                }
                Ok(())
            }
            Err(e) => {
                self.inner.note_error(e.clone());
                self.inner.own_reports.lock().push(Report {
                    tool: "runtime",
                    kind: ReportKind::UseAfterFree,
                    message: format!("free of already-freed buffer '{}'", info.name),
                    buffer: Some(info.name.clone()),
                    device: DeviceId::HOST,
                    addr: info.ov_base,
                    size: info.elem_size,
                    loc: Some(SrcLoc::caller()),
                    prev: None,
                    suggested_fix: Some(format!("remove the duplicate free of '{}'", info.name)),
                    provenance: Vec::new(),
                });
                Err(e)
            }
        }
    }

    /// Metadata of a buffer. An id this runtime never allocated yields a
    /// zero-length placeholder and a logged [`RuntimeError::UnknownBuffer`].
    pub fn info(&self, id: BufferId) -> BufferInfo {
        self.inner.buffer_info(id)
    }

    fn ov_base(&self, id: BufferId) -> u64 {
        self.inner.buffer_info(id).ov_base
    }

    // ------------------------------------------------------------------
    // Host accesses
    // ------------------------------------------------------------------

    /// Tracked host read of element `idx`. An out-of-range index is
    /// recorded as a [`RuntimeError::OutOfRange`] and reads as a zero
    /// value (see [`Runtime::try_read`] for the checked variant).
    #[track_caller]
    #[inline]
    pub fn read<T: Scalar>(&self, buf: &Buffer<T>, idx: usize) -> T {
        match self.try_read(buf, idx) {
            Ok(v) => v,
            Err(e) => {
                self.inner.note_error(e);
                T::from_bits(0)
            }
        }
    }

    /// Checked host read: `Err` for an out-of-range index.
    #[track_caller]
    #[inline]
    pub fn try_read<T: Scalar>(&self, buf: &Buffer<T>, idx: usize) -> Result<T, RuntimeError> {
        if idx >= buf.len() {
            return Err(RuntimeError::OutOfRange {
                buffer: buf.id(),
                index: idx,
                len: buf.len(),
                is_write: false,
            });
        }
        self.inner.coherence_before_host_read(buf.id());
        let addr = self.ov_base(buf.id()) + (idx * T::SIZE) as u64;
        self.inner.emit_access(AccessEvent {
            device: DeviceId::HOST,
            addr,
            size: T::SIZE,
            is_write: false,
            task: TaskId::HOST,
            buffer: Some(buf.id()),
            mapped: true,
            atomic: false,
            loc: SrcLoc::caller(),
        });
        Ok(T::from_bits(self.inner.spaces[0].load(addr, T::SIZE)))
    }

    /// Tracked host write of element `idx`. An out-of-range index is
    /// recorded as a [`RuntimeError::OutOfRange`] and dropped (see
    /// [`Runtime::try_write`] for the checked variant).
    #[track_caller]
    #[inline]
    pub fn write<T: Scalar>(&self, buf: &Buffer<T>, idx: usize, value: T) {
        if let Err(e) = self.try_write(buf, idx, value) {
            self.inner.note_error(e);
        }
    }

    /// Checked host write: `Err` for an out-of-range index.
    #[track_caller]
    #[inline]
    pub fn try_write<T: Scalar>(&self, buf: &Buffer<T>, idx: usize, value: T) -> Result<(), RuntimeError> {
        if idx >= buf.len() {
            return Err(RuntimeError::OutOfRange {
                buffer: buf.id(),
                index: idx,
                len: buf.len(),
                is_write: true,
            });
        }
        self.inner.coherence_host_write(buf.id());
        let addr = self.ov_base(buf.id()) + (idx * T::SIZE) as u64;
        self.inner.emit_access(AccessEvent {
            device: DeviceId::HOST,
            addr,
            size: T::SIZE,
            is_write: true,
            task: TaskId::HOST,
            buffer: Some(buf.id()),
            mapped: true,
            atomic: false,
            loc: SrcLoc::caller(),
        });
        self.inner.spaces[0].store(addr, T::SIZE, value.to_bits());
        Ok(())
    }

    /// Read the whole buffer into a `Vec` (each element tracked).
    #[track_caller]
    pub fn read_all<T: Scalar>(&self, buf: &Buffer<T>) -> Vec<T> {
        (0..buf.len()).map(|i| self.read(buf, i)).collect()
    }

    // ------------------------------------------------------------------
    // Constructs
    // ------------------------------------------------------------------

    /// Begin building a `target` construct on the default accelerator.
    pub fn target(&self) -> TargetBuilder {
        TargetBuilder {
            rt: self.clone(),
            device: DeviceId::ACCEL0,
            maps: Vec::new(),
            depends: Vec::new(),
            nowait: false,
        }
    }

    /// Begin building a structured `target data` region.
    pub fn target_data(&self) -> TargetDataBuilder {
        TargetDataBuilder { rt: self.clone(), device: DeviceId::ACCEL0, maps: Vec::new() }
    }

    /// `target enter data` with the given maps. A permanent device OOM
    /// rolls the mappings back and is recorded in [`Runtime::errors`].
    pub fn target_enter_data(&self, device: DeviceId, maps: &[Map]) {
        let _ = self.inner.perform_entry_maps(device, maps, TaskId::HOST);
    }

    /// `target exit data` with the given maps.
    pub fn target_exit_data(&self, device: DeviceId, maps: &[Map]) {
        self.inner.perform_exit_maps(device, maps, TaskId::HOST);
    }

    /// `target update to(buf)` — OV → CV, ignoring reference counts.
    pub fn update_to<T: Scalar>(&self, buf: &Buffer<T>) {
        self.update_to_on(DeviceId::ACCEL0, buf);
    }

    /// `target update from(buf)` — CV → OV.
    pub fn update_from<T: Scalar>(&self, buf: &Buffer<T>) {
        self.update_from_on(DeviceId::ACCEL0, buf);
    }

    /// `target update to` on a specific device.
    pub fn update_to_on<T: Scalar>(&self, device: DeviceId, buf: &Buffer<T>) {
        self.inner.perform_update(device, buf.id(), TransferKind::ToDevice, TaskId::HOST);
    }

    /// `target update from` on a specific device.
    pub fn update_from_on<T: Scalar>(&self, device: DeviceId, buf: &Buffer<T>) {
        self.inner.perform_update(device, buf.id(), TransferKind::FromDevice, TaskId::HOST);
    }

    /// `declare target`-style global: the buffer is *implicitly* mapped
    /// (tofrom semantics, permanent CV) on each device the first time a
    /// target construct runs there — during "initialization of the
    /// device", as §V-A describes. Whether tools observe the implicit
    /// mapping is governed by [`Config::implicit_map_events`].
    pub fn declare_target<T: Scalar>(&self, buf: &Buffer<T>) {
        self.inner.declared.lock().push(buf.id());
    }

    /// `omp_target_memcpy` between two accelerators: copy `buf`'s CV on
    /// `src` directly to its CV on `dst`. Both must be present; the copy
    /// covers the overlap of the two mapped sections.
    pub fn device_memcpy<T: Scalar>(&self, src: DeviceId, dst: DeviceId, buf: &Buffer<T>) {
        let (Some(src_table), Some(dst_table)) =
            (self.inner.present_table(src), self.inner.present_table(dst))
        else {
            // Host endpoints (use update_to/update_from) or unknown
            // devices: recorded, not fatal.
            let bad = if self.inner.present_table(src).is_none() { src } else { dst };
            self.inner.note_error(RuntimeError::InvalidDevice { device: bad });
            return;
        };
        let src_entry = src_table.lock().get(buf.id());
        let dst_entry = dst_table.lock().get(buf.id());
        let (Some(se), Some(de)) = (src_entry, dst_entry) else { return };
        // Overlap of the two sections, in OV byte offsets.
        let lo = se.offset_bytes.max(de.offset_bytes);
        let hi = (se.offset_bytes + se.len_bytes).min(de.offset_bytes + de.len_bytes);
        if lo >= hi {
            return;
        }
        let len = hi - lo;
        let (src_addr, dst_addr) = (se.cv_addr(lo), de.cv_addr(lo));
        if !self.inner.cfg.unified_memory {
            mem::copy(
                &self.inner.spaces[src.0 as usize],
                src_addr,
                &self.inner.spaces[dst.0 as usize],
                dst_addr,
                len,
            );
        }
        let ev = TransferEvent {
            buffer: buf.id(),
            kind: TransferKind::DeviceToDevice,
            src_device: src,
            src_addr,
            dst_device: dst,
            dst_addr,
            len,
            task: TaskId::HOST,
            staged: false,
            unified: self.inner.cfg.unified_memory,
        };
        for t in self.inner.tools.read().iter() {
            t.on_transfer(&ev);
        }
    }

    /// `target update to(buf[start:len])` — sectioned update.
    pub fn update_to_section<T: Scalar>(&self, device: DeviceId, buf: &Buffer<T>, start: usize, len: usize) {
        self.inner.perform_update_section(
            device,
            buf.id(),
            TransferKind::ToDevice,
            (start * T::SIZE) as u64,
            (len * T::SIZE) as u64,
            TaskId::HOST,
        );
    }

    /// `target update from(buf[start:len])` — sectioned update.
    pub fn update_from_section<T: Scalar>(&self, device: DeviceId, buf: &Buffer<T>, start: usize, len: usize) {
        self.inner.perform_update_section(
            device,
            buf.id(),
            TransferKind::FromDevice,
            (start * T::SIZE) as u64,
            (len * T::SIZE) as u64,
            TaskId::HOST,
        );
    }

    /// `taskwait`: block until every outstanding `nowait` task finishes,
    /// establishing the host-after-task happens-before edges.
    pub fn taskwait(&self) {
        let pending: Vec<_> = std::mem::take(&mut *self.inner.pending.lock());
        for (task, record) in pending {
            record.wait();
            self.inner.emit_sync(SyncEvent::TaskJoin { waiter: TaskId::HOST, joined: task });
        }
    }

    /// Whether a buffer currently has a CV on a device. The host (which
    /// has no present table) and unknown devices answer `false`.
    pub fn is_present<T: Scalar>(&self, device: DeviceId, buf: &Buffer<T>) -> bool {
        match self.inner.present_table(device) {
            Some(table) => table.lock().exists(buf.id()),
            None => false,
        }
    }
}

impl Rt {
    fn new_task(&self) -> TaskId {
        TaskId(self.next_task.fetch_add(1, Ordering::Relaxed))
    }

    #[inline]
    fn emit_access(&self, ev: AccessEvent) {
        for t in self.tools.read().iter() {
            t.on_access(&ev);
        }
    }

    fn emit_sync(&self, ev: SyncEvent) {
        for t in self.tools.read().iter() {
            t.on_sync(&ev);
        }
    }

    fn emit_construct(&self, ev: ConstructEvent) {
        for t in self.tools.read().iter() {
            t.on_construct(&ev);
        }
    }

    fn space(&self, dev: DeviceId) -> &AddressSpace {
        &self.spaces[dev.0 as usize]
    }

    fn note_error(&self, e: RuntimeError) {
        self.errors.lock().push(e);
    }

    /// The present table of an accelerator; `None` for the host or a
    /// device id this runtime was not configured with.
    fn present_table(&self, device: DeviceId) -> Option<&Mutex<PresentTable>> {
        if device.is_host() {
            return None;
        }
        self.present.get((device.0 - 1) as usize)
    }

    /// True when `device` names the host or a configured accelerator.
    fn device_known(&self, device: DeviceId) -> bool {
        device.is_host() || (device.0 as usize) <= self.present.len()
    }

    fn buffer_info(&self, id: BufferId) -> BufferInfo {
        match self.buffers.read().get(id.0 as usize) {
            Some(info) => info.clone(),
            None => {
                // A handle this runtime never issued; survive with a
                // zero-length placeholder so no access can land anywhere.
                self.note_error(RuntimeError::UnknownBuffer { buffer: id });
                BufferInfo {
                    id,
                    name: "<unknown>".to_string(),
                    elem_size: 8,
                    len: 0,
                    ov_base: 0,
                }
            }
        }
    }

    fn announce_pool(&self, device: DeviceId) {
        if !self.cfg.pooled_device_alloc || self.cfg.unified_memory {
            return;
        }
        let flag = &self.pool_announced[(device.0 - 1) as usize];
        if !flag.swap(true, Ordering::Relaxed) {
            for t in self.tools.read().iter() {
                t.on_pool_alloc(device, device_base(device), UNMAPPED_REGION_OFFSET);
            }
        }
    }

    /// Allocate a CV in device memory, riding out injected allocation
    /// faults: transient failures retry with exponential backoff; a
    /// permanent failure (or retry exhaustion — the OOM persists) is the
    /// caller's cue to roll back and degrade.
    fn fault_alloc(&self, device: DeviceId, buffer: BufferId, len: u64) -> Result<u64, RuntimeError> {
        if !self.faults.active() {
            return Ok(self.space(device).alloc(len));
        }
        let mut attempts = 0u32;
        loop {
            let outcome = self.faults.decide(FaultSite::DeviceAlloc);
            self.metrics.note_fault(FaultSite::DeviceAlloc, &outcome);
            match outcome {
                FaultOutcome::Transient if attempts < MAX_RETRIES => {
                    FaultPlan::backoff(attempts);
                    attempts += 1;
                }
                FaultOutcome::None => return Ok(self.space(device).alloc(len)),
                // Permanent, or transient retries exhausted.
                _ => {
                    let e = RuntimeError::DeviceAllocFailed {
                        device,
                        buffer,
                        len,
                        attempts: attempts + 1,
                    };
                    self.note_error(e.clone());
                    return Err(e);
                }
            }
        }
    }

    /// Decide whether a kernel launch on `device` succeeds, retrying
    /// transient failures. `false` means the caller must fall back to
    /// host execution.
    fn fault_kernel_launch(&self, device: DeviceId, task: TaskId) -> bool {
        if device.is_host() || !self.faults.active() {
            return true;
        }
        let mut attempts = 0u32;
        loop {
            let outcome = self.faults.decide(FaultSite::KernelLaunch);
            self.metrics.note_fault(FaultSite::KernelLaunch, &outcome);
            match outcome {
                FaultOutcome::Transient if attempts < MAX_RETRIES => {
                    FaultPlan::backoff(attempts);
                    attempts += 1;
                }
                FaultOutcome::None => return true,
                _ => {
                    self.note_error(RuntimeError::KernelLaunchFailed {
                        device,
                        task,
                        attempts: attempts + 1,
                    });
                    return false;
                }
            }
        }
    }

    /// Perform the implicit mappings of `declare target` globals on first
    /// use of a device. Real runtimes do this while initialising the
    /// device; tools only see it if the runtime implements the implicit-
    /// mapping callbacks the paper's authors proposed (§V-A).
    fn ensure_globals(&self, device: DeviceId, task: TaskId) {
        if device.is_host() {
            return;
        }
        let flag = &self.globals_mapped[(device.0 - 1) as usize];
        if flag.swap(true, Ordering::Relaxed) {
            return;
        }
        let declared: Vec<BufferId> = self.declared.lock().clone();
        if declared.is_empty() {
            return;
        }
        let notify = self.cfg.implicit_map_events;
        let Some(table) = self.present_table(device) else {
            self.note_error(RuntimeError::InvalidDevice { device });
            return;
        };
        let mut table = table.lock();
        for id in declared {
            let info = self.buffer_info(id);
            let m = Map {
                buffer: id,
                map_type: crate::mapping::MapType::ToFrom,
                offset_bytes: 0,
                len_bytes: info.byte_len().max(8),
            };
            let plan = table.plan_entry(&m);
            if !plan.alloc {
                if let Err(e) = table.commit_entry(&m, plan, 0) {
                    self.note_error(e);
                }
                continue;
            }
            self.announce_pool(device);
            let cv_base = if self.cfg.unified_memory {
                info.ov_base
            } else {
                match self.fault_alloc(device, id, m.len_bytes) {
                    Ok(base) => base,
                    // Permanent OOM: leave this global unmapped; kernel
                    // accesses to it will resolve to the unmapped region,
                    // which is exactly what tools should observe.
                    Err(_) => continue,
                }
            };
            if notify {
                let op = DataOpEvent {
                    device,
                    buffer: id,
                    kind: DataOpKind::CvAlloc,
                    cv_base,
                    ov_addr: info.ov_base,
                    len: m.len_bytes,
                    plugin_visible: self.cfg.unified_memory || !self.cfg.pooled_device_alloc,
                    task,
                };
                for t in self.tools.read().iter() {
                    t.on_data_op(&op);
                }
            }
            if !self.cfg.unified_memory {
                mem::copy(&self.spaces[0], info.ov_base, self.space(device), cv_base, m.len_bytes);
            }
            if notify {
                let ev = TransferEvent {
                    buffer: id,
                    kind: TransferKind::ToDevice,
                    src_device: DeviceId::HOST,
                    src_addr: info.ov_base,
                    dst_device: device,
                    dst_addr: cv_base,
                    len: m.len_bytes,
                    task,
                    staged: false,
                    unified: self.cfg.unified_memory,
                };
                for t in self.tools.read().iter() {
                    t.on_transfer(&ev);
                }
            }
            if let Err(e) = table.commit_entry(&m, plan, cv_base) {
                self.note_error(e);
            }
        }
    }

    /// Execute entry mappings (Table I upper half) for a construct.
    ///
    /// On a permanent device-allocation failure the construct's
    /// already-committed mappings are rolled back inside the same table
    /// critical section — created CVs are deleted (with `CvDelete` events,
    /// so detectors release the shadow intervals and VSM device bits) and
    /// refcount bumps are undone — and the error is returned so the caller
    /// can degrade to host execution. The present table and every tool's
    /// view are exactly as if the construct never started mapping.
    fn perform_entry_maps(&self, device: DeviceId, maps: &[Map], task: TaskId) -> Result<(), RuntimeError> {
        if device.is_host() {
            return Ok(());
        }
        let _span = self.metrics.reg.span_with(self.metrics.sp_entry, &self.metrics.entry_maps);
        let Some(table) = self.present_table(device) else {
            let e = RuntimeError::InvalidDevice { device };
            self.note_error(e.clone());
            return Err(e);
        };
        let mut table = table.lock();
        // What this construct committed so far: Some(cv_base) for a CV it
        // created, None for a refcount it bumped.
        let mut committed: Vec<(Map, Option<u64>)> = Vec::new();
        for m in maps {
            let plan = table.plan_entry(m);
            if plan.alloc {
                self.announce_pool(device);
                let info = self.buffer_info(m.buffer);
                let ov_addr = info.ov_base + m.offset_bytes;
                let cv_base = if self.cfg.unified_memory {
                    ov_addr
                } else {
                    match self.fault_alloc(device, m.buffer, m.len_bytes) {
                        Ok(base) => base,
                        Err(e) => {
                            self.rollback_entry_maps(device, &mut table, &committed, task);
                            return Err(e);
                        }
                    }
                };
                let op = DataOpEvent {
                    device,
                    buffer: m.buffer,
                    kind: DataOpKind::CvAlloc,
                    cv_base,
                    ov_addr,
                    len: m.len_bytes,
                    plugin_visible: self.cfg.unified_memory || !self.cfg.pooled_device_alloc,
                    task,
                };
                for t in self.tools.read().iter() {
                    t.on_data_op(&op);
                }
                if plan.copy_to_device {
                    self.do_transfer(
                        device,
                        m.buffer,
                        TransferKind::ToDevice,
                        ov_addr,
                        cv_base,
                        m.len_bytes,
                        task,
                        false,
                    );
                }
                if let Err(e) = table.commit_entry(m, plan, cv_base) {
                    self.note_error(e);
                } else {
                    committed.push((*m, Some(cv_base)));
                }
            } else {
                match table.commit_entry(m, plan, 0) {
                    Ok(()) => {
                        if !matches!(m.map_type, crate::mapping::MapType::Release | crate::mapping::MapType::Delete) {
                            committed.push((*m, None));
                        }
                    }
                    Err(e) => self.note_error(e),
                }
            }
        }
        Ok(())
    }

    /// Undo the committed prefix of a construct's entry maps, newest
    /// first. Created CVs are deleted with truthful `CvDelete` events
    /// (driving the detectors' interval removal and VSM `Release`);
    /// refcount bumps are decremented silently, exactly mirroring what
    /// `commit_entry` did.
    fn rollback_entry_maps(
        &self,
        device: DeviceId,
        table: &mut PresentTable,
        committed: &[(Map, Option<u64>)],
        task: TaskId,
    ) {
        for (m, created) in committed.iter().rev() {
            match created {
                Some(cv_base) => {
                    let plan = ExitPlan { copy_from_device: false, delete: true };
                    if let Some(entry) = table.commit_exit(m, plan) {
                        if !self.cfg.unified_memory {
                            if let Err(e) = self.space(device).free(entry.cv_base) {
                                self.note_error(e);
                            }
                        }
                        let info = self.buffer_info(m.buffer);
                        let op = DataOpEvent {
                            device,
                            buffer: m.buffer,
                            kind: DataOpKind::CvDelete,
                            cv_base: *cv_base,
                            ov_addr: info.ov_base + entry.offset_bytes,
                            len: entry.len_bytes,
                            plugin_visible: self.cfg.unified_memory || !self.cfg.pooled_device_alloc,
                            task,
                        };
                        for t in self.tools.read().iter() {
                            t.on_data_op(&op);
                        }
                    }
                }
                None => {
                    table.commit_exit(m, ExitPlan { copy_from_device: false, delete: false });
                }
            }
        }
    }

    /// Execute exit mappings (Table I lower half) for a construct.
    fn perform_exit_maps(&self, device: DeviceId, maps: &[Map], task: TaskId) {
        if device.is_host() {
            return;
        }
        let _span = self.metrics.reg.span_with(self.metrics.sp_exit, &self.metrics.exit_maps);
        let Some(table) = self.present_table(device) else {
            self.note_error(RuntimeError::InvalidDevice { device });
            return;
        };
        let mut table = table.lock();
        for m in maps {
            let mut plan = table.plan_exit(m);
            // Automatic coherence (§III-C): if the CV about to be deleted
            // holds the only fresh copy, insert the copy-back the
            // programmer forgot.
            if self.cfg.auto_coherence
                && !self.cfg.unified_memory
                && plan.delete
                && !plan.copy_from_device
                && device.0 <= 7
            {
                let fresh =
                    self.coherence.lock().get(&m.buffer).copied().unwrap_or(0b1);
                if fresh & 0b1 == 0 && fresh & (1 << device.0) != 0 {
                    plan.copy_from_device = true;
                    self.coherence.lock().entry(m.buffer).and_modify(|e| *e |= 0b1);
                }
            }
            if plan.copy_from_device {
                if let Some(entry) = table.get(m.buffer) {
                    let info = self.buffer_info(m.buffer);
                    let ov_addr = info.ov_base + entry.offset_bytes;
                    self.do_transfer(
                        device,
                        m.buffer,
                        TransferKind::FromDevice,
                        ov_addr,
                        entry.cv_base,
                        entry.len_bytes,
                        task,
                        false,
                    );
                }
            }
            if let Some(entry) = table.commit_exit(m, plan) {
                if !self.cfg.unified_memory {
                    if let Err(e) = self.space(device).free(entry.cv_base) {
                        self.note_error(e);
                    }
                }
                let info = self.buffer_info(m.buffer);
                let op = DataOpEvent {
                    device,
                    buffer: m.buffer,
                    kind: DataOpKind::CvDelete,
                    cv_base: entry.cv_base,
                    ov_addr: info.ov_base + entry.offset_bytes,
                    len: entry.len_bytes,
                    plugin_visible: self.cfg.unified_memory || !self.cfg.pooled_device_alloc,
                    task,
                };
                for t in self.tools.read().iter() {
                    t.on_data_op(&op);
                }
            }
        }
    }

    /// `target update` transfer: ignores reference counts; no-op when not
    /// present (OpenMP 5.x semantics).
    fn perform_update(&self, device: DeviceId, buffer: BufferId, kind: TransferKind, task: TaskId) -> bool {
        if device.is_host() {
            return false;
        }
        let _span = self.metrics.reg.span_with(self.metrics.sp_update, &self.metrics.update);
        let Some(table) = self.present_table(device) else {
            self.note_error(RuntimeError::InvalidDevice { device });
            return false;
        };
        let entry = table.lock().get(buffer);
        let Some(entry) = entry else { return false };
        let info = self.buffer_info(buffer);
        let ov_addr = info.ov_base + entry.offset_bytes;
        let staged = self.cfg.staged_update_transfers;
        self.do_transfer(device, buffer, kind, ov_addr, entry.cv_base, entry.len_bytes, task, staged);
        true
    }

    /// Sectioned `target update`: transfer an arbitrary contiguous piece
    /// of the mapped variable. The section is expressed in OV byte
    /// offsets; a section outside the mapped part still produces the
    /// transfer the program asked for — and the tools' attention.
    fn perform_update_section(
        &self,
        device: DeviceId,
        buffer: BufferId,
        kind: TransferKind,
        start_bytes: u64,
        len_bytes: u64,
        task: TaskId,
    ) {
        if device.is_host() || len_bytes == 0 {
            return;
        }
        let Some(table) = self.present_table(device) else {
            self.note_error(RuntimeError::InvalidDevice { device });
            return;
        };
        let entry = table.lock().get(buffer);
        let Some(entry) = entry else { return };
        let info = self.buffer_info(buffer);
        let ov_addr = info.ov_base + start_bytes;
        let cv_addr = entry.cv_addr(start_bytes);
        let staged = self.cfg.staged_update_transfers;
        self.do_transfer(device, buffer, kind, ov_addr, cv_addr, len_bytes, task, staged);
    }

    /// Perform a data transfer: actual word copy plus the tool event.
    #[allow(clippy::too_many_arguments)]
    fn do_transfer(
        &self,
        device: DeviceId,
        buffer: BufferId,
        kind: TransferKind,
        ov_addr: u64,
        cv_base: u64,
        len: u64,
        task: TaskId,
        staged: bool,
    ) {
        let unified = self.cfg.unified_memory;
        let (src_device, src_addr, dst_device, dst_addr) = match kind {
            TransferKind::ToDevice => (DeviceId::HOST, ov_addr, device, cv_base),
            TransferKind::FromDevice => (device, cv_base, DeviceId::HOST, ov_addr),
            TransferKind::DeviceToDevice => {
                // Internal invariant: device-to-device copies go through
                // Runtime::device_memcpy, never this path.
                debug_assert!(false, "device-to-device copies go through Runtime::device_memcpy");
                return;
            }
        };
        if !unified {
            // Transfer faults are always transient: retry with backoff,
            // and after MAX_RETRIES complete via the degraded word-wise
            // path. A transfer never fails permanently, so mapped data is
            // never silently stale and detectors see no phantom copies.
            let site = if kind == TransferKind::ToDevice {
                FaultSite::TransferToDevice
            } else {
                FaultSite::TransferFromDevice
            };
            let mut attempt = 0u32;
            loop {
                let outcome = if self.faults.active() && attempt < MAX_RETRIES {
                    let o = self.faults.decide(site);
                    self.metrics.note_fault(site, &o);
                    o
                } else {
                    FaultOutcome::None
                };
                match outcome {
                    FaultOutcome::Transient => {
                        self.note_error(RuntimeError::TransferIncomplete {
                            buffer,
                            kind,
                            requested: len,
                            copied: 0,
                            attempt: attempt + 1,
                        });
                        FaultPlan::backoff(attempt);
                        attempt += 1;
                    }
                    FaultOutcome::Partial { frac256 } => {
                        // The DMA moved a prefix before faulting: perform
                        // that prefix for real and tell the tools the
                        // truth about it, so per-word VSM states track
                        // exactly the bytes that arrived.
                        let k = (len.div_ceil(8) * frac256 as u64) / 256 * 8;
                        if k > 0 {
                            self.transfer_copy(false, src_device, src_addr, dst_device, dst_addr, k);
                            let ev = TransferEvent {
                                buffer,
                                kind,
                                src_device,
                                src_addr,
                                dst_device,
                                dst_addr,
                                len: k,
                                task,
                                staged: false,
                                unified,
                            };
                            for t in self.tools.read().iter() {
                                t.on_transfer(&ev);
                            }
                        }
                        self.note_error(RuntimeError::TransferIncomplete {
                            buffer,
                            kind,
                            requested: len,
                            copied: k,
                            attempt: attempt + 1,
                        });
                        FaultPlan::backoff(attempt);
                        attempt += 1;
                    }
                    _ => {
                        self.transfer_copy(staged, src_device, src_addr, dst_device, dst_addr, len);
                        break;
                    }
                }
            }
        }
        self.metrics.transfers.inc();
        self.metrics.transfer_bytes.add(len);
        let ev = TransferEvent {
            buffer,
            kind,
            src_device,
            src_addr,
            dst_device,
            dst_addr,
            len,
            task,
            staged,
            unified,
        };
        for t in self.tools.read().iter() {
            t.on_transfer(&ev);
        }
        if self.cfg.auto_coherence && !unified {
            // Map-clause and update transfers refresh the destination copy.
            let mut coh = self.coherence.lock();
            let e = coh.entry(buffer).or_insert(0b1);
            match kind {
                TransferKind::ToDevice if dst_device.0 <= 7 => *e |= 1 << dst_device.0,
                TransferKind::FromDevice => *e |= 0b1,
                _ => {}
            }
        }
    }

    /// The physical word copy of a transfer, optionally staged through a
    /// runtime-internal bounce buffer (as real runtimes stage
    /// non-contiguous updates; one extra copy, and shadow provenance is
    /// lost for allocator-interception based tools).
    fn transfer_copy(
        &self,
        staged: bool,
        src_device: DeviceId,
        src_addr: u64,
        dst_device: DeviceId,
        dst_addr: u64,
        len: u64,
    ) {
        if staged {
            let _guard = self.staging_lock.lock();
            let staging = self.ensure_staging(len);
            mem::copy(self.space(src_device), src_addr, &self.spaces[0], staging, len);
            mem::copy(&self.spaces[0], staging, self.space(dst_device), dst_addr, len);
        } else {
            mem::copy(self.space(src_device), src_addr, self.space(dst_device), dst_addr, len);
        }
    }

    /// `auto_coherence`: make the host copy fresh before a host read by
    /// pulling from a device holding the last write.
    fn coherence_before_host_read(&self, buffer: BufferId) {
        if !self.cfg.auto_coherence || self.cfg.unified_memory {
            return;
        }
        let fresh = *self.coherence.lock().entry(buffer).or_insert(0b1);
        if fresh & 0b1 != 0 {
            return;
        }
        // Pull from the lowest fresh device.
        let d = fresh.trailing_zeros() as u16;
        if self.perform_update(DeviceId(d), buffer, TransferKind::FromDevice, TaskId::HOST) {
            *self.coherence.lock().entry(buffer).or_insert(0b1) |= 0b1;
        }
    }

    /// `auto_coherence`: record a host write (every device copy is stale).
    fn coherence_host_write(&self, buffer: BufferId) {
        if !self.cfg.auto_coherence || self.cfg.unified_memory {
            return;
        }
        self.coherence.lock().insert(buffer, 0b1);
    }

    /// `auto_coherence`: X10CUDA-style launch-time repair — before a
    /// kernel body runs, make every mapped variable's CV fresh on the
    /// executing device. Running on the kernel task (before the team
    /// forks) keeps the inserted transfers happens-before every kernel
    /// access.
    fn coherence_before_kernel(
        &self,
        env: &HashMap<BufferId, PresentEntry>,
        device: DeviceId,
        task: TaskId,
    ) {
        if !self.cfg.auto_coherence || self.cfg.unified_memory || device.is_host() || device.0 > 7 {
            return;
        }
        let bit = 1u8 << device.0;
        for buffer in env.keys() {
            let fresh = *self.coherence.lock().entry(*buffer).or_insert(0b1);
            if fresh & bit != 0 {
                continue;
            }
            let mut gained = 0u8;
            if fresh & 0b1 == 0 {
                // Host stale too: hop through the host from a fresh device.
                let d = fresh.trailing_zeros() as u16;
                if self.perform_update(DeviceId(d), *buffer, TransferKind::FromDevice, task) {
                    gained |= 0b1;
                }
            } else {
                gained |= 0b1;
            }
            if gained & 0b1 != 0 && self.perform_update(device, *buffer, TransferKind::ToDevice, task) {
                gained |= bit;
            }
            *self.coherence.lock().entry(*buffer).or_insert(0b1) |= gained;
        }
    }

    /// `auto_coherence`: record a kernel write.
    fn coherence_device_write(&self, buffer: BufferId, device: DeviceId) {
        if !self.cfg.auto_coherence || self.cfg.unified_memory || device.is_host() || device.0 > 7 {
            return;
        }
        self.coherence.lock().insert(buffer, 1u8 << device.0);
    }

    /// In unified-memory mode, OpenMP's implicit cross-device flushes at
    /// target-region boundaries (§III-B of the paper) synchronise the
    /// host's and device's temporary views of every mapped variable. We
    /// surface them as zero-copy `unified` transfer events so tools can
    /// model the coherence point.
    fn emit_unified_flushes(
        &self,
        device: DeviceId,
        env: &HashMap<BufferId, PresentEntry>,
        task: TaskId,
        kind: TransferKind,
    ) {
        if !self.cfg.unified_memory || device.is_host() {
            return;
        }
        for (buffer, entry) in env.iter() {
            let info = self.buffer_info(*buffer);
            let addr = info.ov_base + entry.offset_bytes;
            let ev = TransferEvent {
                buffer: *buffer,
                kind,
                src_device: if kind == TransferKind::ToDevice { DeviceId::HOST } else { device },
                src_addr: addr,
                dst_device: if kind == TransferKind::ToDevice { device } else { DeviceId::HOST },
                dst_addr: addr,
                len: entry.len_bytes,
                task,
                staged: false,
                unified: true,
            };
            for t in self.tools.read().iter() {
                t.on_transfer(&ev);
            }
        }
    }

    /// Lazily grown staging area in host memory (never registered as a
    /// buffer — it is runtime-internal).
    fn ensure_staging(&self, len: u64) -> u64 {
        let mut slot = self.staging_base.lock();
        match *slot {
            Some((base, cap)) if cap >= len => base,
            _ => {
                let base = self.spaces[0].alloc(len.max(4096));
                *slot = Some((base, len.max(4096)));
                base
            }
        }
    }

    /// Snapshot the device's data environment for a kernel.
    fn kernel_env(&self, device: DeviceId) -> HashMap<BufferId, PresentEntry> {
        let Some(table) = self.present_table(device) else {
            return HashMap::new();
        };
        let table = table.lock();
        let mut env = HashMap::new();
        for info in self.buffers.read().iter() {
            if let Some(e) = table.get(info.id) {
                env.insert(info.id, e);
            }
        }
        env
    }

    fn resolve_depends(&self, task: TaskId, record: &Arc<TaskRecord>, depends: &[Depend]) -> Vec<(TaskId, Arc<TaskRecord>)> {
        let mut waits = Vec::new();
        if depends.is_empty() {
            return waits;
        }
        let mut chains = self.deps.lock();
        for d in depends {
            let chain = chains.entry(d.buffer).or_default();
            match d.kind {
                DependKind::In => {
                    if let Some((t, r)) = &chain.last_out {
                        waits.push((*t, r.clone()));
                    }
                    chain.last_ins.push((task, record.clone()));
                }
                DependKind::Out => {
                    if let Some((t, r)) = &chain.last_out {
                        waits.push((*t, r.clone()));
                    }
                    for (t, r) in chain.last_ins.drain(..) {
                        waits.push((t, r));
                    }
                    chain.last_out = Some((task, record.clone()));
                }
            }
        }
        waits
    }
}

// ----------------------------------------------------------------------
// Builders
// ----------------------------------------------------------------------

/// Builder for a `target` construct.
pub struct TargetBuilder {
    rt: Runtime,
    device: DeviceId,
    maps: Vec<Map>,
    depends: Vec<Depend>,
    nowait: bool,
}

impl TargetBuilder {
    /// Offload to a specific device (`DeviceId::HOST` runs on the host,
    /// like `omp_get_initial_device()`).
    pub fn on_device(mut self, device: DeviceId) -> Self {
        self.device = device;
        self
    }

    /// Add a `map` clause.
    pub fn map(mut self, m: Map) -> Self {
        self.maps.push(m);
        self
    }

    /// Add a `depend` clause.
    pub fn depend(mut self, d: Depend) -> Self {
        self.depends.push(d);
        self
    }

    /// Make the region asynchronous (`nowait`).
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// Launch the region. Synchronous regions return after completion;
    /// `nowait` regions return immediately with a waitable handle.
    pub fn run<F>(self, body: F) -> TaskHandle
    where
        F: FnOnce(&KernelCtx) + Send + 'static,
    {
        let rt = self.rt.inner.clone();
        let task = rt.new_task();
        rt.emit_sync(SyncEvent::TaskCreate { parent: TaskId::HOST, child: task });
        let record = Arc::new(TaskRecord::new());
        let waits = rt.resolve_depends(task, &record, &self.depends);
        for (t, _) in &waits {
            rt.emit_sync(SyncEvent::TaskJoin { waiter: task, joined: *t });
        }
        let device = self.device;
        let nowait = self.nowait;
        let maps = self.maps;
        let rt2 = rt.clone();
        let record2 = record.clone();
        let team_size = rt.cfg.team_size;
        let work = move || {
            for (_, r) in &waits {
                r.wait();
            }
            // Unknown device ids degrade to host execution up front.
            let requested = if rt2.device_known(device) {
                device
            } else {
                rt2.note_error(RuntimeError::InvalidDevice { device });
                DeviceId::HOST
            };
            // The launch decision precedes everything tools can observe
            // about the region, so a permanent launch failure moves the
            // whole construct — begin event, mappings, accesses — to the
            // host and the event stream stays truthful.
            let mut exec =
                if rt2.fault_kernel_launch(requested, task) { requested } else { DeviceId::HOST };
            let target_span =
                rt2.metrics.reg.span_with(rt2.metrics.sp_target, &rt2.metrics.target);
            rt2.emit_construct(ConstructEvent::TargetBegin { task, device: exec, nowait });
            let mut mapped = false;
            if !exec.is_host() {
                rt2.ensure_globals(exec, task);
                match rt2.perform_entry_maps(exec, &maps, task) {
                    Ok(()) => mapped = true,
                    // Permanent device OOM: the entry maps were rolled
                    // back (present table and detector state restored);
                    // run the body on the host instead.
                    Err(_) => exec = DeviceId::HOST,
                }
            }
            let fallback = exec.is_host() && !requested.is_host();
            if fallback {
                // Pull current device values of any still-present mapped
                // buffers (e.g. from an enclosing data region) so the
                // host body observes what the kernel would have. The
                // transfers are real and emitted, keeping VSM truthful;
                // no-ops when nothing is present.
                for m in &maps {
                    rt2.perform_update(requested, m.buffer, TransferKind::FromDevice, task);
                }
            }
            let env = Arc::new(rt2.kernel_env(exec));
            rt2.coherence_before_kernel(&env, exec, task);
            rt2.emit_unified_flushes(exec, &env, task, TransferKind::ToDevice);
            let ctx = KernelCtx { rt: rt2.clone(), device: exec, task, env: env.clone(), team_size };
            body(&ctx);
            rt2.emit_unified_flushes(exec, &env, task, TransferKind::FromDevice);
            if fallback {
                // Push host results back into still-present CVs so later
                // device consumers observe them.
                for m in &maps {
                    rt2.perform_update(requested, m.buffer, TransferKind::ToDevice, task);
                }
            }
            if mapped {
                rt2.perform_exit_maps(exec, &maps, task);
            }
            rt2.emit_construct(ConstructEvent::TargetEnd { task });
            drop(target_span);
            rt2.emit_sync(SyncEvent::TaskEnd { task });
            if nowait {
                let outcome = rt2.faults.decide(FaultSite::NowaitComplete);
                if rt2.faults.active() {
                    rt2.metrics.note_fault(FaultSite::NowaitComplete, &outcome);
                }
                if let FaultOutcome::Delay { micros } = outcome {
                    // Injected late completion: the work is done but the
                    // latch fires late, widening nowait's race window.
                    std::thread::sleep(std::time::Duration::from_micros(micros));
                }
            }
            record2.complete();
        };
        if nowait && !rt.cfg.serialize_nowait {
            rt.pending.lock().push((task, record.clone()));
            std::thread::spawn(work);
        } else if nowait {
            // Theorem-1 mode: serialized execution, asynchronous HB shape.
            rt.pending.lock().push((task, record.clone()));
            work();
        } else {
            work();
            rt.emit_sync(SyncEvent::TaskJoin { waiter: TaskId::HOST, joined: task });
        }
        TaskHandle { rt: Arc::downgrade(&rt), task, record }
    }
}

/// Builder for a structured `target data` region.
pub struct TargetDataBuilder {
    rt: Runtime,
    device: DeviceId,
    maps: Vec<Map>,
}

impl TargetDataBuilder {
    /// Target a specific device.
    pub fn on_device(mut self, device: DeviceId) -> Self {
        self.device = device;
        self
    }

    /// Add a `map` clause.
    pub fn map(mut self, m: Map) -> Self {
        self.maps.push(m);
        self
    }

    /// Run the enclosed region. Entry maps execute before the closure,
    /// exit maps after — on the host task, so exit transfers can race
    /// with still-running `nowait` kernels (Fig. 2's hazard).
    pub fn scope<R>(self, f: impl FnOnce(&Runtime) -> R) -> R {
        // A failed (rolled-back) entry leaves nothing present, so the
        // exit maps below degrade to Table I no-ops on their own.
        let _ = self.rt.inner.perform_entry_maps(self.device, &self.maps, TaskId::HOST);
        let out = f(&self.rt);
        self.rt.inner.perform_exit_maps(self.device, &self.maps, TaskId::HOST);
        out
    }
}

/// Handle to a launched target region.
pub struct TaskHandle {
    rt: Weak<Rt>,
    task: TaskId,
    record: Arc<TaskRecord>,
}

impl TaskHandle {
    /// The region's task id.
    pub fn id(&self) -> TaskId {
        self.task
    }

    /// Wait for the region (like a `taskwait` scoped to this task);
    /// establishes the host-after-task happens-before edge.
    pub fn wait(&self) {
        self.record.wait();
        if let Some(rt) = self.rt.upgrade() {
            rt.emit_sync(SyncEvent::TaskJoin { waiter: TaskId::HOST, joined: self.task });
            rt.pending.lock().retain(|(t, _)| *t != self.task);
        }
    }
}

// ----------------------------------------------------------------------
// Kernel context
// ----------------------------------------------------------------------

/// Execution context handed to a target-region body.
pub struct KernelCtx {
    rt: Arc<Rt>,
    device: DeviceId,
    task: TaskId,
    env: Arc<HashMap<BufferId, PresentEntry>>,
    team_size: usize,
}

impl KernelCtx {
    /// The executing device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// This kernel's (or team thread's) task id.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Configured team size.
    pub fn team_size(&self) -> usize {
        self.team_size
    }

    #[inline]
    fn resolve<T: Scalar>(&self, buf: &Buffer<T>, idx: usize) -> (u64, bool) {
        let byte_off = (idx * T::SIZE) as u64;
        if self.device.is_host() {
            return (self.rt.buffer_info(buf.id()).ov_base + byte_off, true);
        }
        match self.env.get(&buf.id()) {
            Some(e) => (e.cv_addr(byte_off), true),
            None => {
                // Missing map clause: synthesize an address in the
                // never-allocated region of this device's window.
                let low = self.rt.buffer_info(buf.id()).ov_base & 0xFFFF_FFFF;
                (device_base(self.device) + UNMAPPED_REGION_OFFSET + low + byte_off, false)
            }
        }
    }

    #[inline]
    fn space_for(&self, addr: u64) -> &AddressSpace {
        &self.rt.spaces[device_of(addr).0 as usize]
    }

    /// Tracked kernel read of element `idx` of a mapped buffer. Reads
    /// outside the mapped section (or of unmapped buffers) are executed —
    /// they return whatever neighbouring device memory holds, like real
    /// hardware — and are observable by tools.
    #[track_caller]
    #[inline]
    pub fn read<T: Scalar>(&self, buf: &Buffer<T>, idx: usize) -> T {
        self.read_on(self.task, buf, idx, SrcLoc::caller())
    }

    /// Tracked kernel write.
    #[track_caller]
    #[inline]
    pub fn write<T: Scalar>(&self, buf: &Buffer<T>, idx: usize, value: T) {
        self.write_on(self.task, buf, idx, value, SrcLoc::caller())
    }

    fn read_on<T: Scalar>(
        &self,
        task: TaskId,
        buf: &Buffer<T>,
        idx: usize,
        loc: SrcLoc,
    ) -> T {
        let (addr, mapped) = self.resolve(buf, idx);
        self.rt.emit_access(AccessEvent {
            device: self.device,
            addr,
            size: T::SIZE,
            is_write: false,
            task,
            buffer: Some(buf.id()),
            mapped,
            atomic: false,
            loc,
        });
        T::from_bits(self.space_for(addr).load(addr, T::SIZE))
    }

    fn write_on<T: Scalar>(
        &self,
        task: TaskId,
        buf: &Buffer<T>,
        idx: usize,
        value: T,
        loc: SrcLoc,
    ) {
        self.rt.coherence_device_write(buf.id(), self.device);
        let (addr, mapped) = self.resolve(buf, idx);
        self.rt.emit_access(AccessEvent {
            device: self.device,
            addr,
            size: T::SIZE,
            is_write: true,
            task,
            buffer: Some(buf.id()),
            mapped,
            atomic: false,
            loc,
        });
        self.space_for(addr).store(addr, T::SIZE, value.to_bits());
    }

    /// `omp critical`-style named critical section: mutual exclusion plus
    /// the acquire/release happens-before edges race detectors need.
    /// Sections with the same name exclude each other program-wide.
    pub fn critical<R>(&self, name: &str, f: impl FnOnce(&KernelCtx) -> R) -> R {
        let lock_id = {
            // FNV-1a over the name: stable lock identity.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h = (h ^ *b as u64).wrapping_mul(0x100_0000_01b3);
            }
            h
        };
        let mutex = {
            let mut c = self.rt.criticals.lock();
            c.entry(lock_id).or_insert_with(|| Arc::new(Mutex::new(()))).clone()
        };
        let guard = mutex.lock();
        self.rt.emit_sync(SyncEvent::Acquire { task: self.task, lock: lock_id });
        let out = f(self);
        self.rt.emit_sync(SyncEvent::Release { task: self.task, lock: lock_id });
        drop(guard);
        out
    }

    /// `omp atomic`-style read-modify-write of element `idx`: the update
    /// is applied atomically on the backing storage, the VSM sees a read
    /// plus a write, and race detection treats it as synchronised.
    /// Returns the value *after* the update.
    #[track_caller]
    pub fn atomic_update<T: Scalar>(&self, buf: &Buffer<T>, idx: usize, f: impl Fn(T) -> T) -> T {
        let loc = SrcLoc::caller();
        let (addr, mapped) = self.resolve(buf, idx);
        for is_write in [false, true] {
            self.rt.emit_access(AccessEvent {
                device: self.device,
                addr,
                size: T::SIZE,
                is_write,
                task: self.task,
                buffer: Some(buf.id()),
                mapped,
                atomic: true,
                loc,
            });
        }
        let space = self.space_for(addr);
        if T::SIZE == 8 {
            let prev = space.fetch_update_word(addr, |bits| f(T::from_bits(bits)).to_bits());
            f(T::from_bits(prev))
        } else {
            // Narrow scalars have no atomic RMW in this memory model;
            // record the misuse and apply the update non-atomically (the
            // access events above already declared it atomic, so race
            // detectors stay quiet — mirroring a relaxed hardware CAS
            // emulation).
            self.rt.note_error(RuntimeError::UnsupportedAtomicSize { size: T::SIZE });
            let prev = T::from_bits(space.load(addr, T::SIZE));
            let next = f(prev);
            space.store(addr, T::SIZE, next.to_bits());
            next
        }
    }

    /// `omp atomic` add.
    #[track_caller]
    pub fn atomic_add(&self, buf: &Buffer<i64>, idx: usize, delta: i64) -> i64 {
        self.atomic_fetch_add_i64(buf, idx, delta)
    }

    fn atomic_fetch_add_i64(&self, buf: &Buffer<i64>, idx: usize, delta: i64) -> i64 {
        let loc = SrcLoc::caller();
        let (addr, mapped) = self.resolve(buf, idx);
        for is_write in [false, true] {
            self.rt.emit_access(AccessEvent {
                device: self.device,
                addr,
                size: 8,
                is_write,
                task: self.task,
                buffer: Some(buf.id()),
                mapped,
                atomic: true,
                loc,
            });
        }
        self.space_for(addr).fetch_add_word(addr, delta as u64) as i64 + delta
    }

    /// Sequential loop on the kernel task (a `teams distribute` with one
    /// thread).
    pub fn for_each(&self, range: std::ops::Range<usize>, f: impl Fn(&KernelCtx, usize)) {
        for i in range {
            f(self, i);
        }
    }

    /// Parallel loop over the team (`teams distribute parallel for`).
    /// Iterations are divided into contiguous chunks, one per team thread;
    /// each team thread is its own task (forked/joined around the loop),
    /// so intra-kernel races are visible to happens-before analysis.
    pub fn par_for<F>(&self, range: std::ops::Range<usize>, f: F)
    where
        F: Fn(&KernelCtx, usize) + Send + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        let team = self.team_size.min(n).max(1);
        let chunk = n.div_ceil(team);
        let mut children = Vec::with_capacity(team);
        for _ in 0..team {
            let child = self.rt.new_task();
            self.rt.emit_sync(SyncEvent::TaskCreate { parent: self.task, child });
            children.push(child);
        }
        std::thread::scope(|s| {
            for (t, &child) in children.iter().enumerate() {
                let lo = range.start + t * chunk;
                let hi = (lo + chunk).min(range.end);
                let ctx = KernelCtx {
                    rt: self.rt.clone(),
                    device: self.device,
                    task: child,
                    env: self.env.clone(),
                    team_size: self.team_size,
                };
                let f = &f;
                s.spawn(move || {
                    for i in lo..hi {
                        f(&ctx, i);
                    }
                    ctx.rt.emit_sync(SyncEvent::TaskEnd { task: child });
                });
            }
        });
        for child in children {
            self.rt.emit_sync(SyncEvent::TaskJoin { waiter: self.task, joined: child });
        }
    }

    /// A league of teams (`teams distribute`): spawn `num_teams` team
    /// tasks, each receiving its own context and team number. Inside a
    /// team, `par_for` gives the `parallel for` level — the full
    /// `target teams distribute parallel for` nesting of Fig. 1.
    pub fn teams<F>(&self, num_teams: usize, f: F)
    where
        F: Fn(&KernelCtx, usize) + Send + Sync,
    {
        if num_teams == 0 {
            return;
        }
        let mut children = Vec::with_capacity(num_teams);
        for _ in 0..num_teams {
            let child = self.rt.new_task();
            self.rt.emit_sync(SyncEvent::TaskCreate { parent: self.task, child });
            children.push(child);
        }
        std::thread::scope(|s| {
            for (team, &child) in children.iter().enumerate() {
                let ctx = KernelCtx {
                    rt: self.rt.clone(),
                    device: self.device,
                    task: child,
                    env: self.env.clone(),
                    team_size: self.team_size,
                };
                let f = &f;
                s.spawn(move || {
                    f(&ctx, team);
                    ctx.rt.emit_sync(SyncEvent::TaskEnd { task: child });
                });
            }
        });
        for child in children {
            self.rt.emit_sync(SyncEvent::TaskJoin { waiter: self.task, joined: child });
        }
    }

    /// Parallel reduction over the team: `map` each index, `fold` within a
    /// thread, combine partials on the kernel task.
    pub fn par_reduce<A, M, R>(&self, range: std::ops::Range<usize>, init: A, map: M, reduce: R) -> A
    where
        A: Send + Clone,
        M: Fn(&KernelCtx, usize) -> A + Send + Sync,
        R: Fn(A, A) -> A + Send + Sync,
    {
        let partials: Mutex<Vec<A>> = Mutex::new(Vec::new());
        self.par_for_partials(range, &init, &map, &reduce, &partials);
        let mut acc = init;
        for p in partials.into_inner() {
            acc = reduce(acc, p);
        }
        acc
    }

    fn par_for_partials<A, M, R>(
        &self,
        range: std::ops::Range<usize>,
        init: &A,
        map: &M,
        reduce: &R,
        partials: &Mutex<Vec<A>>,
    ) where
        A: Send + Clone,
        M: Fn(&KernelCtx, usize) -> A + Send + Sync,
        R: Fn(A, A) -> A + Send + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        let team = self.team_size.min(n).max(1);
        let chunk = n.div_ceil(team);
        let mut children = Vec::with_capacity(team);
        for _ in 0..team {
            let child = self.rt.new_task();
            self.rt.emit_sync(SyncEvent::TaskCreate { parent: self.task, child });
            children.push(child);
        }
        std::thread::scope(|s| {
            for (t, &child) in children.iter().enumerate() {
                let lo = range.start + t * chunk;
                let hi = (lo + chunk).min(range.end);
                let ctx = KernelCtx {
                    rt: self.rt.clone(),
                    device: self.device,
                    task: child,
                    env: self.env.clone(),
                    team_size: self.team_size,
                };
                let init = init.clone();
                s.spawn(move || {
                    let mut acc = init;
                    for i in lo..hi {
                        acc = reduce(acc, map(&ctx, i));
                    }
                    partials.lock().push(acc);
                    ctx.rt.emit_sync(SyncEvent::TaskEnd { task: child });
                });
            }
        });
        for child in children {
            self.rt.emit_sync(SyncEvent::TaskJoin { waiter: self.task, joined: child });
        }
    }
}
