//! Bug-report vocabulary shared by every tool.
//!
//! Each detector produces [`Report`]s; the kinds cover everything the five
//! evaluated tools can emit: ARBALEST's data mapping issues (UUM / USD /
//! mapping-related buffer overflow), Archer-style data races, and the
//! memory-error kinds of the memcheck/ASan/MSan models.

use crate::addr::DeviceId;
use crate::events::SrcLoc;

/// What kind of anomaly a report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReportKind {
    /// Data mapping issue manifesting as a use of uninitialized memory
    /// (neither OV nor CV ever initialised on the read path).
    MappingUum,
    /// Data mapping issue manifesting as a use of stale data (the other
    /// copy holds a newer value the read cannot observe).
    MappingUsd,
    /// Access outside the mapped corresponding-variable interval
    /// (ARBALEST's §IV-D extension).
    MappingOverflow,
    /// Happens-before data race.
    DataRace,
    /// Read of a value never initialised (MemorySanitizer / memcheck
    /// definedness machinery).
    UninitRead,
    /// Access outside any live heap block (memcheck addressability,
    /// ASan red zones).
    HeapOverflow,
    /// Access to a freed block.
    UseAfterFree,
}

impl ReportKind {
    /// Every kind, in declaration order (stable: the wire protocol and
    /// server counters index by this).
    pub const ALL: [ReportKind; 7] = [
        ReportKind::MappingUum,
        ReportKind::MappingUsd,
        ReportKind::MappingOverflow,
        ReportKind::DataRace,
        ReportKind::UninitRead,
        ReportKind::HeapOverflow,
        ReportKind::UseAfterFree,
    ];

    /// Inverse of [`ReportKind::label`], for parsing serialized reports.
    pub fn from_label(label: &str) -> Option<ReportKind> {
        ReportKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Short stable label used in harness tables.
    pub fn label(self) -> &'static str {
        match self {
            ReportKind::MappingUum => "mapping-issue(UUM)",
            ReportKind::MappingUsd => "mapping-issue(USD)",
            ReportKind::MappingOverflow => "mapping-issue(BO)",
            ReportKind::DataRace => "data-race",
            ReportKind::UninitRead => "uninit-read",
            ReportKind::HeapOverflow => "heap-overflow",
            ReportKind::UseAfterFree => "use-after-free",
        }
    }

    /// Whether this kind counts as detecting a *data mapping issue* whose
    /// observable effect is the given DRACC effect class; used when scoring
    /// Table III. A tool gets credit if it flags the manifested anomaly,
    /// even without knowing about data mappings (the paper credits e.g.
    /// MSan's `UninitRead` for UUM benchmarks).
    pub fn credits_effect(self, effect: crate::report::Effect) -> bool {
        use Effect::*;
        match effect {
            Uum => matches!(self, ReportKind::MappingUum | ReportKind::UninitRead),
            Usd => matches!(self, ReportKind::MappingUsd),
            Bo => matches!(
                self,
                ReportKind::MappingOverflow | ReportKind::HeapOverflow | ReportKind::UseAfterFree
            ),
            Race => matches!(self, ReportKind::DataRace),
        }
    }
}

/// Ground-truth observable effect of a seeded bug (column 2 of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Effect {
    /// Use of uninitialized memory.
    Uum,
    /// Use of stale data.
    Usd,
    /// Buffer overflow.
    Bo,
    /// Data race.
    Race,
}

impl std::fmt::Display for Effect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Effect::Uum => write!(f, "UUM"),
            Effect::Usd => write!(f, "USD"),
            Effect::Bo => write!(f, "BO"),
            Effect::Race => write!(f, "Race"),
        }
    }
}

/// Details of the conflicting previous access, when known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrevAccess {
    /// Thread-slot id of the previous access (shadow word `TID`).
    pub tid: u16,
    /// Scalar clock of the previous access.
    pub clock: u64,
    /// True if the previous access was a write.
    pub is_write: bool,
}

/// One edge of the detector's Validity State Machine walk, recorded when
/// provenance capture is enabled.
///
/// A chain of these attached to a [`Report`] reconstructs *why* the
/// detector reached the faulting state: which operations moved the
/// buffer's validity mask, in order, and where each came from in the
/// source. The vocabulary of `op`/`from`/`to` matches the detector's
/// stable VSM label sets (`read_host`, `write_target`, ... / `invalid`,
/// `host`, `target`, `consistent`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceStep {
    /// VSM operation label that took this edge.
    pub op: String,
    /// Validity state name before the edge.
    pub from: String,
    /// Validity state name after the edge.
    pub to: String,
    /// Source location of the operation, when captured.
    pub loc: Option<SrcLoc>,
    /// Thread-slot id that performed the operation.
    pub tid: u16,
    /// Detector logical clock at the time of the operation.
    pub clock: u64,
}

impl ProvenanceStep {
    /// One-line human rendering, used by `arbalest explain`.
    pub fn describe(&self) -> String {
        let at = match self.loc {
            Some(l) => format!(" at {}:{}", l.file, l.line),
            None => String::new(),
        };
        format!(
            "{}{} by T{} @clock {}: {} -> {}",
            self.op, at, self.tid, self.clock, self.from, self.to
        )
    }
}

/// One detector finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Emitting tool's name ("arbalest", "memcheck", ...).
    pub tool: &'static str,
    /// Anomaly class.
    pub kind: ReportKind,
    /// Human-readable one-line description.
    pub message: String,
    /// Name of the involved buffer, when attributable.
    pub buffer: Option<String>,
    /// Device on which the offending access executed.
    pub device: DeviceId,
    /// Logical address of the offending access.
    pub addr: u64,
    /// Access size in bytes.
    pub size: usize,
    /// Source location of the offending access, when captured.
    pub loc: Option<SrcLoc>,
    /// Conflicting prior access, when the tool records one.
    pub prev: Option<PrevAccess>,
    /// A suggested repair, in the spirit of §III-C.
    pub suggested_fix: Option<String>,
    /// Causal VSM edge chain that led to this finding. Empty unless the
    /// detector ran with provenance capture enabled (off by default);
    /// deliberately excluded from [`Report::render`] so default-config
    /// textual output is unchanged by the feature.
    pub provenance: Vec<ProvenanceStep>,
}

impl Report {
    /// Deduplication key: one report per (kind, buffer, source line).
    pub fn dedup_key(&self) -> (ReportKind, Option<String>, Option<(String, u32)>) {
        (
            self.kind,
            self.buffer.clone(),
            self.loc.map(|l| (l.file.to_string(), l.line)),
        )
    }

    /// Render an Archer/TSan-flavoured textual report (Fig. 7 style).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("==================\n");
        out.push_str(&format!(
            "WARNING: {}: {} (pid=simulated)\n",
            tool_banner(self.tool),
            self.kind.label()
        ));
        out.push_str(&format!(
            "  {} of size {} at {:#x} on {}\n",
            if self.prev.map(|p| p.is_write).unwrap_or(false) { "Read" } else { "Access" },
            self.size,
            self.addr,
            self.device,
        ));
        if let Some(loc) = self.loc {
            out.push_str(&format!("    #0 {}:{}:{}\n", loc.file, loc.line, loc.column));
        }
        if let Some(buf) = &self.buffer {
            out.push_str(&format!("  Location is mapped variable '{}'\n", buf));
        }
        if let Some(prev) = self.prev {
            out.push_str(&format!(
                "  Previous {} by thread T{} at clock {}\n",
                if prev.is_write { "write" } else { "read" },
                prev.tid,
                prev.clock
            ));
        }
        out.push_str(&format!("  {}\n", self.message));
        if let Some(fix) = &self.suggested_fix {
            out.push_str(&format!("  Suggested fix: {}\n", fix));
        }
        out.push_str(&format!("SUMMARY: {}: {}\n", tool_banner(self.tool), self.kind.label()));
        out.push_str("==================\n");
        out
    }
}

/// Aggregate a report list into per-kind counts (stable order).
pub fn summarize(reports: &[Report]) -> Vec<(ReportKind, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for r in reports {
        *counts.entry(r.kind).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

fn tool_banner(tool: &str) -> &'static str {
    match tool {
        "arbalest" | "archer" => "ThreadSanitizer",
        "arbalest-static" => "ArbalestStatic",
        "asan" => "AddressSanitizer",
        "msan" => "MemorySanitizer",
        "memcheck" => "Memcheck",
        _ => "Sanitizer",
    }
}

/// The shared `suggested_fix` vocabulary (§III-C's repair hints).
///
/// Both the dynamic detector (`arbalest-core`) and the static analyzer
/// (`arbalest-static`) draw their hints from here, so the static-vs-
/// dynamic comparison harness can check that a `Must` diagnostic and the
/// dynamic report it predicts agree on the repair — not just on the kind.
pub mod hints {
    use super::ReportKind;
    use crate::addr::DeviceId;

    /// UUM read on a device: the CV was created without a copy-in.
    pub const UUM_DEVICE: &str = "the corresponding variable was allocated but never initialized; use map-type to/tofrom or target update to";
    /// UUM read on the host: the OV was never written nor copied back.
    pub const UUM_HOST: &str = "the corresponding variable was never copied back; use map-type from/tofrom or target update from";
    /// USD read on the host: the device holds the fresh value.
    pub const USD_HOST: &str = "the last write happened on the device; use map-type from/tofrom or target update from before reading on the host";
    /// USD read on a device: the host holds the fresh value.
    pub const USD_DEVICE: &str = "the last write happened on the host; use map-type to/tofrom or target update to before reading on the device";
    /// Kernel access with no present-table entry at all.
    pub const ADD_MAP: &str = "add a map clause (or enclosing target data region) for the variable";
    /// Kernel access outside every mapped CV.
    pub const CHECK_BOUNDS: &str = "check the loop bounds against the mapped array section";
    /// Kernel access landing in a different variable's CV.
    pub const CHECK_SECTION: &str = "check the mapped array section's length/offset";
    /// Unordered concurrent accesses.
    pub const ORDER_ACCESSES: &str = "order the conflicting accesses with taskwait, depend, or a synchronous target";
    /// A `nowait` kernel racing a region-end transfer.
    pub const SYNC_BEFORE_TRANSFER: &str = "synchronize the nowait target region before the region end's implicit transfer";
    /// Uninitialised read outside any mapping context (MSan-class).
    pub const INIT_BEFORE_READ: &str = "initialize the variable before its first read";
    /// Out-of-bounds heap access (ASan/memcheck-class).
    pub const CHECK_ALLOCATION: &str = "check the access offset against the allocation's extent";
    /// Access to freed memory.
    pub const EXTEND_LIFETIME: &str = "keep the allocation alive until its last access";

    /// Section-overflow hint, parameterised on the variable name.
    pub fn shrink_section(name: &str) -> String {
        format!("shrink the array section of '{name}' to the variable's extent")
    }

    /// The hint for a faulting read, by violation kind and the location
    /// of the read.
    pub fn for_read(kind: ReportKind, device: DeviceId) -> &'static str {
        match (kind, device.is_host()) {
            (ReportKind::MappingUsd, true) => USD_HOST,
            (ReportKind::MappingUsd, false) => USD_DEVICE,
            (_, true) => UUM_HOST,
            (_, false) => UUM_DEVICE,
        }
    }

    /// A default hint for every report kind, so no UUM/USD/BO-class
    /// report ships without a repair suggestion.
    pub fn default_for(kind: ReportKind, device: DeviceId) -> &'static str {
        match kind {
            ReportKind::MappingUum | ReportKind::MappingUsd => for_read(kind, device),
            ReportKind::MappingOverflow => CHECK_BOUNDS,
            ReportKind::DataRace => ORDER_ACCESSES,
            ReportKind::UninitRead => INIT_BEFORE_READ,
            ReportKind::HeapOverflow => CHECK_ALLOCATION,
            ReportKind::UseAfterFree => EXTEND_LIFETIME,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crediting_matches_table_iii_semantics() {
        assert!(ReportKind::MappingUum.credits_effect(Effect::Uum));
        assert!(ReportKind::UninitRead.credits_effect(Effect::Uum));
        assert!(!ReportKind::UninitRead.credits_effect(Effect::Usd));
        assert!(ReportKind::MappingUsd.credits_effect(Effect::Usd));
        assert!(ReportKind::HeapOverflow.credits_effect(Effect::Bo));
        assert!(ReportKind::MappingOverflow.credits_effect(Effect::Bo));
        assert!(!ReportKind::DataRace.credits_effect(Effect::Uum));
        assert!(ReportKind::DataRace.credits_effect(Effect::Race));
    }

    #[test]
    fn render_mentions_key_facts() {
        let r = Report {
            tool: "arbalest",
            kind: ReportKind::MappingUsd,
            message: "read on host did not observe last write on device(0)".into(),
            buffer: Some("a".into()),
            device: DeviceId::HOST,
            addr: 0x2000_0000_0100,
            size: 8,
            loc: None,
            prev: Some(PrevAccess { tid: 3, clock: 17, is_write: true }),
            suggested_fix: Some("change map-type of 'a' to tofrom".into()),
            provenance: Vec::new(),
        };
        let text = r.render();
        assert!(text.contains("ThreadSanitizer"));
        assert!(text.contains("mapping-issue(USD)"));
        assert!(text.contains("mapped variable 'a'"));
        assert!(text.contains("thread T3"));
        assert!(text.contains("Suggested fix"));
    }

    #[test]
    fn summarize_counts_by_kind() {
        let mk = |kind| Report {
            tool: "arbalest",
            kind,
            message: String::new(),
            buffer: None,
            device: DeviceId::HOST,
            addr: 0,
            size: 8,
            loc: None,
            prev: None,
            suggested_fix: None,
            provenance: Vec::new(),
        };
        let reports =
            vec![mk(ReportKind::MappingUum), mk(ReportKind::DataRace), mk(ReportKind::MappingUum)];
        let summary = summarize(&reports);
        assert_eq!(summary, vec![(ReportKind::MappingUum, 2), (ReportKind::DataRace, 1)]);
        assert!(summarize(&[]).is_empty());
    }

    #[test]
    fn dedup_key_ignores_message() {
        let mk = |msg: &str| Report {
            tool: "arbalest",
            kind: ReportKind::MappingUum,
            message: msg.into(),
            buffer: Some("b".into()),
            device: DeviceId::ACCEL0,
            addr: 0,
            size: 8,
            loc: None,
            prev: None,
            suggested_fix: None,
            provenance: Vec::new(),
        };
        assert_eq!(mk("x").dedup_key(), mk("y").dedup_key());
    }
}
