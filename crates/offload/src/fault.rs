//! Deterministic fault injection for the offload runtime.
//!
//! Real offloading stacks fail in the field in ways unit tests rarely
//! exercise: device OOM, interrupted DMA, kernels that refuse to launch,
//! asynchronous completions that arrive late. This module gives the
//! simulated runtime the same failure surface in a *reproducible* form: a
//! [`FaultPlan`] seeded from [`FaultConfig`] makes every fault decision by
//! hashing `(seed, decision-counter, site)` with SplitMix64, so a failing
//! soak seed replays exactly (for single-threaded schedules the decision
//! sequence is fully deterministic; with concurrent `nowait` regions the
//! per-decision outcomes remain seed-stable even though their interleaving
//! does not).
//!
//! The injected fault kinds and how the runtime recovers:
//!
//! * **Device allocation failure** (OOM) — transient failures are retried
//!   with exponential backoff; a permanent failure rolls back the
//!   construct's committed mappings and degrades to host execution.
//! * **Transfer failure**, full or *partial* (the first K bytes arrive) —
//!   always treated as transient: retried, and after [`MAX_RETRIES`] the
//!   degraded word-wise copy path completes the transfer. Transfers never
//!   fail permanently, so mapped data is never silently stale.
//! * **Kernel-launch failure** — transient launches retry; a permanent
//!   failure runs the region body on the host with coherence pull/push.
//! * **Delayed `nowait` completion** — the asynchronous task's completion
//!   latch fires late, widening the race window `nowait` already opens.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Attempts made before a faulting operation is declared permanent (for
/// allocation / launch) or routed to the degraded path (for transfers).
pub const MAX_RETRIES: u32 = 4;

/// Fault-injection configuration carried by
/// [`crate::runtime::Config::faults`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that any single fault site fires.
    pub rate: f64,
}

impl FaultConfig {
    /// No faults (the default).
    pub const fn disabled() -> FaultConfig {
        FaultConfig { seed: 0, rate: 0.0 }
    }

    /// A plan injecting faults at `rate` with the given `seed`.
    pub fn new(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig { seed, rate: rate.clamp(0.0, 1.0) }
    }

    /// Whether any fault can ever fire.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

/// Where in the runtime a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// CV allocation in a device memory.
    DeviceAlloc,
    /// OV → CV transfer (entry map, `update to`).
    TransferToDevice,
    /// CV → OV transfer (exit map, `update from`).
    TransferFromDevice,
    /// Launch of a target-region kernel.
    KernelLaunch,
    /// Completion signalling of a `nowait` task.
    NowaitComplete,
    /// A wire frame is delivered only as a prefix before the connection
    /// drops (network chaos; decided per frame write).
    WirePartialFrame,
    /// The connection drops cleanly between frames (network chaos).
    WireDisconnect,
    /// The peer stalls mid-frame for the returned delay (network chaos).
    WireStall,
    /// An analysis shard job panics mid-event (worker chaos).
    ShardPanic,
    /// Synthetic per-session memory pressure: the session's resource
    /// budget is treated as exceeded for this decision.
    BudgetPressure,
    /// A WAL record write tears: only a prefix of the record's bytes
    /// reaches the log before the process "dies" (storage chaos).
    WalTornTail,
    /// A WAL record is written whole but with a flipped payload byte, so
    /// its CRC no longer matches (storage chaos).
    WalCorruptRecord,
    /// An fsync of the WAL or a snapshot file fails (storage chaos).
    FsyncFail,
}

/// Outcome of one fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// No fault; proceed normally.
    None,
    /// Operation failed wholesale but is worth retrying.
    Transient,
    /// Operation failed and will keep failing; recover by degradation.
    Permanent,
    /// Transfer moved only a prefix: `frac256/256` of the words arrived.
    Partial {
        /// Numerator of the fraction of words copied, over 256.
        frac256: u8,
    },
    /// Completion is delayed by `micros` microseconds.
    Delay {
        /// Delay length in microseconds.
        micros: u64,
    },
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded, thread-safe fault decision stream.
pub struct FaultPlan {
    seed: u64,
    /// Fault iff the site draw is below this; `0` disables everything.
    threshold: u64,
    counter: AtomicU64,
}

impl FaultPlan {
    /// Build the plan for a configuration.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        let rate = cfg.rate.clamp(0.0, 1.0);
        let threshold = if rate <= 0.0 {
            0
        } else if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        FaultPlan {
            seed: splitmix64(cfg.seed ^ 0xA5A5_5A5A_C0FF_EE00),
            threshold,
            counter: AtomicU64::new(0),
        }
    }

    /// Whether this plan can ever inject a fault. The runtime fast-paths
    /// every site on `false`.
    pub fn active(&self) -> bool {
        self.threshold > 0
    }

    /// Make the next fault decision for `site`.
    pub fn decide(&self, site: FaultSite) -> FaultOutcome {
        if self.threshold == 0 {
            return FaultOutcome::None;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let draw = splitmix64(self.seed ^ splitmix64(n ^ ((site as u64) << 56)));
        if draw >= self.threshold && self.threshold != u64::MAX {
            return FaultOutcome::None;
        }
        // Second hash decides the fault flavour.
        let flavour = splitmix64(draw);
        match site {
            FaultSite::DeviceAlloc => {
                if flavour.is_multiple_of(4) {
                    FaultOutcome::Permanent
                } else {
                    FaultOutcome::Transient
                }
            }
            FaultSite::TransferToDevice | FaultSite::TransferFromDevice => {
                if flavour.is_multiple_of(2) {
                    FaultOutcome::Partial { frac256: (flavour >> 8) as u8 }
                } else {
                    FaultOutcome::Transient
                }
            }
            FaultSite::KernelLaunch => {
                if flavour.is_multiple_of(2) {
                    FaultOutcome::Permanent
                } else {
                    FaultOutcome::Transient
                }
            }
            FaultSite::NowaitComplete => {
                FaultOutcome::Delay { micros: 20 + ((flavour >> 8) % 1500) }
            }
            // Network chaos: each site has one fixed flavour so a soak
            // exercising all sites stays easy to reason about per seed.
            FaultSite::WirePartialFrame => {
                FaultOutcome::Partial { frac256: (flavour >> 8) as u8 }
            }
            FaultSite::WireDisconnect => FaultOutcome::Permanent,
            FaultSite::WireStall => {
                // 1–50 ms: long enough to trip a tight request deadline,
                // short enough for multi-thousand-connection soaks.
                FaultOutcome::Delay { micros: 1_000 + ((flavour >> 8) % 49_000) }
            }
            FaultSite::ShardPanic => FaultOutcome::Permanent,
            FaultSite::BudgetPressure => FaultOutcome::Transient,
            // Storage chaos: fixed flavours, like the wire sites. A torn
            // tail is a prefix write (the crash model), a corrupt record is
            // unrecoverable in place (recovery must discard it), a failed
            // fsync is transient (the next group fsync retries).
            FaultSite::WalTornTail => FaultOutcome::Partial { frac256: (flavour >> 8) as u8 },
            FaultSite::WalCorruptRecord => FaultOutcome::Permanent,
            FaultSite::FsyncFail => FaultOutcome::Transient,
        }
    }

    /// Exponential backoff before retry `attempt` (0-based): 1 µs doubling
    /// up to 64 µs — long enough to reorder against concurrent work, short
    /// enough for 64-seed soaks.
    pub fn backoff(attempt: u32) {
        std::thread::sleep(Duration::from_micros(1u64 << attempt.min(6)));
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("threshold", &self.threshold)
            .field("decisions", &self.counter.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_never_faults() {
        let plan = FaultPlan::new(FaultConfig::disabled());
        assert!(!plan.active());
        for _ in 0..1000 {
            assert_eq!(plan.decide(FaultSite::DeviceAlloc), FaultOutcome::None);
        }
    }

    #[test]
    fn rate_one_always_faults() {
        let plan = FaultPlan::new(FaultConfig::new(42, 1.0));
        for _ in 0..1000 {
            assert_ne!(plan.decide(FaultSite::KernelLaunch), FaultOutcome::None);
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = FaultPlan::new(FaultConfig::new(7, 0.5));
        let b = FaultPlan::new(FaultConfig::new(7, 0.5));
        let sites = [
            FaultSite::DeviceAlloc,
            FaultSite::TransferToDevice,
            FaultSite::KernelLaunch,
            FaultSite::NowaitComplete,
            FaultSite::TransferFromDevice,
        ];
        for i in 0..500 {
            let site = sites[i % sites.len()];
            assert_eq!(a.decide(site), b.decide(site), "decision {i}");
        }
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let plan = FaultPlan::new(FaultConfig::new(3, 0.25));
        let mut faults = 0u32;
        for _ in 0..10_000 {
            if plan.decide(FaultSite::TransferToDevice) != FaultOutcome::None {
                faults += 1;
            }
        }
        let observed = faults as f64 / 10_000.0;
        assert!((0.20..=0.30).contains(&observed), "observed {observed}");
    }

    #[test]
    fn wire_and_worker_sites_have_fixed_flavours() {
        let plan = FaultPlan::new(FaultConfig::new(9, 1.0));
        for _ in 0..500 {
            match plan.decide(FaultSite::WireStall) {
                FaultOutcome::Delay { micros } => {
                    assert!((1_000..=50_000).contains(&micros), "stall {micros}us")
                }
                other => panic!("stall flavour {other:?}"),
            }
            assert!(matches!(
                plan.decide(FaultSite::WirePartialFrame),
                FaultOutcome::Partial { .. }
            ));
            assert_eq!(plan.decide(FaultSite::WireDisconnect), FaultOutcome::Permanent);
            assert_eq!(plan.decide(FaultSite::ShardPanic), FaultOutcome::Permanent);
            assert_eq!(plan.decide(FaultSite::BudgetPressure), FaultOutcome::Transient);
            assert!(matches!(plan.decide(FaultSite::WalTornTail), FaultOutcome::Partial { .. }));
            assert_eq!(plan.decide(FaultSite::WalCorruptRecord), FaultOutcome::Permanent);
            assert_eq!(plan.decide(FaultSite::FsyncFail), FaultOutcome::Transient);
        }
    }

    #[test]
    fn transfer_faults_are_never_permanent() {
        let plan = FaultPlan::new(FaultConfig::new(11, 1.0));
        for _ in 0..1000 {
            for site in [FaultSite::TransferToDevice, FaultSite::TransferFromDevice] {
                match plan.decide(site) {
                    FaultOutcome::Transient | FaultOutcome::Partial { .. } => {}
                    other => panic!("transfer fault {other:?}"),
                }
            }
        }
    }
}
