//! Execution-trace recording and offline replay.
//!
//! ARBALEST is an *on-the-fly* detector, but the same event stream can be
//! captured once and analysed offline — useful for regression corpora
//! ("this trace used to trigger the bug"), for running several detector
//! configurations over one execution, and for debugging detectors
//! themselves. [`TraceRecorder`] is a [`Tool`] that journals every event;
//! [`replay`] feeds a journal to any other tool as if the program were
//! running live.

use crate::addr::DeviceId;
use crate::buffer::BufferInfo;
use crate::events::{
    AccessEvent, ConstructEvent, DataOpEvent, SyncEvent, Tool, TransferEvent,
};
use arbalest_sync::Mutex;

/// One journaled runtime event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A host buffer was registered.
    BufferRegistered(BufferInfo),
    /// A host buffer was freed.
    HostFree(BufferInfo),
    /// The device plugin announced its pool.
    PoolAlloc {
        /// Pool's device.
        device: DeviceId,
        /// Pool base address.
        base: u64,
        /// Pool length in bytes.
        len: u64,
    },
    /// CV alloc/delete.
    DataOp(DataOpEvent),
    /// OV↔CV transfer.
    Transfer(TransferEvent),
    /// Tracked memory access.
    Access(AccessEvent),
    /// Happens-before structure.
    Sync(SyncEvent),
    /// Construct boundary.
    Construct(ConstructEvent),
}

/// A tool that records the full event stream.
#[derive(Default)]
pub struct TraceRecorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of journaled events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Drain the journal.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Copy the journal, leaving it in place.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    fn push(&self, ev: TraceEvent) {
        self.events.lock().push(ev);
    }
}

impl Tool for TraceRecorder {
    fn name(&self) -> &'static str {
        "trace"
    }
    fn on_buffer_registered(&self, info: &BufferInfo) {
        self.push(TraceEvent::BufferRegistered(info.clone()));
    }
    fn on_host_free(&self, info: &BufferInfo) {
        self.push(TraceEvent::HostFree(info.clone()));
    }
    fn on_pool_alloc(&self, device: DeviceId, base: u64, len: u64) {
        self.push(TraceEvent::PoolAlloc { device, base, len });
    }
    fn on_data_op(&self, ev: &DataOpEvent) {
        self.push(TraceEvent::DataOp(*ev));
    }
    fn on_transfer(&self, ev: &TransferEvent) {
        self.push(TraceEvent::Transfer(*ev));
    }
    fn on_access(&self, ev: &AccessEvent) {
        self.push(TraceEvent::Access(*ev));
    }
    fn on_sync(&self, ev: &SyncEvent) {
        self.push(TraceEvent::Sync(*ev));
    }
    fn on_construct(&self, ev: &ConstructEvent) {
        self.push(TraceEvent::Construct(*ev));
    }
    fn side_table_bytes(&self) -> u64 {
        (self.events.lock().capacity() * std::mem::size_of::<TraceEvent>()) as u64
    }
}

/// Feed a journal to a tool, event by event, as if live.
///
/// Note: a replayed journal is one *serialisation* of the original
/// concurrent execution. Happens-before-based analyses are unaffected
/// (they depend on the sync structure, not on wall-clock interleaving),
/// which is the same argument Theorem 1 makes for serialized schedules.
pub fn replay(events: &[TraceEvent], tool: &dyn Tool) {
    for ev in events {
        apply(ev, tool);
    }
}

/// Deliver a single journaled event to a tool, dispatching to the callback
/// the live runtime would have invoked. Incremental counterpart of
/// [`replay`], used by streaming consumers (the analysis server feeds
/// events as they arrive over the wire).
pub fn apply(ev: &TraceEvent, tool: &dyn Tool) {
    match ev {
        TraceEvent::BufferRegistered(info) => tool.on_buffer_registered(info),
        TraceEvent::HostFree(info) => tool.on_host_free(info),
        TraceEvent::PoolAlloc { device, base, len } => tool.on_pool_alloc(*device, *base, *len),
        TraceEvent::DataOp(e) => tool.on_data_op(e),
        TraceEvent::Transfer(e) => tool.on_transfer(e),
        TraceEvent::Access(e) => tool.on_access(e),
        TraceEvent::Sync(e) => tool.on_sync(e),
        TraceEvent::Construct(e) => tool.on_construct(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use std::sync::Arc;

    fn record_program() -> Vec<TraceEvent> {
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        let a = rt.alloc_with::<f64>("a", 8, |i| i as f64);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
        let _ = rt.read(&a, 0);
        rec.take()
    }

    #[test]
    fn journal_captures_every_event_family() {
        let trace = record_program();
        assert!(trace.iter().any(|e| matches!(e, TraceEvent::BufferRegistered(_))));
        assert!(trace.iter().any(|e| matches!(e, TraceEvent::DataOp(_))));
        assert!(trace.iter().any(|e| matches!(e, TraceEvent::Transfer(_))));
        assert!(trace.iter().any(|e| matches!(e, TraceEvent::Access(_))));
        assert!(trace.iter().any(|e| matches!(e, TraceEvent::Sync(_))));
        assert!(trace.iter().any(|e| matches!(e, TraceEvent::Construct(_))));
        // 8 host init writes + 8+8 kernel accesses + 1 host read ≥ 25.
        let accesses = trace.iter().filter(|e| matches!(e, TraceEvent::Access(_))).count();
        assert_eq!(accesses, 25);
    }

    #[test]
    fn replay_reproduces_the_stream_exactly() {
        let trace = record_program();
        let rec2 = TraceRecorder::new();
        replay(&trace, &rec2);
        assert_eq!(rec2.len(), trace.len());
    }

    #[test]
    fn snapshot_preserves_and_take_drains() {
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        let a = rt.alloc::<f64>("a", 2);
        rt.write(&a, 0, 1.0);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), rec.len());
        let taken = rec.take();
        assert_eq!(taken.len(), snap.len());
        assert!(rec.is_empty());
    }
}
