//! Shared half-open byte-interval arithmetic.
//!
//! Three layers of the tool reason about `[lo, hi)` byte ranges: the IR's
//! may/must cover sets (`arbalest_ir::Program::{covers, may_cover}`), the
//! static checker's overlap pass, and the dynamic detector's shadow-range
//! clamping. Each used to carry its own ad-hoc copy of the same interval
//! algebra; this module is the single, unit-tested implementation they all
//! route through.
//!
//! All intervals are half-open `(lo, hi)` with `lo <= hi`; `lo == hi` is
//! the empty interval. Functions are total: empty and inverted inputs are
//! treated as empty rather than panicking.

/// Does `[a_lo, a_hi)` intersect `[b_lo, b_hi)`? Empty intervals overlap
/// nothing, including themselves.
#[must_use]
pub fn overlaps(a_lo: u64, a_hi: u64, b_lo: u64, b_hi: u64) -> bool {
    // Both must be non-empty: `a_lo < b_hi && b_lo < a_hi` alone would
    // count an empty interval sitting strictly inside a non-empty one.
    a_lo < a_hi && b_lo < b_hi && a_lo < b_hi && b_lo < a_hi
}

/// Intersection of two intervals, or `None` when they are disjoint (or
/// either is empty).
#[must_use]
pub fn intersect(a_lo: u64, a_hi: u64, b_lo: u64, b_hi: u64) -> Option<(u64, u64)> {
    let lo = a_lo.max(b_lo);
    let hi = a_hi.min(b_hi);
    if lo < hi {
        Some((lo, hi))
    } else {
        None
    }
}

/// Sort a set of intervals, drop empty ones, and merge overlapping or
/// adjacent neighbours, leaving a minimal disjoint ascending cover.
pub fn normalize(ranges: &mut Vec<(u64, u64)>) {
    ranges.retain(|&(lo, hi)| lo < hi);
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for &(lo, hi) in ranges.iter() {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    *ranges = out;
}

/// Is `[lo, hi)` fully contained in the union of `ranges`? `ranges` need
/// not be normalized. The empty query interval is trivially covered.
#[must_use]
pub fn covered_by(ranges: &[(u64, u64)], lo: u64, hi: u64) -> bool {
    if lo >= hi {
        return true;
    }
    let mut norm = ranges.to_vec();
    normalize(&mut norm);
    norm.iter().any(|&(rlo, rhi)| rlo <= lo && hi <= rhi)
}

/// Subtract `[lo, hi)` from a single interval `[a_lo, a_hi)`, yielding the
/// zero, one, or two remaining pieces.
#[must_use]
pub fn subtract(a_lo: u64, a_hi: u64, lo: u64, hi: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(2);
    if a_lo >= a_hi {
        return out;
    }
    if !overlaps(a_lo, a_hi, lo, hi) {
        out.push((a_lo, a_hi));
        return out;
    }
    if a_lo < lo {
        out.push((a_lo, lo));
    }
    if hi < a_hi {
        out.push((hi, a_hi));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_basics() {
        assert!(overlaps(0, 10, 5, 15));
        assert!(overlaps(5, 15, 0, 10));
        assert!(!overlaps(0, 10, 10, 20)); // adjacency is not overlap
        assert!(!overlaps(0, 0, 0, 10)); // empty overlaps nothing
        assert!(!overlaps(3, 3, 3, 3));
    }

    #[test]
    fn intersect_matches_overlap() {
        assert_eq!(intersect(0, 10, 5, 15), Some((5, 10)));
        assert_eq!(intersect(5, 15, 0, 10), Some((5, 10)));
        assert_eq!(intersect(0, 10, 10, 20), None);
        assert_eq!(intersect(0, 0, 0, 10), None);
    }

    #[test]
    fn normalize_merges_and_sorts() {
        let mut v = vec![(10, 20), (0, 5), (4, 12), (30, 30), (25, 26)];
        normalize(&mut v);
        assert_eq!(v, vec![(0, 20), (25, 26)]);
        // adjacent intervals fuse
        let mut v = vec![(0, 5), (5, 9)];
        normalize(&mut v);
        assert_eq!(v, vec![(0, 9)]);
    }

    #[test]
    fn coverage_spans_merged_pieces() {
        let ranges = [(0, 5), (5, 9)];
        assert!(covered_by(&ranges, 2, 8));
        assert!(covered_by(&ranges, 0, 9));
        assert!(!covered_by(&ranges, 2, 10));
        assert!(covered_by(&ranges, 7, 7)); // empty query
        assert!(!covered_by(&[], 0, 1));
    }

    #[test]
    fn subtract_splits() {
        assert_eq!(subtract(0, 10, 3, 6), vec![(0, 3), (6, 10)]);
        assert_eq!(subtract(0, 10, 0, 10), vec![]);
        assert_eq!(subtract(0, 10, 10, 20), vec![(0, 10)]);
        assert_eq!(subtract(0, 10, 5, 20), vec![(0, 5)]);
        assert_eq!(subtract(0, 10, 0, 5), vec![(5, 10)]);
        assert_eq!(subtract(4, 4, 0, 10), vec![]);
    }

    /// Seeded property sweep: overlap symmetry, overlap ⇔ intersect,
    /// subtraction partitions, and normalize preserves pointwise
    /// membership.
    #[test]
    fn property_sweep() {
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let iv = move |m: &mut dyn FnMut() -> u64| {
            let lo = m() % 64;
            (lo, lo + m() % 16)
        };
        for _ in 0..4096 {
            let (alo, ahi) = iv(&mut next);
            let (blo, bhi) = iv(&mut next);
            // symmetry
            assert_eq!(overlaps(alo, ahi, blo, bhi), overlaps(blo, bhi, alo, ahi));
            // overlap iff non-empty intersection
            assert_eq!(overlaps(alo, ahi, blo, bhi), intersect(alo, ahi, blo, bhi).is_some());
            // subtraction + intersection partition [alo, ahi)
            let mut pieces = subtract(alo, ahi, blo, bhi);
            pieces.extend(intersect(alo, ahi, blo, bhi));
            let total: u64 = pieces.iter().map(|&(l, h)| h - l).sum();
            assert_eq!(total, ahi - alo);
            // normalize preserves pointwise membership
            let raw = vec![(alo, ahi), (blo, bhi)];
            let mut norm = raw.clone();
            normalize(&mut norm);
            for p in 0..96 {
                let in_raw = raw.iter().any(|&(l, h)| l <= p && p < h);
                let in_norm = norm.iter().any(|&(l, h)| l <= p && p < h);
                assert_eq!(in_raw, in_norm, "point {p}");
            }
        }
    }
}
