//! Paged, atomically-accessed logical memories — one per device.
//!
//! Every simulated memory is a sparse collection of 4 KiB pages of
//! `AtomicU64` words. All data accesses go through relaxed atomics so that
//! *buggy benchmark programs* — ones that genuinely race, which this suite
//! must be able to execute — stay well-defined Rust while still exhibiting
//! nondeterministic values, exactly like hardware.
//!
//! The allocator is a bump allocator with a fixed inter-block gap. Bump
//! allocation keeps successive corresponding-variable (CV) allocations
//! adjacent in the device window — the layout property that makes
//! mapping-related buffer overflows read a *neighbouring* CV (§IV-D of the
//! paper) rather than trap. Freed blocks stay recorded (dead) so tools can
//! diagnose use-after-free-style accesses.

use crate::addr::{device_base, DeviceId};
use crate::error::RuntimeError;
use arbalest_sync::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Log2 of the page size in bytes.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;
/// 64-bit words per page.
pub const WORDS_PER_PAGE: usize = (PAGE_BYTES / 8) as usize;

/// Gap (bytes) left between consecutive allocations. Doubles as the
/// physical room for red zones in the AddressSanitizer model.
pub const BLOCK_GAP: u64 = 64;

type Page = Box<[AtomicU64; WORDS_PER_PAGE]>;

fn new_page() -> Arc<Page> {
    // Zero-initialised; `AtomicU64` is repr(transparent) over u64 but we
    // build it safely element by element via a Vec to avoid unsafe.
    let v: Vec<AtomicU64> = (0..WORDS_PER_PAGE).map(|_| AtomicU64::new(0)).collect();
    let boxed: Box<[AtomicU64; WORDS_PER_PAGE]> = v.into_boxed_slice().try_into().expect("page size");
    Arc::from(boxed)
}

/// A live or dead heap block within an address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First byte of the block.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
    /// False once freed.
    pub live: bool,
}

impl Block {
    /// Whether `addr` falls inside the block.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.start + self.len
    }
}

/// One device's memory: sparse pages + a bump allocator + block registry.
pub struct AddressSpace {
    device: DeviceId,
    pages: RwLock<HashMap<u64, Arc<Page>>>,
    next: AtomicU64,
    blocks: Mutex<BTreeMap<u64, Block>>,
    live_bytes: AtomicU64,
    peak_live_bytes: AtomicU64,
}

impl AddressSpace {
    /// Create the memory for `device`, starting allocation at the device's
    /// logical window base.
    pub fn new(device: DeviceId) -> Self {
        AddressSpace {
            device,
            pages: RwLock::new(HashMap::new()),
            next: AtomicU64::new(device_base(device) + BLOCK_GAP),
            blocks: Mutex::new(BTreeMap::new()),
            live_bytes: AtomicU64::new(0),
            peak_live_bytes: AtomicU64::new(0),
        }
    }

    /// The owning device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Allocate `len` bytes (8-byte aligned), returning the block's base
    /// logical address. A [`BLOCK_GAP`] separates consecutive blocks.
    pub fn alloc(&self, len: u64) -> u64 {
        let rounded = (len + 7) & !7;
        let addr = self.next.fetch_add(rounded + BLOCK_GAP, Ordering::Relaxed);
        self.blocks.lock().insert(addr, Block { start: addr, len, live: true });
        let live = self.live_bytes.fetch_add(len, Ordering::Relaxed) + len;
        self.peak_live_bytes.fetch_max(live, Ordering::Relaxed);
        addr
    }

    /// Free the block at `addr`, returning its length. The block stays
    /// recorded as dead so tools can classify later accesses. Freeing an
    /// unknown or dead block is a bug in the simulator's user; it is
    /// reported as a typed error rather than a panic so the runtime can
    /// surface it to tools and keep going.
    pub fn free(&self, addr: u64) -> Result<u64, RuntimeError> {
        let mut blocks = self.blocks.lock();
        let Some(block) = blocks.get_mut(&addr) else {
            return Err(RuntimeError::UnknownFree { addr });
        };
        if !block.live {
            return Err(RuntimeError::DoubleFree { addr });
        }
        block.live = false;
        self.live_bytes.fetch_sub(block.len, Ordering::Relaxed);
        Ok(block.len)
    }

    /// Look up the block covering `addr` (live or dead).
    pub fn block_at(&self, addr: u64) -> Option<Block> {
        let blocks = self.blocks.lock();
        blocks
            .range(..=addr)
            .next_back()
            .map(|(_, b)| *b)
            .filter(|b| b.contains(addr))
    }

    /// Snapshot of all blocks ever allocated (live and dead), ascending.
    pub fn blocks(&self) -> Vec<Block> {
        self.blocks.lock().values().copied().collect()
    }

    /// Currently live allocated bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of live allocated bytes.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes.load(Ordering::Relaxed)
    }

    /// Number of materialised (touched-by-write) pages.
    pub fn page_count(&self) -> usize {
        self.pages.read().len()
    }

    /// Bytes of backing storage actually materialised.
    pub fn resident_bytes(&self) -> u64 {
        self.page_count() as u64 * PAGE_BYTES
    }

    #[inline]
    fn page_for_write(&self, page_idx: u64) -> Arc<Page> {
        if let Some(p) = self.pages.read().get(&page_idx) {
            return p.clone();
        }
        let mut w = self.pages.write();
        w.entry(page_idx).or_insert_with(new_page).clone()
    }

    #[inline]
    fn page_for_read(&self, page_idx: u64) -> Option<Arc<Page>> {
        self.pages.read().get(&page_idx).cloned()
    }

    /// Load an aligned 64-bit word. Untouched memory reads as zero without
    /// materialising a page.
    #[inline]
    pub fn load_word(&self, addr: u64) -> u64 {
        debug_assert_eq!(addr & 7, 0, "unaligned word load at {addr:#x}");
        let page_idx = addr >> PAGE_SHIFT;
        match self.page_for_read(page_idx) {
            Some(p) => p[((addr & (PAGE_BYTES - 1)) >> 3) as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Store an aligned 64-bit word.
    #[inline]
    pub fn store_word(&self, addr: u64, value: u64) {
        debug_assert_eq!(addr & 7, 0, "unaligned word store at {addr:#x}");
        let page_idx = addr >> PAGE_SHIFT;
        let page = self.page_for_write(page_idx);
        page[((addr & (PAGE_BYTES - 1)) >> 3) as usize].store(value, Ordering::Relaxed);
    }

    /// Atomic read-modify-write of an aligned 64-bit word (backs the
    /// simulated `omp atomic` constructs). Returns the previous value.
    pub fn fetch_update_word(&self, addr: u64, mut f: impl FnMut(u64) -> u64) -> u64 {
        debug_assert_eq!(addr & 7, 0, "unaligned atomic at {addr:#x}");
        let page_idx = addr >> PAGE_SHIFT;
        let page = self.page_for_write(page_idx);
        let cell = &page[((addr & (PAGE_BYTES - 1)) >> 3) as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = f(cur);
            match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => return prev,
                Err(c) => cur = c,
            }
        }
    }

    /// Atomic add on an aligned 64-bit word; returns the previous value.
    pub fn fetch_add_word(&self, addr: u64, delta: u64) -> u64 {
        self.fetch_update_word(addr, |v| v.wrapping_add(delta))
    }

    /// Load `size` ∈ {1,2,4,8} bytes at `addr` (must not cross an 8-byte
    /// boundary), zero-extended.
    #[inline]
    pub fn load(&self, addr: u64, size: usize) -> u64 {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        debug_assert_eq!(addr % size as u64, 0, "misaligned load");
        let word = self.load_word(addr & !7);
        if size == 8 {
            word
        } else {
            let shift = (addr & 7) * 8;
            let mask = (1u64 << (size * 8)) - 1;
            (word >> shift) & mask
        }
    }

    /// Store the low `size` bytes of `value` at `addr` (no 8-byte boundary
    /// crossing). Sub-word stores are atomic read-modify-write so racing
    /// neighbours are never corrupted.
    #[inline]
    pub fn store(&self, addr: u64, size: usize, value: u64) {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        debug_assert_eq!(addr % size as u64, 0, "misaligned store");
        if size == 8 {
            self.store_word(addr, value);
            return;
        }
        let page_idx = addr >> PAGE_SHIFT;
        let page = self.page_for_write(page_idx);
        let cell = &page[((addr & (PAGE_BYTES - 1)) >> 3) as usize];
        let shift = (addr & 7) * 8;
        let mask = ((1u64 << (size * 8)) - 1) << shift;
        let bits = (value << shift) & mask;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (cur & !mask) | bits;
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }
}

/// Word-wise copy of `len` bytes between (possibly distinct) spaces.
/// `len`, `src` and `dst` must be 8-byte aligned — the runtime only ever
/// transfers whole shadow granules, mirroring ARBALEST's 8-byte tracking
/// granularity.
pub fn copy(src: &AddressSpace, src_addr: u64, dst: &AddressSpace, dst_addr: u64, len: u64) {
    debug_assert_eq!(src_addr & 7, 0);
    debug_assert_eq!(dst_addr & 7, 0);
    let words = len.div_ceil(8);
    for w in 0..words {
        let v = src.load_word(src_addr + w * 8);
        dst.store_word(dst_addr + w * 8, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(DeviceId::ACCEL0)
    }

    #[test]
    fn alloc_is_bump_with_gap_and_aligned() {
        let s = space();
        let a = s.alloc(24);
        let b = s.alloc(10);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert_eq!(b, a + 24 + BLOCK_GAP);
        assert!(crate::addr::device_of(a) == DeviceId::ACCEL0);
    }

    #[test]
    fn load_store_word_roundtrip() {
        let s = space();
        let a = s.alloc(64);
        s.store_word(a + 16, 0xABCD_EF01_2345_6789);
        assert_eq!(s.load_word(a + 16), 0xABCD_EF01_2345_6789);
        assert_eq!(s.load_word(a + 24), 0);
    }

    #[test]
    fn subword_store_preserves_neighbours() {
        let s = space();
        let a = s.alloc(8);
        s.store_word(a, u64::MAX);
        s.store(a + 2, 2, 0x1234);
        let w = s.load_word(a);
        assert_eq!((w >> 16) & 0xFFFF, 0x1234);
        assert_eq!(w & 0xFFFF, 0xFFFF);
        assert_eq!(w >> 32, 0xFFFF_FFFF);
        assert_eq!(s.load(a + 2, 2), 0x1234);
    }

    #[test]
    fn all_sizes_roundtrip() {
        let s = space();
        let a = s.alloc(8);
        s.store(a, 1, 0xAB);
        s.store(a + 4, 4, 0xDEADBEEF);
        assert_eq!(s.load(a, 1), 0xAB);
        assert_eq!(s.load(a + 4, 4), 0xDEADBEEF);
    }

    #[test]
    fn untouched_reads_zero_without_pages() {
        let s = space();
        let a = s.alloc(1 << 20);
        assert_eq!(s.load_word(a + 4096 * 17), 0);
        assert_eq!(s.page_count(), 0);
        s.store_word(a, 1);
        assert_eq!(s.page_count(), 1);
    }

    #[test]
    fn block_tracking_and_free() {
        let s = space();
        let a = s.alloc(100);
        let b = s.alloc(50);
        assert_eq!(s.live_bytes(), 150);
        assert_eq!(s.peak_live_bytes(), 150);
        let blk = s.block_at(a + 99).unwrap();
        assert_eq!(blk.start, a);
        assert!(blk.live);
        assert!(s.block_at(a + 100).is_none(), "gap is unowned");
        assert_eq!(s.free(a), Ok(100));
        assert_eq!(s.live_bytes(), 50);
        assert_eq!(s.peak_live_bytes(), 150);
        let blk = s.block_at(a).unwrap();
        assert!(!blk.live, "freed block stays recorded as dead");
        let blk_b = s.block_at(b).unwrap();
        assert!(blk_b.live);
    }

    #[test]
    fn double_and_unknown_free_return_typed_errors() {
        let s = space();
        let a = s.alloc(8);
        assert_eq!(s.free(a), Ok(8));
        assert_eq!(s.free(a), Err(RuntimeError::DoubleFree { addr: a }));
        assert_eq!(s.free(a + 1), Err(RuntimeError::UnknownFree { addr: a + 1 }));
        // The block stays recorded dead and live accounting is untouched.
        assert!(!s.block_at(a).unwrap().live);
        assert_eq!(s.live_bytes(), 0);
    }

    #[test]
    fn copy_between_spaces() {
        let host = AddressSpace::new(DeviceId::HOST);
        let dev = space();
        let h = host.alloc(32);
        let d = dev.alloc(32);
        for i in 0..4 {
            host.store_word(h + i * 8, 100 + i);
        }
        copy(&host, h, &dev, d, 32);
        for i in 0..4 {
            assert_eq!(dev.load_word(d + i * 8), 100 + i);
        }
    }

    #[test]
    fn concurrent_subword_stores_do_not_corrupt() {
        let s = std::sync::Arc::new(space());
        let a = s.alloc(8);
        let mut handles = vec![];
        for lane in 0..4u64 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.store(a + lane * 2, 2, lane + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for lane in 0..4u64 {
            assert_eq!(s.load(a + lane * 2, 2), lane + 1);
        }
    }
}
