//! Scalar element types storable in tracked buffers.
//!
//! The simulated memories store raw 64-bit words (atomically, so that buggy
//! benchmark programs with real data races remain well-defined Rust).
//! `Scalar` is the bridge: a fixed-size plain-old-data value convertible to
//! and from its bit pattern. Sizes 1, 2, 4 and 8 are supported, matching
//! the access sizes ARBALEST's shadow word records (Table II).

/// A plain scalar that can live in simulated device memory.
///
/// # Safety-free contract
/// `from_bits(to_bits(v)) == v` for all `v`, and only the low `SIZE * 8`
/// bits of `to_bits` are meaningful.
pub trait Scalar: Copy + Send + Sync + 'static {
    /// Size of the scalar in bytes (1, 2, 4 or 8).
    const SIZE: usize;

    /// The value's bit pattern, zero-extended to 64 bits.
    fn to_bits(self) -> u64;

    /// Reconstruct a value from the low `SIZE * 8` bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! int_scalar {
    ($($t:ty => $size:expr),* $(,)?) => {$(
        impl Scalar for $t {
            const SIZE: usize = $size;
            #[inline]
            fn to_bits(self) -> u64 { self as u64 }
            #[inline]
            fn from_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}

int_scalar! {
    u8 => 1, i8 => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4,
    u64 => 8, i64 => 8,
    usize => 8, isize => 8,
}

impl Scalar for f32 {
    const SIZE: usize = 4;
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Scalar for f64 {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Scalar for bool {
    const SIZE: usize = 1;
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits & 1 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_bits(v.to_bits()), v);
    }

    #[test]
    fn roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(-1i8);
        roundtrip(-12345i16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(-7i32);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(3.25f32);
        roundtrip(-0.0f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn negative_int_sign_extension_is_contained() {
        // to_bits of a negative i32 sign-extends to 64 bits, but from_bits
        // truncates back, so values round-trip regardless.
        let v = -1i32;
        assert_eq!(i32::from_bits(v.to_bits()), -1);
    }

    #[test]
    fn sizes() {
        assert_eq!(<f64 as Scalar>::SIZE, 8);
        assert_eq!(<f32 as Scalar>::SIZE, 4);
        assert_eq!(<i16 as Scalar>::SIZE, 2);
        assert_eq!(<bool as Scalar>::SIZE, 1);
    }
}
