//! Data mapping semantics: map-types, array sections, and the present
//! table with Table I's reference-counting rules.
//!
//! The decision logic is pure (`plan_entry` / `plan_exit` / `commit_*`),
//! so the exact Table I semantics are unit-testable without a runtime;
//! the runtime executes the planned allocations and transfers.

use crate::buffer::{Buffer, BufferId};
use crate::error::RuntimeError;
use crate::scalar::Scalar;
use std::collections::HashMap;

/// OpenMP map-types (§2.14 of the specification / Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapType {
    /// Copy OV → CV on entry (if the CV is created by this mapping).
    To,
    /// Allocate on entry, copy CV → OV on exit (when the refcount drops
    /// to zero).
    From,
    /// Both of the above.
    ToFrom,
    /// Allocate only; no transfers.
    Alloc,
    /// Decrement the reference count on exit; delete when it reaches zero.
    Release,
    /// Force the reference count to zero and delete on exit.
    Delete,
}

impl MapType {
    /// Whether entry to the region copies OV → CV when creating the CV.
    pub fn copies_to_device(self) -> bool {
        matches!(self, MapType::To | MapType::ToFrom)
    }

    /// Whether exit from the region copies CV → OV when the refcount
    /// reaches zero.
    pub fn copies_from_device(self) -> bool {
        matches!(self, MapType::From | MapType::ToFrom)
    }
}

impl std::fmt::Display for MapType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MapType::To => "to",
            MapType::From => "from",
            MapType::ToFrom => "tofrom",
            MapType::Alloc => "alloc",
            MapType::Release => "release",
            MapType::Delete => "delete",
        };
        write!(f, "{s}")
    }
}

/// One `map` clause: a buffer (or array section of it) plus a map-type.
#[derive(Debug, Clone, Copy)]
pub struct Map {
    /// The mapped buffer.
    pub buffer: BufferId,
    /// Map-type.
    pub map_type: MapType,
    /// Section start, bytes from the OV base.
    pub offset_bytes: u64,
    /// Section length in bytes.
    pub len_bytes: u64,
}

impl Map {
    fn whole<T: Scalar>(buf: &Buffer<T>, map_type: MapType) -> Map {
        Map {
            buffer: buf.id(),
            map_type,
            offset_bytes: 0,
            len_bytes: (buf.len() * T::SIZE) as u64,
        }
    }

    fn section<T: Scalar>(buf: &Buffer<T>, map_type: MapType, start: usize, len: usize) -> Map {
        Map {
            buffer: buf.id(),
            map_type,
            offset_bytes: (start * T::SIZE) as u64,
            len_bytes: (len * T::SIZE) as u64,
        }
    }

    /// `map(to: buf[0:len])`
    pub fn to<T: Scalar>(buf: &Buffer<T>) -> Map {
        Map::whole(buf, MapType::To)
    }
    /// `map(from: buf[0:len])`
    pub fn from<T: Scalar>(buf: &Buffer<T>) -> Map {
        Map::whole(buf, MapType::From)
    }
    /// `map(tofrom: buf[0:len])`
    pub fn tofrom<T: Scalar>(buf: &Buffer<T>) -> Map {
        Map::whole(buf, MapType::ToFrom)
    }
    /// `map(alloc: buf[0:len])`
    pub fn alloc<T: Scalar>(buf: &Buffer<T>) -> Map {
        Map::whole(buf, MapType::Alloc)
    }
    /// `map(release: buf[0:len])`
    pub fn release<T: Scalar>(buf: &Buffer<T>) -> Map {
        Map::whole(buf, MapType::Release)
    }
    /// `map(delete: buf[0:len])`
    pub fn delete<T: Scalar>(buf: &Buffer<T>) -> Map {
        Map::whole(buf, MapType::Delete)
    }

    /// `map(to: buf[start:len])` — array section in elements. A section
    /// exceeding the buffer (`start + len > buf.len()`) is accepted: that
    /// is precisely the class of bug DRACC seeds (wrong array section).
    pub fn to_section<T: Scalar>(buf: &Buffer<T>, start: usize, len: usize) -> Map {
        Map::section(buf, MapType::To, start, len)
    }
    /// `map(from: buf[start:len])`
    pub fn from_section<T: Scalar>(buf: &Buffer<T>, start: usize, len: usize) -> Map {
        Map::section(buf, MapType::From, start, len)
    }
    /// `map(tofrom: buf[start:len])`
    pub fn tofrom_section<T: Scalar>(buf: &Buffer<T>, start: usize, len: usize) -> Map {
        Map::section(buf, MapType::ToFrom, start, len)
    }
    /// `map(alloc: buf[start:len])`
    pub fn alloc_section<T: Scalar>(buf: &Buffer<T>, start: usize, len: usize) -> Map {
        Map::section(buf, MapType::Alloc, start, len)
    }
}

/// A live present-table entry: one CV on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresentEntry {
    /// CV base logical address on the device.
    pub cv_base: u64,
    /// Mapped section start (bytes from OV base).
    pub offset_bytes: u64,
    /// Mapped section length in bytes.
    pub len_bytes: u64,
    /// Table I reference count.
    pub refcount: u32,
}

impl PresentEntry {
    /// Device address for a byte offset from the OV base. Offsets outside
    /// the mapped section still produce an address (beyond the CV block) —
    /// that is the buffer-overflow behaviour §IV-D detects.
    #[inline]
    pub fn cv_addr(&self, ov_byte_offset: u64) -> u64 {
        self.cv_base.wrapping_add(ov_byte_offset).wrapping_sub(self.offset_bytes)
    }
}

/// What the runtime must do on region entry for one map clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryPlan {
    /// Allocate a CV of the section's length.
    pub alloc: bool,
    /// Copy OV section → CV after allocating.
    pub copy_to_device: bool,
}

/// What the runtime must do on region exit for one map clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitPlan {
    /// Copy CV → OV section before deleting.
    pub copy_from_device: bool,
    /// Delete the CV.
    pub delete: bool,
}

/// The per-device present table implementing Table I.
#[derive(Debug, Default)]
pub struct PresentTable {
    entries: HashMap<BufferId, PresentEntry>,
}

impl PresentTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current entry for a buffer, if present.
    pub fn get(&self, buffer: BufferId) -> Option<PresentEntry> {
        self.entries.get(&buffer).copied()
    }

    /// `ref_count(CV) == 0`, i.e. the CV does not exist.
    pub fn exists(&self, buffer: BufferId) -> bool {
        self.entries.contains_key(&buffer)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no CV is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Decide the entry actions for a map clause (Table I, upper half).
    /// `release`/`delete` map-types have no entry effect.
    pub fn plan_entry(&self, map: &Map) -> EntryPlan {
        if matches!(map.map_type, MapType::Release | MapType::Delete) {
            return EntryPlan { alloc: false, copy_to_device: false };
        }
        if self.exists(map.buffer) {
            EntryPlan { alloc: false, copy_to_device: false }
        } else {
            EntryPlan { alloc: true, copy_to_device: map.map_type.copies_to_device() }
        }
    }

    /// Record the entry effects. When `plan.alloc` is true, `cv_base` is
    /// the freshly allocated CV; otherwise the existing entry's refcount
    /// is incremented (`ref_count(CV) += 1`). Committing a refcount bump
    /// against a table whose entry has since vanished returns
    /// [`RuntimeError::StaleMapping`] and leaves the table unchanged.
    pub fn commit_entry(&mut self, map: &Map, plan: EntryPlan, cv_base: u64) -> Result<(), RuntimeError> {
        if matches!(map.map_type, MapType::Release | MapType::Delete) {
            return Ok(());
        }
        if plan.alloc {
            self.entries.insert(
                map.buffer,
                PresentEntry {
                    cv_base,
                    offset_bytes: map.offset_bytes,
                    len_bytes: map.len_bytes,
                    refcount: 1,
                },
            );
            Ok(())
        } else if let Some(e) = self.entries.get_mut(&map.buffer) {
            e.refcount += 1;
            Ok(())
        } else {
            Err(RuntimeError::StaleMapping { buffer: map.buffer })
        }
    }

    /// Decide the exit actions for a map clause (Table I, lower half).
    /// Exit for a buffer that is not present is a no-op (OpenMP 5.x).
    pub fn plan_exit(&self, map: &Map) -> ExitPlan {
        let Some(entry) = self.get(map.buffer) else {
            return ExitPlan { copy_from_device: false, delete: false };
        };
        let remaining = match map.map_type {
            MapType::Delete => 0,
            _ => entry.refcount.saturating_sub(1),
        };
        if remaining == 0 {
            ExitPlan { copy_from_device: map.map_type.copies_from_device(), delete: true }
        } else {
            ExitPlan { copy_from_device: false, delete: false }
        }
    }

    /// Record the exit effects; returns the removed entry when the CV was
    /// deleted so the runtime can free it.
    pub fn commit_exit(&mut self, map: &Map, plan: ExitPlan) -> Option<PresentEntry> {
        if plan.delete {
            self.entries.remove(&map.buffer)
        } else {
            if let Some(e) = self.entries.get_mut(&map.buffer) {
                e.refcount = e.refcount.saturating_sub(1);
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(t: MapType) -> Map {
        Map { buffer: BufferId(1), map_type: t, offset_bytes: 0, len_bytes: 64 }
    }

    #[test]
    fn table1_entry_to_creates_and_copies() {
        let table = PresentTable::new();
        let plan = table.plan_entry(&map(MapType::To));
        assert_eq!(plan, EntryPlan { alloc: true, copy_to_device: true });
        let plan = table.plan_entry(&map(MapType::ToFrom));
        assert!(plan.alloc && plan.copy_to_device);
    }

    #[test]
    fn table1_entry_from_alloc_create_without_copy() {
        let table = PresentTable::new();
        for t in [MapType::From, MapType::Alloc] {
            let plan = table.plan_entry(&map(t));
            assert_eq!(plan, EntryPlan { alloc: true, copy_to_device: false });
        }
    }

    #[test]
    fn table1_entry_existing_only_bumps_refcount() {
        let mut table = PresentTable::new();
        let m = map(MapType::To);
        let p = table.plan_entry(&m);
        table.commit_entry(&m, p, 0x1000).unwrap();
        // Second mapping: no transfer even for map(to) — reference counting
        // suppresses it (the root of several DRACC stale-data bugs).
        let m2 = map(MapType::To);
        let p2 = table.plan_entry(&m2);
        assert_eq!(p2, EntryPlan { alloc: false, copy_to_device: false });
        table.commit_entry(&m2, p2, 0).unwrap();
        assert_eq!(table.get(BufferId(1)).unwrap().refcount, 2);
        assert_eq!(table.get(BufferId(1)).unwrap().cv_base, 0x1000);
    }

    #[test]
    fn table1_exit_from_copies_back_only_at_zero() {
        let mut table = PresentTable::new();
        let m = map(MapType::ToFrom);
        let p = table.plan_entry(&m);
        table.commit_entry(&m, p, 0x1000).unwrap();
        let p = table.plan_entry(&m);
        table.commit_entry(&m, p, 0).unwrap();
        // refcount 2 → first exit decrements only
        let x = table.plan_exit(&m);
        assert_eq!(x, ExitPlan { copy_from_device: false, delete: false });
        assert!(table.commit_exit(&m, x).is_none());
        // refcount 1 → second exit copies back and deletes
        let x = table.plan_exit(&m);
        assert_eq!(x, ExitPlan { copy_from_device: true, delete: true });
        let removed = table.commit_exit(&m, x).unwrap();
        assert_eq!(removed.cv_base, 0x1000);
        assert!(table.is_empty());
    }

    #[test]
    fn table1_exit_to_alloc_release_delete_without_copy() {
        for t in [MapType::To, MapType::Alloc, MapType::Release] {
            let mut table = PresentTable::new();
            let enter = map(MapType::To);
            let p = table.plan_entry(&enter);
            table.commit_entry(&enter, p, 0x1000).unwrap();
            let x = table.plan_exit(&map(t));
            assert_eq!(x, ExitPlan { copy_from_device: false, delete: true }, "{t:?}");
        }
    }

    #[test]
    fn table1_delete_forces_refcount_to_zero() {
        let mut table = PresentTable::new();
        let m = map(MapType::To);
        for _ in 0..3 {
            let p = table.plan_entry(&m);
            table.commit_entry(&m, p, 0x1000).unwrap();
        }
        assert_eq!(table.get(BufferId(1)).unwrap().refcount, 3);
        let x = table.plan_exit(&map(MapType::Delete));
        assert_eq!(x, ExitPlan { copy_from_device: false, delete: true });
        table.commit_exit(&map(MapType::Delete), x);
        assert!(table.is_empty());
    }

    #[test]
    fn stale_commit_is_a_typed_error_not_a_panic() {
        let mut table = PresentTable::new();
        let m = map(MapType::To);
        // Plan against a table that has the entry, then lose it before
        // committing — the racy interleaving the old code `expect`ed away.
        let p0 = table.plan_entry(&m);
        table.commit_entry(&m, p0, 0x1000).unwrap();
        let p = table.plan_entry(&m);
        assert!(!p.alloc);
        let x = table.plan_exit(&map(MapType::Delete));
        table.commit_exit(&map(MapType::Delete), x);
        assert_eq!(
            table.commit_entry(&m, p, 0),
            Err(RuntimeError::StaleMapping { buffer: BufferId(1) })
        );
        assert!(table.is_empty(), "failed commit must not mutate the table");
    }

    #[test]
    fn exit_when_absent_is_noop() {
        let mut table = PresentTable::new();
        let x = table.plan_exit(&map(MapType::From));
        assert_eq!(x, ExitPlan { copy_from_device: false, delete: false });
        assert!(table.commit_exit(&map(MapType::From), x).is_none());
    }

    #[test]
    fn entry_release_delete_are_noops() {
        let table = PresentTable::new();
        for t in [MapType::Release, MapType::Delete] {
            let p = table.plan_entry(&map(t));
            assert_eq!(p, EntryPlan { alloc: false, copy_to_device: false });
        }
    }

    #[test]
    fn cv_addr_translates_sections_and_overflows() {
        let e = PresentEntry { cv_base: 0x2000, offset_bytes: 64, len_bytes: 128, refcount: 1 };
        assert_eq!(e.cv_addr(64), 0x2000);
        assert_eq!(e.cv_addr(128), 0x2040);
        // Below the section start: address lands before the CV block.
        assert_eq!(e.cv_addr(0), 0x2000 - 64);
        // Past the section end: beyond the CV block.
        assert_eq!(e.cv_addr(64 + 128 + 8), 0x2000 + 128 + 8);
    }

    #[test]
    fn section_constructors_use_element_units() {
        let buf: Buffer<f64> =
            Buffer { id: BufferId(7), len: 100, _marker: std::marker::PhantomData };
        let m = Map::to_section(&buf, 10, 20);
        assert_eq!(m.offset_bytes, 80);
        assert_eq!(m.len_bytes, 160);
        let m = Map::tofrom(&buf);
        assert_eq!(m.len_bytes, 800);
    }
}
