//! Client side of the analysis service: connect, stream a trace, collect
//! the reports.
//!
//! The client owns the backpressure loop: a `Busy` answer to an `Events`
//! batch means *nothing was enqueued*, so the same batch is retried after
//! an exponential backoff (1 ms doubling to a 50 ms ceiling). A server
//! that stays busy past [`Client::MAX_BUSY_RETRIES`] consecutive refusals
//! turns into [`ProtoError::Overloaded`] instead of an unbounded stall.

use crate::proto::{Frame, ProtoError, StatsSnapshot, WIRE_VERSION};
use crate::server::ListenAddr;
use arbalest_obs::{Registry, SpanContext, SpanEvent};
use arbalest_offload::report::Report;
use arbalest_offload::trace::TraceEvent;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Default number of events per `Events` frame when streaming a trace.
pub const DEFAULT_CHUNK: usize = 1024;

trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// One connection to an `arbalest serve` instance.
pub struct Client {
    stream: Box<dyn Transport>,
    session: Option<u64>,
    deadline: Option<Duration>,
    /// Registry for client-side causal tracing; disabled by default, so
    /// untraced clients stamp no contexts and record no spans.
    tracer: Registry,
}

impl Client {
    /// Consecutive `Busy` refusals of one batch before giving up with
    /// [`ProtoError::Overloaded`].
    pub const MAX_BUSY_RETRIES: u32 = 200;

    /// Connect over TCP or a Unix-domain socket, per the address kind.
    pub fn connect(addr: &ListenAddr) -> std::io::Result<Client> {
        let stream: Box<dyn Transport> = match addr {
            ListenAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                // Request/reply framing: waiting out Nagle costs ~40 ms a
                // round trip and buys nothing (frames are single writes).
                s.set_nodelay(true)?;
                Box::new(s)
            }
            ListenAddr::Unix(path) => Box::new(UnixStream::connect(path)?),
        };
        Ok(Client { stream, session: None, deadline: None, tracer: Registry::disabled() })
    }

    /// Wrap an already-connected byte stream (used by in-process tests).
    pub fn from_stream(stream: impl Read + Write + Send + 'static) -> Client {
        Client { stream: Box::new(stream), session: None, deadline: None, tracer: Registry::disabled() }
    }

    /// Enable causal tracing: every subsequent batch is stamped with a
    /// fresh root [`SpanContext`] on the wire, and the client records a
    /// matching `client_submit` span (same ids) into `reg`'s flight
    /// recorder — so a client-side drain and the server's trace file
    /// describe the same tree.
    pub fn with_tracing(mut self, reg: Registry) -> Client {
        self.tracer = reg;
        self
    }

    /// Bound every subsequent operation (including its `Busy` retry loop)
    /// to `deadline` total wall clock; past it the operation fails with
    /// the typed [`ProtoError::DeadlineExceeded`] instead of retrying on.
    /// Chaos soaks use this to cap worst-case client latency.
    pub fn with_deadline(mut self, deadline: Duration) -> Client {
        self.deadline = Some(deadline);
        self
    }

    fn call(&mut self, frame: &Frame) -> Result<Frame, ProtoError> {
        frame.write_to(&mut self.stream)?;
        match Frame::read_from(&mut self.stream, &mut || true)? {
            Frame::Error { message } => Err(ProtoError::Remote(message)),
            Frame::SessionFailed(failure) => Err(ProtoError::Failed(failure)),
            reply => Ok(reply),
        }
    }

    /// Open a session; returns the server-assigned session id.
    pub fn hello(&mut self) -> Result<u64, ProtoError> {
        self.hello_resume(None)
    }

    /// Open a fresh session (`resume: None`) or reattach to a durable or
    /// imported one by id. On a resumed session, [`Client::stats`] reports
    /// `session_events` — the index the next submitted event should have.
    pub fn hello_resume(&mut self, resume: Option<u64>) -> Result<u64, ProtoError> {
        match self.call(&Frame::Hello { version: WIRE_VERSION, resume })? {
            Frame::HelloAck { session, .. } => {
                self.session = Some(session);
                Ok(session)
            }
            _ => Err(ProtoError::Unexpected("wanted HelloAck")),
        }
    }

    /// The session id, if a session is open.
    pub fn session(&self) -> Option<u64> {
        self.session
    }

    /// Send one batch, retrying `Busy` refusals with backoff. With a
    /// [`Client::with_deadline`] set, the whole retry loop is additionally
    /// bounded by total wall clock.
    pub fn send_events(&mut self, batch: &[TraceEvent]) -> Result<(), ProtoError> {
        if batch.is_empty() {
            return Ok(());
        }
        // One root context per batch; the client records its own
        // `client_submit` span at exactly those ids, so a `Busy` retry
        // loop shows up as one long span, not N.
        let ctx = self.tracer.is_enabled().then(SpanContext::new_root);
        let span =
            ctx.map(|c| self.tracer.span_at(self.tracer.span_name("client_submit"), c));
        let result = self.send_events_with(batch, ctx);
        drop(span);
        result
    }

    fn send_events_with(
        &mut self,
        batch: &[TraceEvent],
        ctx: Option<SpanContext>,
    ) -> Result<(), ProtoError> {
        let started = std::time::Instant::now();
        let mut backoff = Duration::from_millis(1);
        for _ in 0..Self::MAX_BUSY_RETRIES {
            if let Some(limit) = self.deadline {
                if started.elapsed() > limit {
                    return Err(ProtoError::DeadlineExceeded { limit });
                }
            }
            match self.call(&Frame::Events { events: batch.to_vec(), ctx })? {
                Frame::EventsAck { .. } => return Ok(()),
                Frame::Busy { .. } => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                }
                _ => return Err(ProtoError::Unexpected("wanted EventsAck or Busy")),
            }
        }
        Err(ProtoError::Overloaded)
    }

    /// Close the session and collect its reports.
    pub fn finish(&mut self) -> Result<Vec<Report>, ProtoError> {
        match self.call(&Frame::Finish)? {
            Frame::Reports(reports) => {
                self.session = None;
                Ok(reports)
            }
            _ => Err(ProtoError::Unexpected("wanted Reports")),
        }
    }

    /// Full round trip: open a session, stream `events` in
    /// [`DEFAULT_CHUNK`]-sized batches, finish, return the reports.
    pub fn submit(&mut self, events: &[TraceEvent]) -> Result<Vec<Report>, ProtoError> {
        self.submit_chunked(events, DEFAULT_CHUNK)
    }

    /// [`Client::submit`] with an explicit batch size (minimum 1).
    pub fn submit_chunked(
        &mut self,
        events: &[TraceEvent],
        chunk: usize,
    ) -> Result<Vec<Report>, ProtoError> {
        self.hello()?;
        for batch in events.chunks(chunk.max(1)) {
            self.send_events(batch)?;
        }
        self.finish()
    }

    /// Fetch server counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ProtoError> {
        match self.call(&Frame::Stats)? {
            Frame::StatsReply(s) => Ok(s),
            _ => Err(ProtoError::Unexpected("wanted StatsReply")),
        }
    }

    /// Fetch the server's metrics registry rendered in Prometheus text
    /// exposition format (the same cells the binary [`Client::stats`]
    /// snapshot reads).
    pub fn metrics(&mut self) -> Result<String, ProtoError> {
        match self.call(&Frame::Metrics)? {
            Frame::MetricsReply(text) => Ok(text),
            _ => Err(ProtoError::Unexpected("wanted MetricsReply")),
        }
    }

    /// Snapshot the open session's full analysis state as portable bytes
    /// (the store's versioned snapshot format). Non-destructive; every
    /// batch acked before the call is included.
    pub fn export(&mut self) -> Result<Vec<u8>, ProtoError> {
        match self.call(&Frame::Export)? {
            Frame::ExportReply { state } => Ok(state),
            _ => Err(ProtoError::Unexpected("wanted ExportReply")),
        }
    }

    /// Install exported state as a new session on this server; returns the
    /// new session id. The session is not bound to this connection —
    /// attach to it with [`Client::hello_resume`].
    pub fn import(&mut self, state: &[u8]) -> Result<u64, ProtoError> {
        match self.call(&Frame::Import { state: state.to_vec() })? {
            Frame::ImportReply { session } => Ok(session),
            _ => Err(ProtoError::Unexpected("wanted ImportReply")),
        }
    }

    /// Fetch the server's most recent completed trace spans (any
    /// session): the `TraceSnapshot` admin frame. Useful for inspecting a
    /// live server without waiting for a session's trace file.
    pub fn trace_snapshot(&mut self) -> Result<Vec<SpanEvent>, ProtoError> {
        match self.call(&Frame::TraceSnapshot)? {
            Frame::TraceSnapshotReply(spans) => Ok(spans),
            _ => Err(ProtoError::Unexpected("wanted TraceSnapshotReply")),
        }
    }

    /// Ask the server to drain and stop. The server acknowledges before it
    /// begins draining.
    pub fn shutdown_server(&mut self) -> Result<(), ProtoError> {
        match self.call(&Frame::Shutdown)? {
            Frame::Ok => Ok(()),
            _ => Err(ProtoError::Unexpected("wanted Ok")),
        }
    }
}
