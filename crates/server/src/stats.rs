//! Server-wide counters (the `STATS` frame's source of truth).
//!
//! Since PR 4 these live in an [`arbalest_obs::Registry`], so the same
//! atomic cells back both the binary `StatsReply` snapshot and the
//! Prometheus text answered to a `Metrics` frame — the two views cannot
//! drift apart.

use crate::proto::StatsSnapshot;
use arbalest_obs::{Counter, Registry};
use arbalest_offload::report::Report;
use arbalest_offload::wire::{report_kind_tag, REPORT_KINDS};

/// Monotonic counters shared by every connection and shard.
#[derive(Debug)]
pub struct GlobalStats {
    /// Sessions opened (`Hello`).
    pub sessions_started: Counter,
    /// Sessions closed (`Finish` or abort).
    pub sessions_finished: Counter,
    /// Events accepted into shard queues.
    pub events_received: Counter,
    /// Event batches refused with `Busy`.
    pub busy_rejections: Counter,
    /// Reports from finished sessions, indexed by
    /// [`report_kind_tag`].
    pub reports_by_kind: Vec<Counter>,
}

impl GlobalStats {
    /// Register the server counters in `reg`. Every cell is shared with
    /// the registry's exporters: incrementing here moves both the binary
    /// `STATS` snapshot and the Prometheus text in lockstep.
    pub fn new(reg: &Registry) -> GlobalStats {
        GlobalStats {
            sessions_started: reg.counter("arbalest_server_sessions_started_total", &[]),
            sessions_finished: reg.counter("arbalest_server_sessions_finished_total", &[]),
            events_received: reg.counter("arbalest_server_events_received_total", &[]),
            busy_rejections: reg.counter("arbalest_server_busy_rejections_total", &[]),
            reports_by_kind: REPORT_KINDS
                .iter()
                .map(|k| reg.counter("arbalest_server_reports_total", &[("kind", k.label())]))
                .collect(),
        }
    }

    /// Fold a finished session's findings into the per-kind counters.
    pub fn count_reports(&self, reports: &[Report]) {
        for r in reports {
            self.reports_by_kind[report_kind_tag(r.kind) as usize].inc();
        }
    }

    /// Materialise a snapshot; `queue_depths` and `session_events` come
    /// from the caller (pool state and connection state respectively).
    pub fn snapshot(&self, queue_depths: Vec<u32>, session_events: u64) -> StatsSnapshot {
        StatsSnapshot {
            sessions_started: self.sessions_started.get(),
            sessions_finished: self.sessions_finished.get(),
            events_received: self.events_received.get(),
            busy_rejections: self.busy_rejections.get(),
            reports_by_kind: std::array::from_fn(|i| self.reports_by_kind[i].get()),
            queue_depths,
            session_events,
        }
    }
}

impl Default for GlobalStats {
    fn default() -> Self {
        GlobalStats::new(&Registry::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::wire::REPORT_KIND_COUNT;

    #[test]
    fn stats_and_registry_share_cells() {
        let reg = Registry::new();
        let stats = GlobalStats::new(&reg);
        stats.sessions_started.inc();
        stats.events_received.add(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("arbalest_server_sessions_started_total", &[]), Some(1));
        assert_eq!(snap.counter("arbalest_server_events_received_total", &[]), Some(42));
        assert_eq!(stats.reports_by_kind.len(), REPORT_KIND_COUNT);
    }
}
