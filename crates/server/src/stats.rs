//! Server-wide counters behind relaxed atomics (the `STATS` frame's
//! source of truth).

use crate::proto::StatsSnapshot;
use arbalest_offload::report::Report;
use arbalest_offload::wire::report_kind_tag;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Monotonic counters shared by every connection and shard.
#[derive(Debug, Default)]
pub struct GlobalStats {
    /// Sessions opened (`Hello`).
    pub sessions_started: AtomicU64,
    /// Sessions closed (`Finish` or abort).
    pub sessions_finished: AtomicU64,
    /// Events accepted into shard queues.
    pub events_received: AtomicU64,
    /// Event batches refused with `Busy`.
    pub busy_rejections: AtomicU64,
    /// Reports from finished sessions, indexed by
    /// [`report_kind_tag`].
    pub reports_by_kind: [AtomicU64; 7],
}

impl GlobalStats {
    /// Fold a finished session's findings into the per-kind counters.
    pub fn count_reports(&self, reports: &[Report]) {
        for r in reports {
            self.reports_by_kind[report_kind_tag(r.kind) as usize].fetch_add(1, Relaxed);
        }
    }

    /// Materialise a snapshot; `queue_depths` and `session_events` come
    /// from the caller (pool state and connection state respectively).
    pub fn snapshot(&self, queue_depths: Vec<u32>, session_events: u64) -> StatsSnapshot {
        StatsSnapshot {
            sessions_started: self.sessions_started.load(Relaxed),
            sessions_finished: self.sessions_finished.load(Relaxed),
            events_received: self.events_received.load(Relaxed),
            busy_rejections: self.busy_rejections.load(Relaxed),
            reports_by_kind: std::array::from_fn(|i| self.reports_by_kind[i].load(Relaxed)),
            queue_depths,
            session_events,
        }
    }
}
