//! `arbalest-server` — a long-lived analysis service for ARBALEST traces.
//!
//! The instrumentation tier ([`arbalest_offload::trace`]) records what a
//! program *did*; this crate moves the expensive half — VSM state
//! tracking and race detection — out of the monitored process entirely.
//! Clients stream serialized [`TraceEvent`](arbalest_offload::trace::TraceEvent)
//! batches over TCP or a Unix-domain socket; the server shards sessions
//! across analysis worker threads and streams back the same
//! [`Report`](arbalest_offload::report::Report)s an in-process
//! [`arbalest_core::replay`] would produce — byte-identical, because both
//! paths drive the same detector over the same event values.
//!
//! Layering:
//!
//! * [`proto`] — framed wire protocol (length-prefixed, versioned,
//!   std-only) shared by client and server.
//! * [`shard`] — bounded worker queues owning per-session detector state,
//!   run under watchdog supervision with per-session resource budgets.
//! * [`supervise`] — typed session-failure reasons and the watchdog /
//!   resource-governor metrics.
//! * [`stats`] — global counters behind the `Stats` frame.
//! * [`server`] — listeners, connection hardening (idle reaper, request
//!   deadlines, frame/inflight limits), graceful drain.
//! * [`tracesink`] — per-session causal-span collection behind
//!   `--trace-dir` and the `TraceSnapshot` admin frame.
//! * [`client`] — the client library used by `arbalest submit` and tests.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod shard;
pub mod stats;
pub mod server;
pub mod supervise;
pub mod tracesink;

pub use client::Client;
pub use proto::{Frame, ProtoError, StatsSnapshot, MAX_FRAME, WIRE_VERSION};
pub use server::{ListenAddr, Server, ServerConfig};
pub use supervise::{SessionFailure, SuperviseMetrics};
