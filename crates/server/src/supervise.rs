//! Supervision and resource governance for the analysis service.
//!
//! PR 1 made the *offload runtime* fault-tolerant; this module does the
//! same for the *service*: it defines the typed reasons a server may
//! terminate a session ([`SessionFailure`] — carried on the wire by
//! `Frame::SessionFailed`), and the observability handles for the shard
//! watchdog (panic quarantine + worker restart) and the per-session
//! resource governor (evict-to-May degradation, budget termination).
//!
//! The session lifecycle under supervision:
//!
//! ```text
//!            events                   budget breach          2nd breach /
//!   Live ────────────▶ Live ────────────────────────▶ Degraded ─────────▶ Quarantined
//!    │                                (evict-to-May)      │    panic          │
//!    │ panic anywhere in the shard worker                 │ Finish            │ Finish/Events
//!    ▼                                                    ▼                   ▼
//!   Quarantined(ShardPanic)                 SessionFailed(BudgetExceeded)  SessionFailed(..)
//! ```
//!
//! A quarantined session's queued events are drained and dropped (counted,
//! never analysed); every reply it would have received becomes the typed
//! failure. Other sessions on the same shard are untouched — the worker
//! thread is restarted with its queue intact.

use arbalest_obs::{Counter, Registry};
use arbalest_offload::wire::{self, Cursor, WireError};

/// Why the server terminated a session (or connection) on its own
/// authority. Carried verbatim on the wire so clients see a *typed*
/// reason, not a free-form error string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFailure {
    /// The shard worker panicked while analysing this session's events.
    /// The session was quarantined and the worker thread restarted; all
    /// other sessions on the shard are unaffected.
    ShardPanic {
        /// Panic payload, best effort (`Any` payloads render as a stub).
        message: String,
    },
    /// The session's side-table footprint exceeded its byte budget even
    /// after evict-to-May degradation, or finished while degraded (a
    /// degraded session's findings are incomplete by construction, so the
    /// server refuses to pass them off as sound).
    BudgetExceeded {
        /// Bytes attributed to the session when the budget fired.
        used_bytes: u64,
        /// The configured `--max-session-bytes` budget.
        budget_bytes: u64,
    },
    /// The connection sent no frame for longer than the idle limit and
    /// was reaped.
    IdleTimeout {
        /// Configured idle limit in milliseconds.
        limit_ms: u64,
    },
    /// A frame started arriving but did not complete within the
    /// per-request deadline (stalled reader / slowloris defence).
    DeadlineExceeded {
        /// Configured request deadline in milliseconds.
        limit_ms: u64,
    },
}

impl SessionFailure {
    /// Stable metric label for this failure kind.
    pub fn label(&self) -> &'static str {
        match self {
            SessionFailure::ShardPanic { .. } => "shard_panic",
            SessionFailure::BudgetExceeded { .. } => "budget_exceeded",
            SessionFailure::IdleTimeout { .. } => "idle_timeout",
            SessionFailure::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SessionFailure::ShardPanic { message } => {
                out.push(0);
                wire::put_str(out, message);
            }
            SessionFailure::BudgetExceeded { used_bytes, budget_bytes } => {
                out.push(1);
                out.extend_from_slice(&used_bytes.to_le_bytes());
                out.extend_from_slice(&budget_bytes.to_le_bytes());
            }
            SessionFailure::IdleTimeout { limit_ms } => {
                out.push(2);
                out.extend_from_slice(&limit_ms.to_le_bytes());
            }
            SessionFailure::DeadlineExceeded { limit_ms } => {
                out.push(3);
                out.extend_from_slice(&limit_ms.to_le_bytes());
            }
        }
    }

    pub(crate) fn decode(cur: &mut Cursor<'_>) -> Result<SessionFailure, WireError> {
        Ok(match cur.u8()? {
            0 => SessionFailure::ShardPanic { message: cur.string()? },
            1 => SessionFailure::BudgetExceeded { used_bytes: cur.u64()?, budget_bytes: cur.u64()? },
            2 => SessionFailure::IdleTimeout { limit_ms: cur.u64()? },
            3 => SessionFailure::DeadlineExceeded { limit_ms: cur.u64()? },
            tag => return Err(WireError::BadTag { what: "SessionFailure", tag }),
        })
    }
}

impl std::fmt::Display for SessionFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionFailure::ShardPanic { message } => {
                write!(f, "analysis shard panicked ({message}); session quarantined")
            }
            SessionFailure::BudgetExceeded { used_bytes, budget_bytes } => write!(
                f,
                "session exceeded its memory budget ({used_bytes} of {budget_bytes} bytes)"
            ),
            SessionFailure::IdleTimeout { limit_ms } => {
                write!(f, "connection idle past the {limit_ms} ms limit")
            }
            SessionFailure::DeadlineExceeded { limit_ms } => {
                write!(f, "request exceeded the {limit_ms} ms deadline")
            }
        }
    }
}

/// Registry-backed counters for the watchdog and resource governor.
/// Cloned into every shard worker; the cells are shared.
#[derive(Debug, Clone)]
pub struct SuperviseMetrics {
    /// Shard worker threads restarted after an escaped panic
    /// (`arbalest_server_shard_restarts_total`).
    pub shard_restarts: Counter,
    /// Sessions quarantined, by reason
    /// (`arbalest_server_sessions_quarantined_total{reason}`).
    pub quarantined_panic: Counter,
    /// Budget-reason leg of the quarantine counter family.
    pub quarantined_budget: Counter,
    /// Evict-to-May degradations performed by the governor
    /// (`arbalest_server_budget_evictions_total`).
    pub budget_evictions: Counter,
    /// Events discarded because their session was already quarantined
    /// (`arbalest_server_quarantined_events_dropped_total`).
    pub events_dropped: Counter,
}

impl SuperviseMetrics {
    /// Register the supervision counters in `reg`.
    pub fn new(reg: &Registry) -> SuperviseMetrics {
        SuperviseMetrics {
            shard_restarts: reg.counter("arbalest_server_shard_restarts_total", &[]),
            quarantined_panic: reg
                .counter("arbalest_server_sessions_quarantined_total", &[("reason", "panic")]),
            quarantined_budget: reg
                .counter("arbalest_server_sessions_quarantined_total", &[("reason", "budget")]),
            budget_evictions: reg.counter("arbalest_server_budget_evictions_total", &[]),
            events_dropped: reg.counter("arbalest_server_quarantined_events_dropped_total", &[]),
        }
    }
}

/// Render a `catch_unwind` payload for the typed reply.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_round_trip_through_the_wire_encoding() {
        for failure in [
            SessionFailure::ShardPanic { message: "index out of bounds".into() },
            SessionFailure::BudgetExceeded { used_bytes: 1 << 30, budget_bytes: 1 << 20 },
            SessionFailure::IdleTimeout { limit_ms: 120_000 },
            SessionFailure::DeadlineExceeded { limit_ms: 30_000 },
        ] {
            let mut bytes = Vec::new();
            failure.encode(&mut bytes);
            let mut cur = Cursor::new(&bytes);
            assert_eq!(SessionFailure::decode(&mut cur).unwrap(), failure);
            assert!(cur.is_empty());
        }
    }

    #[test]
    fn bad_failure_tag_is_typed() {
        let mut cur = Cursor::new(&[9u8]);
        assert!(matches!(
            SessionFailure::decode(&mut cur),
            Err(WireError::BadTag { what: "SessionFailure", tag: 9 })
        ));
    }
}
