//! The `arbalest-serve` service: listeners, connection handling, and
//! lifecycle.
//!
//! One thread accepts connections (TCP or Unix-domain); each connection
//! gets a handler thread that speaks the frame protocol and routes work
//! into the [`ShardPool`]. Shutdown is graceful by construction: the
//! `Shutdown` frame (or [`ServerHandle::stop`]) stops the accept loop,
//! wakes every handler out of its next read timeout, and then drains the
//! shard queues to completion before the workers exit.

use crate::proto::{Frame, ProtoError, WIRE_VERSION};
use crate::shard::ShardPool;
use crate::stats::GlobalStats;
use crate::tracesink::TraceSink;
use arbalest_core::{AnalysisSession, ArbalestConfig};
use arbalest_obs::{Counter, Registry};
use arbalest_store::{decode_session_snapshot, SessionLog, Store};
use arbalest_sync::{Condvar, Mutex};
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where the server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP socket address like `127.0.0.1:7979`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl ListenAddr {
    /// Classify an address string: `unix:<path>`, or anything containing a
    /// `/`, is a Unix socket path; everything else is a TCP address.
    pub fn parse(s: &str) -> ListenAddr {
        if let Some(path) = s.strip_prefix("unix:") {
            ListenAddr::Unix(PathBuf::from(path))
        } else if s.contains('/') {
            ListenAddr::Unix(PathBuf::from(s))
        } else {
            ListenAddr::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(a) => write!(f, "{a}"),
            ListenAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Tuning knobs for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of analysis worker shards (clamped to 1..=64).
    pub shards: usize,
    /// Bound on each shard's queued event batches; beyond it, clients get
    /// `Busy`.
    pub queue_cap: usize,
    /// Detector configuration used for every session.
    pub detector: ArbalestConfig,
    /// Metrics registry shared by the wire layer, shard pool, and every
    /// session detector. Enabled by default; substitute
    /// [`Registry::disabled`] to run without instrumentation.
    pub metrics: Registry,
    /// How long shutdown waits for in-flight connections to finish before
    /// abandoning them (the shard queues still drain afterwards). When the
    /// deadline fires with handlers still active, the
    /// `arbalest_server_forced_aborts_total` counter records it.
    pub drain_deadline: Duration,
    /// A connection that sends no frame for this long is reaped with a
    /// typed `SessionFailed(IdleTimeout)`; its session is aborted.
    pub idle_timeout: Duration,
    /// Once the first byte of a frame has arrived, the rest must follow
    /// within this deadline (stalled-sender defence); violators are reaped
    /// with `SessionFailed(DeadlineExceeded)`.
    pub request_deadline: Duration,
    /// Per-instance frame-size ceiling (clamped to the protocol's
    /// [`MAX_FRAME`](crate::proto::MAX_FRAME)); larger announcements are
    /// refused before any allocation.
    pub max_frame: u32,
    /// Cap on a session's queued-but-unanalysed events; batches beyond it
    /// answer `Busy`. `0` disables the cap.
    pub max_inflight_events: u64,
    /// Per-session byte budget (detector side tables + event backlog).
    /// First breach degrades the session via evict-to-May; an incurable
    /// breach terminates it with `SessionFailed(BudgetExceeded)`. `0`
    /// disables the governor.
    pub max_session_bytes: u64,
    /// Worker-side fault injection (shard panics, synthetic budget
    /// pressure) for chaos soaks. Disabled by default.
    pub faults: arbalest_offload::fault::FaultConfig,
    /// Durable-session data directory. `Some` turns on write-ahead
    /// logging of every accepted batch, snapshot/compaction per the
    /// `store` triggers, and crash recovery of unfinished sessions at
    /// startup. `None` (default) keeps the pre-durability behaviour.
    pub data_dir: Option<PathBuf>,
    /// Durability tuning (segment size, fsync policy, snapshot triggers,
    /// storage fault injection); only read when `data_dir` is set.
    pub store: arbalest_store::StoreConfig,
    /// Per-session trace output directory. `Some` makes the server write
    /// `session-<id>.json` (Chrome trace-event / Perfetto format) for
    /// every cleanly finished session whose client stamped its batches
    /// with span contexts. `None` (default) still collects spans for the
    /// `TraceSnapshot` frame but writes no files.
    pub trace_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            queue_cap: 128,
            detector: ArbalestConfig::default(),
            metrics: Registry::new(),
            drain_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(120),
            request_deadline: Duration::from_secs(30),
            max_frame: crate::proto::MAX_FRAME,
            max_inflight_events: 0,
            max_session_bytes: 0,
            faults: arbalest_offload::fault::FaultConfig::disabled(),
            data_dir: None,
            store: arbalest_store::StoreConfig::default(),
            trace_dir: None,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Either accepted transport, unified for the handler.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, d: Duration) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(Some(d)),
            Stream::Unix(s) => s.set_read_timeout(Some(d)),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

struct Shared {
    stop: AtomicBool,
    stop_signal: (Mutex<bool>, Condvar),
    active_connections: AtomicUsize,
    stats: Arc<GlobalStats>,
    registry: Registry,
    wire_metrics: WireMetrics,
    /// Durable-session store; `None` when `data_dir` is unset.
    store: Option<Arc<Store>>,
    /// Detector configuration, needed to recover sessions that have no
    /// snapshot yet.
    detector: ArbalestConfig,
    /// Sessions currently bound to a live connection. Resuming one of
    /// these is refused — two writers on one WAL would interleave.
    attached: Mutex<HashSet<u64>>,
    /// Where completed trace spans are collected (per session + recent).
    sink: Arc<TraceSink>,
    /// Per-session trace file output directory, when configured.
    trace_dir: Option<PathBuf>,
    /// Connection-hardening knobs, copied out of the `ServerConfig`.
    idle_timeout: Duration,
    request_deadline: Duration,
    max_frame: u32,
    /// Accept-loop failures (`arbalest_server_accept_errors_total`).
    accept_errors: Counter,
    /// Shutdowns whose drain deadline fired with work still in flight
    /// (`arbalest_server_forced_aborts_total`).
    forced_aborts: Counter,
    /// Connections reaped by the idle/deadline watchdog, by reason
    /// (`arbalest_server_connections_reaped_total{reason}`).
    reaped_idle: Counter,
    reaped_deadline: Counter,
}

/// Wire-layer counters shared by every connection handler.
struct WireMetrics {
    /// Decoded client frames, labelled by frame type.
    frames: [(&'static str, Counter); 9],
    /// Bytes read off client connections.
    rx_bytes: Counter,
}

impl WireMetrics {
    fn new(reg: &Registry) -> WireMetrics {
        let c = |ty| reg.counter("arbalest_server_frames_total", &[("type", ty)]);
        WireMetrics {
            frames: [
                "hello",
                "events",
                "finish",
                "stats",
                "shutdown",
                "metrics",
                "export",
                "import",
                "trace_snapshot",
            ]
            .map(|ty| (ty, c(ty))),
            rx_bytes: reg.counter("arbalest_server_rx_bytes_total", &[]),
        }
    }

    fn count_frame(&self, frame: &Frame) {
        let label = frame.label();
        if let Some((_, counter)) = self.frames.iter().find(|(ty, _)| *ty == label) {
            counter.inc();
        }
    }
}

/// [`Read`] adapter that feeds the received byte count into the global
/// counter and a per-read local cell (the watchdog uses the local count
/// to tell "idle between frames" from "stalled mid-frame").
struct CountingReader<'a, R> {
    inner: &'a mut R,
    rx_bytes: &'a Counter,
    local: &'a std::sync::atomic::AtomicU64,
}

impl<R: Read> Read for CountingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.rx_bytes.add(n as u64);
        self.local.fetch_add(n as u64, SeqCst);
        Ok(n)
    }
}

impl Shared {
    fn request_stop(&self) {
        self.stop.store(true, SeqCst);
        let (lock, cv) = &self.stop_signal;
        *lock.lock() = true;
        cv.notify_all();
    }

    fn stopping(&self) -> bool {
        self.stop.load(SeqCst)
    }
}

/// A running server. [`Server::stop`] (or drop) performs the graceful
/// drain: stop accepting, let handlers finish, drain shard queues, join.
pub struct Server {
    shared: Arc<Shared>,
    pool: Arc<ShardPool>,
    accept_thread: Option<JoinHandle<()>>,
    local_addr: ListenAddr,
    unix_path: Option<PathBuf>,
    drain_deadline: Duration,
}

impl Server {
    /// Bind `addr` and start accepting. For `Tcp("host:0")` the actual
    /// bound port is reported by [`Server::local_addr`].
    pub fn start(addr: &ListenAddr, cfg: ServerConfig) -> std::io::Result<Server> {
        let (listener, local_addr, unix_path) = match addr {
            ListenAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let local = ListenAddr::Tcp(l.local_addr()?.to_string());
                l.set_nonblocking(true)?;
                (Listener::Tcp(l), local, None)
            }
            ListenAddr::Unix(path) => {
                // A previous instance's socket file would make bind fail;
                // only ever remove something that *is* a socket.
                if let Ok(meta) = std::fs::symlink_metadata(path) {
                    use std::os::unix::fs::FileTypeExt;
                    if meta.file_type().is_socket() {
                        let _ = std::fs::remove_file(path);
                    }
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                (Listener::Unix(l), ListenAddr::Unix(path.clone()), Some(path.clone()))
            }
        };

        let registry = cfg.metrics.clone();
        let stats = Arc::new(GlobalStats::new(&registry));
        let store = match &cfg.data_dir {
            Some(dir) => Some(Arc::new(
                Store::open(dir, cfg.store.clone(), &registry)
                    .map_err(|e| std::io::Error::other(format!("open {}: {e}", dir.display())))?,
            )),
            None => None,
        };
        let reaped = |reason| {
            registry.counter("arbalest_server_connections_reaped_total", &[("reason", reason)])
        };
        let sink = Arc::new(TraceSink::new(&registry));
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            stop_signal: (Mutex::new(false), Condvar::new()),
            active_connections: AtomicUsize::new(0),
            stats: stats.clone(),
            wire_metrics: WireMetrics::new(&registry),
            registry: registry.clone(),
            store: store.clone(),
            detector: cfg.detector.clone(),
            attached: Mutex::new(HashSet::new()),
            sink: sink.clone(),
            trace_dir: cfg.trace_dir.clone(),
            idle_timeout: cfg.idle_timeout,
            request_deadline: cfg.request_deadline,
            max_frame: cfg.max_frame,
            accept_errors: registry.counter("arbalest_server_accept_errors_total", &[]),
            forced_aborts: registry.counter("arbalest_server_forced_aborts_total", &[]),
            reaped_idle: reaped("idle"),
            reaped_deadline: reaped("deadline"),
        });
        let pool = Arc::new(ShardPool::new(
            cfg.shards,
            cfg.queue_cap,
            cfg.detector.clone(),
            stats,
            &registry,
            crate::shard::ShardLimits {
                max_session_bytes: cfg.max_session_bytes,
                max_inflight_events: cfg.max_inflight_events,
                faults: cfg.faults,
            },
            store.clone(),
            sink.clone(),
        ));

        // Crash recovery: every session directory is an unfinished session.
        // Rebuild each from snapshot + WAL tail and adopt it into the pool
        // so a resuming client (`Hello { resume }`) finds it live. A
        // session that fails to recover is left on disk for inspection and
        // counted; it never becomes wrong in-memory state. The whole pass
        // is one `server_recovery` trace with an `adopt_session` child per
        // recovered session, so a startup stall is attributable.
        if let Some(store) = &store {
            let recovery_span = registry.span(registry.span_name("server_recovery"));
            let recovery_ctx = recovery_span.context();
            let recovered = store
                .recover_all(&cfg.detector, &registry)
                .map_err(|e| std::io::Error::other(format!("recover sessions: {e}")))?;
            for (id, result) in recovered {
                match result {
                    Ok(rec) => {
                        let adopt =
                            registry.span_child(registry.span_name("adopt_session"), recovery_ctx);
                        pool.adopt_session(id, rec.session);
                        if let Some(ev) = adopt.end() {
                            sink.record(id, ev);
                        }
                    }
                    Err(e) => registry
                        .counter(
                            "arbalest_store_recovery_failures_total",
                            &[("error", e.label())],
                        )
                        .inc(),
                }
            }
            if let Some(ev) = recovery_span.end() {
                sink.record_global(ev);
            }
        }

        let accept_shared = shared.clone();
        let accept_pool = pool.clone();
        let accept_thread = std::thread::Builder::new()
            .name("arbalest-accept".into())
            .spawn(move || accept_loop(listener, &accept_shared, &accept_pool))?;

        Ok(Server {
            shared,
            pool,
            accept_thread: Some(accept_thread),
            local_addr,
            unix_path,
            drain_deadline: cfg.drain_deadline,
        })
    }

    /// The bound address (with the real port for `:0` binds).
    pub fn local_addr(&self) -> &ListenAddr {
        &self.local_addr
    }

    /// Block until some connection sends a `Shutdown` frame.
    pub fn wait_for_shutdown(&self) {
        let (lock, cv) = &self.shared.stop_signal;
        let mut stopped = lock.lock();
        while !*stopped {
            cv.wait(&mut stopped);
        }
    }

    /// Stop accepting, wake every handler, drain the shard queues, and
    /// join all threads.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.request_stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Handlers notice the stop flag at their next read timeout
        // (≤100 ms); wait for them so no one touches the pool afterwards.
        let deadline = std::time::Instant::now() + self.drain_deadline;
        while self.shared.active_connections.load(SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        if self.shared.active_connections.load(SeqCst) > 0 {
            // The drain deadline fired with handlers (and possibly their
            // queued jobs) still in flight: record the forced abort so
            // operators can tell "clean drain" from "gave up waiting".
            self.shared.forced_aborts.inc();
        }
        self.pool.shutdown();
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: Listener, shared: &Arc<Shared>, pool: &Arc<ShardPool>) {
    const POLL: Duration = Duration::from_millis(20);
    const MAX_BACKOFF: Duration = Duration::from_secs(1);
    // Real accept errors (fd exhaustion, aborted handshakes in a storm)
    // back off exponentially instead of hot-looping at the poll interval;
    // any successful accept resets the backoff.
    let mut backoff = POLL;
    loop {
        if shared.stopping() {
            break;
        }
        let accepted = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true); // replies are single writes
                Stream::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match accepted {
            Ok(stream) => {
                backoff = POLL;
                let conn_shared = shared.clone();
                let conn_pool = pool.clone();
                shared.active_connections.fetch_add(1, SeqCst);
                let spawned = std::thread::Builder::new()
                    .name("arbalest-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared, &conn_pool);
                        conn_shared.active_connections.fetch_sub(1, SeqCst);
                    });
                if spawned.is_err() {
                    shared.active_connections.fetch_sub(1, SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => {
                shared.accept_errors.inc();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
        }
    }
}

/// Why the connection watchdog gave up on a read.
enum ReapReason {
    Idle,
    Deadline,
}

/// Rebuild a resumed session's state. With a durable store and an
/// on-disk directory, disk is the authority: drop any in-memory state
/// and re-derive it from snapshot + WAL so the append point and the
/// analyzer agree exactly. Otherwise fall back to live pool state
/// (covers `Import`ed sessions on storeless servers).
fn resume_session(
    shared: &Arc<Shared>,
    pool: &Arc<ShardPool>,
    id: u64,
) -> Result<(u64, Option<SessionLog>), String> {
    if let Some(store) = &shared.store {
        if store.session_dir(id).exists() {
            pool.drop_session(id);
            let rec = store
                .recover_session(id, &shared.detector, &shared.registry)
                .map_err(|e| format!("recover session {id}: {e}"))?;
            let events = rec.events;
            pool.adopt_session(id, rec.session);
            let log = store
                .open_log(id, events)
                .map_err(|e| format!("open WAL for session {id}: {e}"))?;
            return Ok((events, Some(log)));
        }
    }
    match pool.session_events(id) {
        Some(n) => Ok((n, None)),
        None => Err(format!("unknown session {id}")),
    }
}

fn handle_connection(mut stream: Stream, shared: &Arc<Shared>, pool: &Arc<ShardPool>) {
    let _ = stream.set_read_timeout(Duration::from_millis(100));
    let mut session: Option<u64> = None;
    let mut session_events: u64 = 0;
    // WAL append handle for the connection's session (durable mode only).
    let mut log: Option<SessionLog> = None;

    loop {
        // The watchdog rides the 100 ms read-timeout polls: while no byte
        // of the next frame has arrived the idle clock runs; from the
        // first byte on, the request deadline runs (a sender stalling
        // mid-frame cannot pin the handler forever).
        let reaped = std::cell::Cell::new(None::<ReapReason>);
        let frame = {
            let stop_shared = shared.clone();
            let local = std::sync::atomic::AtomicU64::new(0);
            let started = std::time::Instant::now();
            let mut first_byte_at: Option<std::time::Instant> = None;
            let mut counted = CountingReader {
                inner: &mut stream,
                rx_bytes: &shared.wire_metrics.rx_bytes,
                local: &local,
            };
            let reaped = &reaped;
            let local = &local;
            let mut keep_waiting = move || {
                if stop_shared.stopping() {
                    return false;
                }
                let now = std::time::Instant::now();
                if local.load(SeqCst) == 0 {
                    if now.duration_since(started) > stop_shared.idle_timeout {
                        reaped.set(Some(ReapReason::Idle));
                        return false;
                    }
                } else {
                    let first = *first_byte_at.get_or_insert(now);
                    if now.duration_since(first) > stop_shared.request_deadline {
                        reaped.set(Some(ReapReason::Deadline));
                        return false;
                    }
                }
                true
            };
            Frame::read_from_limited(&mut counted, &mut keep_waiting, shared.max_frame)
        };
        let frame = match frame {
            Ok(f) => f,
            Err(ProtoError::ShuttingDown) => match reaped.take() {
                // A reaped connection gets the typed reason (best effort —
                // it may be gone) before the close; its session is aborted
                // below like any disconnect.
                Some(ReapReason::Idle) => {
                    shared.reaped_idle.inc();
                    let failure = crate::supervise::SessionFailure::IdleTimeout {
                        limit_ms: shared.idle_timeout.as_millis() as u64,
                    };
                    let _ = Frame::SessionFailed(failure).write_to(&mut stream);
                    break;
                }
                Some(ReapReason::Deadline) => {
                    shared.reaped_deadline.inc();
                    let failure = crate::supervise::SessionFailure::DeadlineExceeded {
                        limit_ms: shared.request_deadline.as_millis() as u64,
                    };
                    let _ = Frame::SessionFailed(failure).write_to(&mut stream);
                    break;
                }
                None => break, // server shutdown
            },
            Err(ProtoError::Io(_)) => break, // peer went away
            Err(e) => {
                // Malformed input: count it (decode errors are rare, so
                // the lazy registry lookup is fine), answer with a typed
                // error, then close. Mid-frame truncation lands here too
                // (WireError::Truncated); the reply write fails silently
                // because the peer is already gone.
                if let ProtoError::Wire(we) = &e {
                    shared
                        .registry
                        .counter("arbalest_server_decode_errors_total", &[("error", we.label())])
                        .inc();
                }
                let _ = Frame::Error { message: e.to_string() }.write_to(&mut stream);
                break;
            }
        };
        shared.wire_metrics.count_frame(&frame);

        let outcome: Result<Frame, String> = match frame {
            Frame::Hello { version, resume } => {
                if version != WIRE_VERSION {
                    Err(format!("wire version {version} not supported (server speaks {WIRE_VERSION})"))
                } else if session.is_some() {
                    Err("session already open on this connection".into())
                } else if shared.stopping() {
                    Err("server is shutting down".into())
                } else {
                    match resume {
                        None => {
                            let id = pool.open_session();
                            // Before acking, make sure the WAL is
                            // writable: an event acked without a durable
                            // home would be a silent durability hole.
                            let opened = match &shared.store {
                                Some(store) => store
                                    .open_log(id, 0)
                                    .map(Some)
                                    .map_err(|e| format!("open WAL for session {id}: {e}")),
                                None => Ok(None),
                            };
                            match opened {
                                Ok(l) => {
                                    shared.attached.lock().insert(id);
                                    session = Some(id);
                                    session_events = 0;
                                    log = l;
                                    Ok(Frame::HelloAck {
                                        version: WIRE_VERSION,
                                        shards: pool.shards() as u16,
                                        session: id,
                                    })
                                }
                                Err(message) => Err(message),
                            }
                        }
                        Some(id) => {
                            // Two connections on one session would
                            // interleave WAL appends; first writer wins.
                            if !shared.attached.lock().insert(id) {
                                Err(format!("session {id} is attached to another connection"))
                            } else {
                                match resume_session(shared, pool, id) {
                                    Ok((events, l)) => {
                                        session = Some(id);
                                        session_events = events;
                                        log = l;
                                        Ok(Frame::HelloAck {
                                            version: WIRE_VERSION,
                                            shards: pool.shards() as u16,
                                            session: id,
                                        })
                                    }
                                    Err(message) => {
                                        shared.attached.lock().remove(&id);
                                        Err(message)
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Frame::Events { events, ctx } => match session {
                None => Err("Events before Hello".into()),
                Some(id) => {
                    // A quarantined session (shard panic, budget) answers
                    // the typed failure instead of silently eating events.
                    if let Some(failure) = pool.session_failure(id) {
                        Ok(Frame::SessionFailed(failure))
                    } else {
                        // A traced batch: re-record the client-minted
                        // context verbatim (`span_at`) as the
                        // `client_submit` root of the server-side tree, so
                        // the WAL append and the shard job parent to the
                        // exact ids the client stamped on the wire.
                        let root = ctx.filter(|c| c.is_traced());
                        let submit_span = root.map(|c| {
                            shared.registry.span_at(shared.registry.span_name("client_submit"), c)
                        });
                        // Clone for the WAL before the pool consumes the
                        // batch; only durable sessions pay the copy. The
                        // pool goes first so a `Busy` refusal logs
                        // nothing; the ack waits for the append, so a
                        // crash can only lose *unacked* batches.
                        let copy = log.as_ref().map(|_| events.clone());
                        let outcome = match pool.submit_events(id, events, root) {
                            Ok(accepted) => {
                                session_events += accepted as u64;
                                let appended = match (log.as_mut(), copy) {
                                    (Some(l), Some(batch)) => {
                                        let wal_span = root.map(|c| {
                                            shared.registry.span_child(
                                                shared.registry.span_name("wal_append"),
                                                c,
                                            )
                                        });
                                        let appended = l.append(&batch).map(|()| {
                                            if l.snapshot_due() {
                                                pool.submit_snapshot(id, root);
                                                l.mark_snapshot();
                                            }
                                        });
                                        if let Some(ev) = wal_span.and_then(|s| s.end()) {
                                            shared.sink.record(id, ev);
                                        }
                                        appended
                                    }
                                    _ => Ok(()),
                                };
                                match appended {
                                    Ok(()) => Ok(Frame::EventsAck { accepted: accepted as u32 }),
                                    // The batch reached the analyzer but
                                    // not the log: never ack what a crash
                                    // could lose. The client resubmits it
                                    // after resuming.
                                    Err(e) => Err(format!("WAL append failed: {e}")),
                                }
                            }
                            Err(full) => Ok(Frame::Busy { queue_depth: full.depth }),
                        };
                        if let Some(ev) = submit_span.and_then(|s| s.end()) {
                            shared.sink.record(id, ev);
                        }
                        outcome
                    }
                }
            },
            Frame::Finish => match session.take() {
                None => Err("Finish before Hello".into()),
                Some(id) => {
                    let result = match pool.submit_finish(id).recv() {
                        Ok(r) => Ok(r),
                        // The worker died mid-Finish (reply sender dropped
                        // by the unwind). The supervisor has already
                        // quarantined the session and restarted the worker
                        // — ask again for the typed reason.
                        Err(_) => pool.submit_finish(id).recv(),
                    };
                    shared.attached.lock().remove(&id);
                    log = None;
                    match result {
                        Ok(Ok(reports)) => {
                            // Clean finish: the durable record has served
                            // its purpose.
                            if let Some(store) = &shared.store {
                                let _ = store.remove_session(id);
                            }
                            // By FIFO the worker finished every traced
                            // batch before answering Finish, so the
                            // session's span tree is complete: write it
                            // out (if a trace dir is configured) and free
                            // the buffer either way.
                            let spans = shared.sink.take_session(id);
                            if let Some(dir) = &shared.trace_dir {
                                if !spans.is_empty() {
                                    let _ = std::fs::create_dir_all(dir);
                                    let _ = std::fs::write(
                                        dir.join(format!("session-{id}.json")),
                                        arbalest_obs::chrome_trace_json(&spans),
                                    );
                                }
                            }
                            Ok(Frame::Reports(reports))
                        }
                        Ok(Err(failure)) => {
                            shared.sink.drop_session(id);
                            Ok(Frame::SessionFailed(failure))
                        }
                        Err(_) => Err("analysis shard terminated".into()),
                    }
                }
            },
            Frame::Export => match session {
                None => Err("Export before Hello".into()),
                Some(id) => {
                    let result = match pool.submit_export(id).recv() {
                        Ok(r) => Ok(r),
                        // Same two-shot retry as Finish: a worker unwind
                        // drops the reply sender but the supervisor
                        // restarts the shard.
                        Err(_) => pool.submit_export(id).recv(),
                    };
                    match result {
                        Ok(Ok(state)) => Ok(Frame::ExportReply { state }),
                        Ok(Err(failure)) => Ok(Frame::SessionFailed(failure)),
                        Err(_) => Err("analysis shard terminated".into()),
                    }
                }
            },
            Frame::Import { state } => {
                if shared.stopping() {
                    Err("server is shutting down".into())
                } else {
                    // Validate fully before any state is created; a
                    // rejected import leaves no trace.
                    match decode_session_snapshot(&state)
                        .map_err(|e| format!("import rejected: {e}"))
                        .and_then(|snap| {
                            AnalysisSession::from_snapshot(&snap, shared.registry.clone())
                                .map(|restored| (snap, restored))
                                .map_err(|e| format!("import rejected: {e}"))
                        }) {
                        Err(message) => Err(message),
                        Ok((snap, restored)) => {
                            let id = pool.allocate_session_id();
                            // Imported sessions become durable immediately
                            // so a crash before the first resume still
                            // recovers them.
                            let persisted = match &shared.store {
                                Some(store) => store
                                    .write_snapshot(id, &snap)
                                    .map(|_| ())
                                    .map_err(|e| format!("persist import: {e}")),
                                None => Ok(()),
                            };
                            match persisted {
                                Ok(()) => {
                                    pool.adopt_session(id, restored);
                                    // Not bound to this connection: the
                                    // client attaches via Hello{resume}.
                                    Ok(Frame::ImportReply { session: id })
                                }
                                Err(message) => Err(message),
                            }
                        }
                    }
                }
            }
            Frame::Stats => Ok(Frame::StatsReply(
                shared.stats.snapshot(pool.queue_depths(), session_events),
            )),
            Frame::Metrics => {
                // Refresh the queue-depth gauges so the export is current.
                let _ = pool.queue_depths();
                Ok(Frame::MetricsReply(shared.registry.snapshot().to_prometheus()))
            }
            Frame::TraceSnapshot => Ok(Frame::TraceSnapshotReply(shared.sink.recent())),
            Frame::Shutdown => {
                let _ = Frame::Ok.write_to(&mut stream);
                shared.request_stop();
                break;
            }
            // Server-role frames arriving at the server are a protocol
            // violation.
            Frame::HelloAck { .. }
            | Frame::EventsAck { .. }
            | Frame::Busy { .. }
            | Frame::Reports(_)
            | Frame::StatsReply(_)
            | Frame::Ok
            | Frame::Error { .. }
            | Frame::MetricsReply(_)
            | Frame::SessionFailed(_)
            | Frame::ExportReply { .. }
            | Frame::ImportReply { .. }
            | Frame::TraceSnapshotReply(_) => Err("client sent a server-role frame".into()),
        };

        let reply = match outcome {
            Ok(f) => f,
            Err(message) => Frame::Error { message },
        };
        if reply.write_to(&mut stream).is_err() {
            break;
        }
    }

    // A disconnect leaves acked WAL bytes durable (the resume point) even
    // under a lazy fsync policy.
    if let Some(mut l) = log.take() {
        let _ = l.sync();
    }
    // A session abandoned mid-stream must not leak detector state. Its
    // durable record (if any) stays on disk: that is what `--resume` and
    // startup recovery rebuild from.
    if let Some(id) = session {
        pool.submit_abort(id);
        shared.attached.lock().remove(&id);
        shared.sink.drop_session(id);
    }
}
