//! The framed wire protocol spoken between `arbalest submit` clients and
//! `arbalest serve`.
//!
//! Every message is one *frame*:
//!
//! ```text
//! ┌────────────┬──────────┬─────────────────────────┐
//! │ len: u32le │ type: u8 │ payload: len-1 bytes    │
//! └────────────┴──────────┴─────────────────────────┘
//! ```
//!
//! `len` counts the type byte plus the payload and is capped at
//! [`MAX_FRAME`]; a peer announcing a larger frame is cut off before any
//! allocation. Payload contents use the [`arbalest_offload::wire`]
//! primitives, so the event and report layouts are shared with trace
//! files. A session opens with `Hello` (which carries the wire version —
//! mismatches fail fast with a typed error), streams `Events` batches —
//! each acknowledged with `EventsAck`, or refused with `Busy` when the
//! session's shard queue is full — and closes with `Finish`, answered by
//! `Reports`. `Stats`, `Metrics`, and `Shutdown` are admin frames any
//! connection may send.

use crate::supervise::SessionFailure;
use arbalest_offload::report::Report;
use arbalest_offload::trace::TraceEvent;
use arbalest_offload::wire::{self, Cursor, WireError, REPORT_KIND_COUNT};
use arbalest_obs::{SpanContext, SpanEvent};
use std::io::{Read, Write};

pub use arbalest_offload::wire::WIRE_VERSION;

/// Hard ceiling on one frame's length field (type byte + payload). A
/// server may enforce a *lower* per-instance limit via
/// `ServerConfig::max_frame`; this constant bounds what the protocol
/// itself will ever admit.
pub const MAX_FRAME: u32 = 32 << 20;

/// Everything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure.
    Io(std::io::Error),
    /// Payload bytes failed to decode.
    Wire(WireError),
    /// The peer sent a frame that is illegal in the current state, or an
    /// unknown frame type.
    Unexpected(&'static str),
    /// The peer reported an error frame.
    Remote(String),
    /// The server terminated the session for a typed reason (shard panic,
    /// budget, idle reap, request deadline).
    Failed(SessionFailure),
    /// The server refused an event batch repeatedly; its queue stayed
    /// full past the client's retry budget.
    Overloaded,
    /// The client-side total deadline elapsed before the operation
    /// completed (see `Client::with_deadline`).
    DeadlineExceeded {
        /// The configured total deadline that elapsed.
        limit: std::time::Duration,
    },
    /// The server is draining for shutdown.
    ShuttingDown,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Wire(e) => write!(f, "malformed frame: {e}"),
            ProtoError::Unexpected(what) => write!(f, "unexpected frame: {what}"),
            ProtoError::Remote(msg) => write!(f, "server error: {msg}"),
            ProtoError::Failed(failure) => write!(f, "session failed: {failure}"),
            ProtoError::Overloaded => write!(f, "server stayed busy past the retry budget"),
            ProtoError::DeadlineExceeded { limit } => {
                write!(f, "client deadline of {limit:?} exceeded")
            }
            ProtoError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> Self {
        ProtoError::Wire(e)
    }
}

/// Counters returned by a `Stats` frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sessions opened since the server started.
    pub sessions_started: u64,
    /// Sessions that reached `Finish`.
    pub sessions_finished: u64,
    /// Events accepted into shard queues.
    pub events_received: u64,
    /// `Events` frames answered with `Busy`.
    pub busy_rejections: u64,
    /// Reports produced by finished sessions, indexed by
    /// [`wire::report_kind_tag`] (UUM, USD, BO, race, uninit, heap-BO,
    /// UAF).
    pub reports_by_kind: [u64; REPORT_KIND_COUNT],
    /// Current depth of each shard's job queue.
    pub queue_depths: Vec<u32>,
    /// Events fed so far to the *requesting* connection's session (0 when
    /// the connection has no open session).
    pub session_events: u64,
}

impl StatsSnapshot {
    /// Sessions opened but not yet finished.
    pub fn sessions_active(&self) -> u64 {
        self.sessions_started.saturating_sub(self.sessions_finished)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for v in [
            self.sessions_started,
            self.sessions_finished,
            self.events_received,
            self.busy_rejections,
            self.session_events,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in self.reports_by_kind {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.queue_depths.len() as u32).to_le_bytes());
        for d in &self.queue_depths {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<StatsSnapshot, WireError> {
        let mut s = StatsSnapshot {
            sessions_started: cur.u64()?,
            sessions_finished: cur.u64()?,
            events_received: cur.u64()?,
            busy_rejections: cur.u64()?,
            session_events: cur.u64()?,
            ..Default::default()
        };
        for slot in s.reports_by_kind.iter_mut() {
            *slot = cur.u64()?;
        }
        let n = cur.count("queue depths")?;
        s.queue_depths = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            s.queue_depths.push(cur.u32()?);
        }
        Ok(s)
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: open a session. Carries the client's wire version
    /// and, optionally, a durable session id to resume. A bare 2-byte
    /// payload (the pre-durability encoding) decodes as `resume: None`,
    /// so old clients keep working.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u16,
        /// Durable session id to resume after a server crash/restart.
        resume: Option<u64>,
    },
    /// Client → server: a batch of trace events for the open session.
    /// Optionally stamped with the client's [`SpanContext`] for the
    /// submit, so server-side work (shard job, WAL append, detector feed)
    /// joins the client's causal trace tree. A bare event-batch payload
    /// (the pre-tracing encoding) decodes as `ctx: None`, so old clients
    /// keep working.
    Events {
        /// The trace events.
        events: Vec<TraceEvent>,
        /// Client-minted causal identity of this submit, if tracing.
        ctx: Option<SpanContext>,
    },
    /// Client → server: end of stream; request the session's reports.
    Finish,
    /// Client → server: request counters.
    Stats,
    /// Client → server: drain all queues and stop the server.
    Shutdown,
    /// Client → server: request the full metrics registry rendered as
    /// Prometheus text exposition format.
    Metrics,
    /// Client → server: serialize the open session's full analysis state
    /// (the versioned snapshot bytes) for migration. Non-destructive —
    /// the session keeps running.
    Export,
    /// Client → server: pull the server's recent span tree (the bounded
    /// server-global span buffer) for remote trace inspection.
    TraceSnapshot,
    /// Client → server: install exported snapshot bytes as a *new*
    /// session on this server (the migration receive side).
    Import {
        /// Snapshot bytes produced by an `ExportReply` (or a snapshot
        /// file from a data directory — same format).
        state: Vec<u8>,
    },
    /// Server → client: session opened.
    HelloAck {
        /// Server's wire version.
        version: u16,
        /// Number of analysis shards.
        shards: u16,
        /// Assigned session id.
        session: u64,
    },
    /// Server → client: batch accepted into the shard queue.
    EventsAck {
        /// Number of events accepted.
        accepted: u32,
    },
    /// Server → client: shard queue full — retry the batch later.
    Busy {
        /// Depth of the refusing queue at rejection time.
        queue_depth: u32,
    },
    /// Server → client: the finished session's findings.
    Reports(Vec<Report>),
    /// Server → client: counters.
    StatsReply(StatsSnapshot),
    /// Server → client: generic success (shutdown acknowledged).
    Ok,
    /// Server → client: request failed.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Server → client: the metrics registry in Prometheus text format.
    MetricsReply(String),
    /// Server → client: the session (or connection) was terminated by the
    /// server for a *typed* reason — shard panic, budget exhaustion, idle
    /// reap, or request deadline. Unlike [`Frame::Error`] this is
    /// machine-readable, so clients and soak harnesses can assert the
    /// exact failure class.
    SessionFailed(SessionFailure),
    /// Server → client: the open session's snapshot bytes (answer to
    /// [`Frame::Export`]).
    ExportReply {
        /// Versioned snapshot bytes (`arbalest-store` format).
        state: Vec<u8>,
    },
    /// Server → client: an [`Frame::Import`] was installed.
    ImportReply {
        /// Session id assigned to the imported state.
        session: u64,
    },
    /// Server → client: the server's recent spans (answer to
    /// [`Frame::TraceSnapshot`]), oldest first.
    TraceSnapshotReply(Vec<SpanEvent>),
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Events { .. } => 0x02,
            Frame::Finish => 0x03,
            Frame::Stats => 0x04,
            Frame::Shutdown => 0x05,
            Frame::Metrics => 0x06,
            Frame::Export => 0x07,
            Frame::Import { .. } => 0x08,
            Frame::TraceSnapshot => 0x09,
            Frame::HelloAck { .. } => 0x81,
            Frame::EventsAck { .. } => 0x82,
            Frame::Busy { .. } => 0x83,
            Frame::Reports(_) => 0x84,
            Frame::StatsReply(_) => 0x85,
            Frame::Ok => 0x86,
            Frame::Error { .. } => 0x87,
            Frame::MetricsReply(_) => 0x88,
            Frame::SessionFailed(_) => 0x89,
            Frame::ExportReply { .. } => 0x8A,
            Frame::ImportReply { .. } => 0x8B,
            Frame::TraceSnapshotReply(_) => 0x8C,
        }
    }

    /// A short static label for this frame's type, used as a metric label
    /// value (`arbalest_server_frames_total{type=...}`).
    pub fn label(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Events { .. } => "events",
            Frame::Finish => "finish",
            Frame::Stats => "stats",
            Frame::Shutdown => "shutdown",
            Frame::Metrics => "metrics",
            Frame::Export => "export",
            Frame::Import { .. } => "import",
            Frame::TraceSnapshot => "trace_snapshot",
            Frame::HelloAck { .. } => "hello_ack",
            Frame::EventsAck { .. } => "events_ack",
            Frame::Busy { .. } => "busy",
            Frame::Reports(_) => "reports",
            Frame::StatsReply(_) => "stats_reply",
            Frame::Ok => "ok",
            Frame::Error { .. } => "error",
            Frame::MetricsReply(_) => "metrics_reply",
            Frame::SessionFailed(_) => "session_failed",
            Frame::ExportReply { .. } => "export_reply",
            Frame::ImportReply { .. } => "import_reply",
            Frame::TraceSnapshotReply(_) => "trace_snapshot_reply",
        }
    }

    fn payload(&self) -> Vec<u8> {
        match self {
            Frame::Hello { version, resume } => {
                let mut out = version.to_le_bytes().to_vec();
                if let Some(id) = resume {
                    out.push(1);
                    out.extend_from_slice(&id.to_le_bytes());
                }
                out
            }
            Frame::Events { events, ctx } => {
                let mut out = wire::encode_events(events);
                if let Some(ctx) = ctx {
                    out.push(1);
                    wire::put_span_context(&mut out, *ctx);
                }
                out
            }
            Frame::Finish
            | Frame::Stats
            | Frame::Shutdown
            | Frame::Metrics
            | Frame::Export
            | Frame::TraceSnapshot
            | Frame::Ok => Vec::new(),
            Frame::Import { state } | Frame::ExportReply { state } => state.clone(),
            Frame::ImportReply { session } => session.to_le_bytes().to_vec(),
            Frame::HelloAck { version, shards, session } => {
                let mut out = Vec::with_capacity(12);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&shards.to_le_bytes());
                out.extend_from_slice(&session.to_le_bytes());
                out
            }
            Frame::EventsAck { accepted } => accepted.to_le_bytes().to_vec(),
            Frame::Busy { queue_depth } => queue_depth.to_le_bytes().to_vec(),
            Frame::Reports(reports) => wire::encode_reports(reports),
            Frame::StatsReply(s) => s.encode(),
            Frame::Error { message } => {
                let mut out = Vec::new();
                wire::put_str(&mut out, message);
                out
            }
            Frame::MetricsReply(text) => {
                let mut out = Vec::new();
                wire::put_str(&mut out, text);
                out
            }
            Frame::SessionFailed(failure) => {
                let mut out = Vec::new();
                failure.encode(&mut out);
                out
            }
            Frame::TraceSnapshotReply(events) => {
                let mut out = Vec::new();
                wire::encode_span_events(events, &mut out);
                out
            }
        }
    }

    fn decode(ty: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
        let mut cur = Cursor::new(payload);
        let frame = match ty {
            0x01 => {
                let version = cur.u16()?;
                let resume = if cur.is_empty() {
                    None
                } else {
                    match cur.u8()? {
                        0 => None,
                        1 => Some(cur.u64()?),
                        tag => {
                            return Err(WireError::BadTag { what: "Hello resume", tag }.into())
                        }
                    }
                };
                Frame::Hello { version, resume }
            }
            0x02 => {
                let events = wire::decode_events(&mut cur)?;
                // Trailing span-context extension (same backward-compatible
                // trick as `Hello{resume}`): absent bytes mean untraced.
                let ctx = if cur.is_empty() {
                    None
                } else {
                    match cur.u8()? {
                        0 => None,
                        1 => Some(wire::get_span_context(&mut cur)?),
                        tag => {
                            return Err(WireError::BadTag { what: "Events ctx", tag }.into())
                        }
                    }
                };
                Frame::Events { events, ctx }
            }
            0x03 => Frame::Finish,
            0x04 => Frame::Stats,
            0x05 => Frame::Shutdown,
            0x06 => Frame::Metrics,
            // Snapshot bytes carry their own magic/version/CRC, so the
            // frame layer passes them through opaque.
            0x07 => Frame::Export,
            0x09 => Frame::TraceSnapshot,
            0x08 => return Ok(Frame::Import { state: payload.to_vec() }),
            0x8A => return Ok(Frame::ExportReply { state: payload.to_vec() }),
            0x8B => Frame::ImportReply { session: cur.u64()? },
            0x81 => Frame::HelloAck { version: cur.u16()?, shards: cur.u16()?, session: cur.u64()? },
            0x82 => Frame::EventsAck { accepted: cur.u32()? },
            0x83 => Frame::Busy { queue_depth: cur.u32()? },
            0x84 => Frame::Reports(wire::decode_reports(&mut cur)?),
            0x85 => Frame::StatsReply(StatsSnapshot::decode(&mut cur)?),
            0x86 => Frame::Ok,
            0x87 => Frame::Error { message: cur.string()? },
            0x88 => Frame::MetricsReply(cur.string()?),
            0x89 => Frame::SessionFailed(SessionFailure::decode(&mut cur)?),
            0x8C => Frame::TraceSnapshotReply(wire::decode_span_events(&mut cur)?),
            tag => return Err(WireError::BadTag { what: "Frame", tag }.into()),
        };
        if !cur.is_empty() {
            return Err(WireError::TrailingBytes { extra: cur.remaining() }.into());
        }
        Ok(frame)
    }

    /// Write this frame, length prefix first, and flush. The whole frame
    /// goes out as a *single* write: three small writes per frame
    /// (prefix, type, payload) interact with Nagle's algorithm and
    /// delayed ACKs to add ~40 ms of latency per request on TCP.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), ProtoError> {
        let payload = self.payload();
        let len = 1 + payload.len() as u32;
        let mut out = Vec::with_capacity(5 + payload.len());
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.type_byte());
        out.extend_from_slice(&payload);
        w.write_all(&out)?;
        w.flush()?;
        Ok(())
    }

    /// Read one frame. `keep_waiting` is polled on read timeouts (streams
    /// with a read timeout set), letting servers notice a shutdown without
    /// an extra wake-up channel; return `false` to abort with
    /// [`ProtoError::ShuttingDown`].
    pub fn read_from(
        r: &mut impl Read,
        keep_waiting: &mut dyn FnMut() -> bool,
    ) -> Result<Frame, ProtoError> {
        Frame::read_from_limited(r, keep_waiting, MAX_FRAME)
    }

    /// [`read_from`](Frame::read_from) with a caller-chosen frame-size
    /// ceiling (still capped at [`MAX_FRAME`]): servers enforce their
    /// configured `max_frame` here, before any payload allocation.
    ///
    /// A peer that closes the connection *mid-frame* — after the length
    /// prefix started arriving but before the body completed — yields a
    /// typed [`WireError::Truncated`], distinguishable from the clean
    /// between-frames close (plain [`ProtoError::Io`] with
    /// `UnexpectedEof`). Either way nothing of the partial frame is ever
    /// surfaced, so a dying connection cannot mutate session state.
    pub fn read_from_limited(
        r: &mut impl Read,
        keep_waiting: &mut dyn FnMut() -> bool,
        max_frame: u32,
    ) -> Result<Frame, ProtoError> {
        let max_frame = max_frame.min(MAX_FRAME);
        let mut len = [0u8; 4];
        match read_full(r, &mut len, keep_waiting) {
            Ok(()) => {}
            // EOF with part of the length prefix already read is a
            // mid-frame death, not a clean close.
            Err(ReadFullError::Eof { filled }) if filled > 0 => {
                return Err(WireError::Truncated { needed: 4, have: filled }.into())
            }
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len);
        if len == 0 {
            return Err(WireError::Truncated { needed: 1, have: 0 }.into());
        }
        if len > max_frame {
            return Err(
                WireError::Oversize { what: "frame", len: len as u64, max: max_frame as u64 }
                    .into(),
            );
        }
        let mut body = vec![0u8; len as usize];
        match read_full(r, &mut body, keep_waiting) {
            Ok(()) => {}
            Err(ReadFullError::Eof { filled }) => {
                return Err(WireError::Truncated { needed: len as usize, have: filled }.into())
            }
            Err(e) => return Err(e.into()),
        }
        Frame::decode(body[0], &body[1..])
    }
}

/// Why [`read_full`] stopped short of filling its buffer.
enum ReadFullError {
    /// The peer closed the stream with `filled` of the wanted bytes read.
    Eof { filled: usize },
    /// A hard transport error.
    Io(std::io::Error),
    /// `keep_waiting` asked to stop.
    ShuttingDown,
}

impl From<ReadFullError> for ProtoError {
    fn from(e: ReadFullError) -> ProtoError {
        match e {
            ReadFullError::Eof { .. } => ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed the connection",
            )),
            ReadFullError::Io(e) => ProtoError::Io(e),
            ReadFullError::ShuttingDown => ProtoError::ShuttingDown,
        }
    }
}

/// `read_exact` that tolerates read timeouts while `keep_waiting()` holds.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<(), ReadFullError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(ReadFullError::Eof { filled }),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if !keep_waiting() {
                    return Err(ReadFullError::ShuttingDown);
                }
            }
            Err(e) => return Err(ReadFullError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) -> Frame {
        let mut bytes = Vec::new();
        frame.write_to(&mut bytes).unwrap();
        let mut cursor = std::io::Cursor::new(bytes);
        Frame::read_from(&mut cursor, &mut || true).unwrap()
    }

    #[test]
    fn control_frames_round_trip() {
        for f in [
            Frame::Hello { version: WIRE_VERSION, resume: None },
            Frame::Hello { version: WIRE_VERSION, resume: Some(42) },
            Frame::Finish,
            Frame::Stats,
            Frame::Shutdown,
            Frame::Metrics,
            Frame::Export,
            Frame::Import { state: vec![0xAB, 0x55, 0x00, 0x01] },
            Frame::HelloAck { version: 1, shards: 4, session: 99 },
            Frame::EventsAck { accepted: 512 },
            Frame::Busy { queue_depth: 7 },
            Frame::Ok,
            Frame::Error { message: "no session open".into() },
            Frame::MetricsReply("# TYPE arbalest_server_events_received_total counter\n".into()),
            Frame::ExportReply { state: vec![1, 2, 3] },
            Frame::ImportReply { session: 17 },
        ] {
            assert_eq!(round_trip(f.clone()), f);
        }
    }

    #[test]
    fn events_frames_round_trip_with_and_without_ctx() {
        let ctx = SpanContext { trace: 77u128 << 64 | 5, span: 9, parent: 2 };
        for f in [
            Frame::Events { events: vec![], ctx: None },
            Frame::Events { events: vec![], ctx: Some(ctx) },
        ] {
            assert_eq!(round_trip(f.clone()), f);
        }
    }

    #[test]
    fn bare_events_payload_still_decodes_as_untraced() {
        // The pre-tracing Events frame: just the count-prefixed batch.
        let payload = wire::encode_events(&[]);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(1 + payload.len() as u32).to_le_bytes());
        bytes.push(0x02);
        bytes.extend_from_slice(&payload);
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(
            Frame::read_from(&mut cursor, &mut || true).unwrap(),
            Frame::Events { events: vec![], ctx: None }
        );
    }

    #[test]
    fn trace_snapshot_frames_round_trip() {
        let events = vec![arbalest_obs::SpanEvent {
            name: arbalest_offload::events::SrcLoc::intern("wal_append", 0, 0).file,
            tid: 3,
            start_ns: 10,
            dur_ns: 4,
            trace: 1,
            span: 2,
            parent: 0,
        }];
        for f in [Frame::TraceSnapshot, Frame::TraceSnapshotReply(events)] {
            assert_eq!(round_trip(f.clone()), f);
        }
    }

    #[test]
    fn bare_hello_payload_still_decodes_as_no_resume() {
        // The pre-durability Hello: len 3, type 0x01, two version bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.push(0x01);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(
            Frame::read_from(&mut cursor, &mut || true).unwrap(),
            Frame::Hello { version: WIRE_VERSION, resume: None }
        );
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let snap = StatsSnapshot {
            sessions_started: 10,
            sessions_finished: 8,
            events_received: 12345,
            busy_rejections: 3,
            reports_by_kind: [1, 2, 3, 4, 5, 6, 7],
            queue_depths: vec![0, 2, 5],
            session_events: 77,
        };
        assert_eq!(snap.sessions_active(), 2);
        assert_eq!(round_trip(Frame::StatsReply(snap.clone())), Frame::StatsReply(snap));
    }

    #[test]
    fn oversized_frame_is_refused_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        bytes.push(0x01);
        let mut cursor = std::io::Cursor::new(bytes);
        let err = Frame::read_from(&mut cursor, &mut || true).unwrap_err();
        assert!(matches!(err, ProtoError::Wire(WireError::Oversize { .. })), "{err:?}");
    }

    #[test]
    fn session_failed_frames_round_trip() {
        for failure in [
            SessionFailure::ShardPanic { message: "boom".into() },
            SessionFailure::BudgetExceeded { used_bytes: 2048, budget_bytes: 1024 },
            SessionFailure::IdleTimeout { limit_ms: 5000 },
            SessionFailure::DeadlineExceeded { limit_ms: 250 },
        ] {
            let f = Frame::SessionFailed(failure);
            assert_eq!(round_trip(f.clone()), f);
        }
    }

    #[test]
    fn per_instance_frame_limit_is_enforced_below_the_protocol_cap() {
        let mut bytes = Vec::new();
        Frame::MetricsReply("x".repeat(4096)).write_to(&mut bytes).unwrap();
        let mut cursor = std::io::Cursor::new(&bytes);
        let err = Frame::read_from_limited(&mut cursor, &mut || true, 1024).unwrap_err();
        assert!(
            matches!(err, ProtoError::Wire(WireError::Oversize { max: 1024, .. })),
            "{err:?}"
        );
        // The same bytes pass under the default cap.
        let mut cursor = std::io::Cursor::new(&bytes);
        assert!(Frame::read_from(&mut cursor, &mut || true).is_ok());
    }

    #[test]
    fn mid_frame_disconnect_is_a_typed_truncation() {
        // Cut the stream at every byte offset inside a frame: each must
        // yield Truncated, never a hang or a decoded frame.
        let mut bytes = Vec::new();
        Frame::HelloAck { version: 1, shards: 2, session: 3 }.write_to(&mut bytes).unwrap();
        for cut in 1..bytes.len() {
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            let err = Frame::read_from(&mut cursor, &mut || true).unwrap_err();
            assert!(
                matches!(err, ProtoError::Wire(WireError::Truncated { .. })),
                "cut at {cut}: {err:?}"
            );
        }
        // A clean close *between* frames stays a plain EOF, so callers can
        // tell orderly hangup from mid-frame death.
        let mut cursor = std::io::Cursor::new(&[][..]);
        let err = Frame::read_from(&mut cursor, &mut || true).unwrap_err();
        assert!(
            matches!(&err, ProtoError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof),
            "{err:?}"
        );
    }

    #[test]
    fn truncated_and_trailing_frames_are_typed_errors() {
        let mut bytes = Vec::new();
        Frame::EventsAck { accepted: 1 }.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 2);
        let mut cursor = std::io::Cursor::new(&bytes);
        assert!(Frame::read_from(&mut cursor, &mut || true).is_err());

        // A frame whose payload is longer than its type demands.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&6u32.to_le_bytes());
        bytes.push(0x82); // EventsAck wants 4 payload bytes, gets 5
        bytes.extend_from_slice(&[0, 0, 0, 0, 0]);
        let mut cursor = std::io::Cursor::new(&bytes);
        let err = Frame::read_from(&mut cursor, &mut || true).unwrap_err();
        assert!(matches!(err, ProtoError::Wire(WireError::TrailingBytes { .. })), "{err:?}");
    }
}
