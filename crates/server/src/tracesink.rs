//! Collection point for the server's causal-trace spans.
//!
//! Connection handlers and shard workers both record completed
//! [`SpanEvent`]s here, keyed by session, so a session's whole causal
//! tree — `client_submit` roots, `wal_append` and `shard_job` children,
//! `detector_feed` grandchildren — can be written out as one Chrome
//! trace file when the session finishes. A bounded global ring of the
//! most recent spans (any session) answers the `TraceSnapshot` admin
//! frame.
//!
//! Both buffers are bounded: a session past [`SESSION_SPAN_CAP`] drops
//! further spans (counted in
//! `arbalest_server_trace_spans_dropped_total`), and the global ring
//! overwrites its oldest entries. Tracing never grows server memory
//! without bound, mirroring the queue-cap philosophy of the shard pool.

use arbalest_obs::{Counter, Registry, SpanEvent};
use arbalest_sync::Mutex;
use std::collections::{HashMap, VecDeque};

/// Spans kept per session before further ones are dropped (and counted).
pub const SESSION_SPAN_CAP: usize = 4096;
/// Most-recent spans kept for `TraceSnapshot`, across all sessions.
pub const RECENT_SPAN_CAP: usize = 1024;

/// Shared span collector: per-session bounded buffers plus a global
/// most-recent ring.
pub struct TraceSink {
    sessions: Mutex<HashMap<u64, Vec<SpanEvent>>>,
    recent: Mutex<VecDeque<SpanEvent>>,
    /// `arbalest_server_trace_spans_dropped_total`: spans refused by a
    /// full per-session buffer.
    dropped: Counter,
}

impl TraceSink {
    /// A sink whose drop counter records into `reg`.
    pub fn new(reg: &Registry) -> TraceSink {
        TraceSink {
            sessions: Mutex::new(HashMap::new()),
            recent: Mutex::new(VecDeque::new()),
            dropped: reg.counter("arbalest_server_trace_spans_dropped_total", &[]),
        }
    }

    /// Record a completed span for `session` (and into the recent ring).
    pub fn record(&self, session: u64, ev: SpanEvent) {
        {
            let mut sessions = self.sessions.lock();
            let buf = sessions.entry(session).or_default();
            if buf.len() < SESSION_SPAN_CAP {
                buf.push(ev);
            } else {
                self.dropped.inc();
            }
        }
        self.push_recent(ev);
    }

    /// Record a span that belongs to no one session (startup recovery,
    /// server lifecycle) into the recent ring only.
    pub fn record_global(&self, ev: SpanEvent) {
        self.push_recent(ev);
    }

    fn push_recent(&self, ev: SpanEvent) {
        let mut recent = self.recent.lock();
        if recent.len() >= RECENT_SPAN_CAP {
            recent.pop_front();
        }
        recent.push_back(ev);
    }

    /// Remove and return everything recorded for `session`, sorted by
    /// start time (handler and worker threads interleave their writes).
    pub fn take_session(&self, session: u64) -> Vec<SpanEvent> {
        let mut spans = self.sessions.lock().remove(&session).unwrap_or_default();
        spans.sort_by_key(|e| e.start_ns);
        spans
    }

    /// Discard a session's buffer (abort / failure paths).
    pub fn drop_session(&self, session: u64) {
        self.sessions.lock().remove(&session);
    }

    /// The most recent spans across all sessions, oldest first.
    pub fn recent(&self) -> Vec<SpanEvent> {
        self.recent.lock().iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(session_hint: u64) -> SpanEvent {
        SpanEvent {
            name: "test",
            tid: 0,
            start_ns: session_hint,
            dur_ns: 1,
            trace: u128::from(session_hint) + 1,
            span: session_hint + 1,
            parent: 0,
        }
    }

    #[test]
    fn per_session_buffers_are_isolated_and_taken_once() {
        let reg = Registry::new();
        let sink = TraceSink::new(&reg);
        sink.record(1, ev(10));
        sink.record(2, ev(20));
        sink.record(1, ev(5));
        let one = sink.take_session(1);
        assert_eq!(one.len(), 2);
        // Sorted by start time even though recorded out of order.
        assert!(one[0].start_ns <= one[1].start_ns);
        assert!(sink.take_session(1).is_empty());
        assert_eq!(sink.take_session(2).len(), 1);
        // Everything also landed in the recent ring.
        assert_eq!(sink.recent().len(), 3);
    }

    #[test]
    fn session_buffer_is_bounded_and_drops_are_counted() {
        let reg = Registry::new();
        let sink = TraceSink::new(&reg);
        for i in 0..(SESSION_SPAN_CAP as u64 + 10) {
            sink.record(7, ev(i));
        }
        assert_eq!(sink.take_session(7).len(), SESSION_SPAN_CAP);
        assert_eq!(
            reg.snapshot().counter("arbalest_server_trace_spans_dropped_total", &[]),
            Some(10)
        );
    }

    #[test]
    fn recent_ring_keeps_the_newest() {
        let reg = Registry::new();
        let sink = TraceSink::new(&reg);
        for i in 0..(RECENT_SPAN_CAP as u64 + 5) {
            sink.record_global(ev(i));
        }
        let recent = sink.recent();
        assert_eq!(recent.len(), RECENT_SPAN_CAP);
        // The oldest five were overwritten.
        assert_eq!(recent.first().unwrap().start_ns, 5);
    }
}
