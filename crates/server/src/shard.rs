//! Worker shards: bounded job queues feeding per-session detectors.
//!
//! Each shard is one worker thread owning the detector state of every
//! session hashed onto it, so all events of a session are analysed by a
//! single thread in arrival order (the property the VSM needs), while
//! different sessions proceed in parallel across shards. Queues are
//! bounded: an `Events` batch that finds the queue full is *refused*
//! (the connection answers `Busy`, the client retries), so a slow shard
//! translates into client backpressure, never into unbounded server
//! memory. Control jobs (`Finish`, `Abort`, `Stop`) bypass the cap —
//! they are small, bounded by the session count, and must never be lost.

use crate::stats::GlobalStats;
use arbalest_core::session::AnalysisSession;
use arbalest_core::ArbalestConfig;
use arbalest_obs::{Gauge, Histogram, Registry};
use arbalest_offload::report::Report;
use arbalest_offload::trace::TraceEvent;
use arbalest_sync::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

pub(crate) enum Job {
    Events { session: u64, events: Vec<TraceEvent>, queued: Instant },
    Finish { session: u64, reply: mpsc::Sender<Vec<Report>>, queued: Instant },
    /// Drop a session that disconnected without `Finish`.
    Abort { session: u64, queued: Instant },
    Stop,
}

/// Enqueue-to-drain latency histograms, one per job kind. Cloned into
/// every worker; the cells are shared.
#[derive(Clone)]
struct WaitHists {
    events: Histogram,
    finish: Histogram,
    abort: Histogram,
}

impl WaitHists {
    fn new(reg: &Registry) -> WaitHists {
        let h = |kind| reg.histogram("arbalest_server_job_wait_nanos", &[("kind", kind)]);
        WaitHists { events: h("events"), finish: h("finish"), abort: h("abort") }
    }
}

struct ShardQueue {
    jobs: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
}

impl ShardQueue {
    fn new() -> ShardQueue {
        ShardQueue { jobs: Mutex::new(VecDeque::new()), not_empty: Condvar::new() }
    }

    fn push(&self, job: Job) {
        self.jobs.lock().push_back(job);
        self.not_empty.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock();
        loop {
            match jobs.pop_front() {
                Some(job) => return job,
                None => self.not_empty.wait(&mut jobs),
            }
        }
    }

    fn depth(&self) -> u32 {
        self.jobs.lock().len() as u32
    }
}

/// The refusal a full shard queue answers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Queue depth observed at refusal.
    pub depth: u32,
}

/// `N` analysis worker threads with session-hash job routing.
pub struct ShardPool {
    queues: Vec<Arc<ShardQueue>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    queue_cap: usize,
    stats: Arc<GlobalStats>,
    next_session: AtomicU64,
    depth_gauges: Vec<Gauge>,
}

impl ShardPool {
    /// Spawn `shards` workers, each with a queue bounded at `queue_cap`
    /// event batches. Finished sessions fold their report counts into
    /// `stats`; per-session detectors and the pool's own wait/depth
    /// metrics all record into `registry`.
    pub fn new(
        shards: usize,
        queue_cap: usize,
        detector: ArbalestConfig,
        stats: Arc<GlobalStats>,
        registry: &Registry,
    ) -> ShardPool {
        let shards = shards.clamp(1, 64);
        let queues: Vec<Arc<ShardQueue>> = (0..shards).map(|_| Arc::new(ShardQueue::new())).collect();
        let waits = WaitHists::new(registry);
        let workers = queues
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let queue = q.clone();
                let stats = stats.clone();
                let detector = detector.clone();
                let registry = registry.clone();
                let waits = waits.clone();
                std::thread::Builder::new()
                    .name(format!("arbalest-shard-{i}"))
                    .spawn(move || worker_loop(&queue, &detector, &stats, &registry, &waits))
                    .expect("spawn shard worker")
            })
            .collect();
        let depth_gauges = (0..shards)
            .map(|i| {
                let shard = i.to_string();
                registry.gauge("arbalest_server_queue_depth", &[("shard", &shard)])
            })
            .collect();
        ShardPool {
            queues,
            workers: Mutex::new(workers),
            queue_cap: queue_cap.max(1),
            stats,
            next_session: AtomicU64::new(1),
            depth_gauges,
        }
    }

    /// Allocate a fresh session id.
    pub fn open_session(&self) -> u64 {
        self.stats.sessions_started.inc();
        self.next_session.fetch_add(1, Relaxed)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    fn queue_of(&self, session: u64) -> &ShardQueue {
        // Fibonacci multiplicative hash: consecutive session ids spread
        // uniformly over shards without clustering.
        let h = session.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.queues[(h % self.queues.len() as u64) as usize]
    }

    /// Offer an event batch to the session's shard. Refused (nothing
    /// enqueued, nothing analysed) when the queue is at capacity.
    pub fn submit_events(&self, session: u64, events: Vec<TraceEvent>) -> Result<usize, QueueFull> {
        let queue = self.queue_of(session);
        let accepted = events.len();
        {
            let mut jobs = queue.jobs.lock();
            if jobs.len() >= self.queue_cap {
                drop(jobs);
                self.stats.busy_rejections.inc();
                return Err(QueueFull { depth: queue.depth() });
            }
            jobs.push_back(Job::Events { session, events, queued: Instant::now() });
        }
        queue.not_empty.notify_one();
        self.stats.events_received.add(accepted as u64);
        Ok(accepted)
    }

    /// Close a session: all batches already queued for it are analysed
    /// first (FIFO per shard), then its reports come back on the channel.
    pub fn submit_finish(&self, session: u64) -> mpsc::Receiver<Vec<Report>> {
        let (tx, rx) = mpsc::channel();
        self.queue_of(session).push(Job::Finish { session, reply: tx, queued: Instant::now() });
        rx
    }

    /// Discard a session whose connection went away.
    pub fn submit_abort(&self, session: u64) {
        self.queue_of(session).push(Job::Abort { session, queued: Instant::now() });
    }

    /// Current depth of every shard queue; also refreshes the per-shard
    /// `arbalest_server_queue_depth` gauges, so any snapshot taken right
    /// after a `Stats`/`Metrics` request sees the same depths it answered.
    pub fn queue_depths(&self) -> Vec<u32> {
        self.queues
            .iter()
            .zip(&self.depth_gauges)
            .map(|(q, g)| {
                let d = q.depth();
                g.set(u64::from(d));
                d
            })
            .collect()
    }

    /// Drain every queue and join the workers. Jobs already enqueued are
    /// fully processed before the `Stop` sentinel (FIFO) — this is the
    /// graceful-drain half of shutdown. Idempotent: a second call finds
    /// no workers left to join.
    pub fn shutdown(&self) {
        let workers = std::mem::take(&mut *self.workers.lock());
        if workers.is_empty() {
            return;
        }
        for q in &self.queues {
            q.push(Job::Stop);
        }
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    queue: &ShardQueue,
    detector: &ArbalestConfig,
    stats: &GlobalStats,
    registry: &Registry,
    waits: &WaitHists,
) {
    let mut sessions: HashMap<u64, AnalysisSession> = HashMap::new();
    loop {
        match queue.pop() {
            Job::Events { session, events, queued } => {
                waits.events.record_duration(queued.elapsed());
                sessions
                    .entry(session)
                    .or_insert_with(|| {
                        AnalysisSession::with_registry(detector.clone(), registry.clone())
                    })
                    .feed_batch(&events);
            }
            Job::Finish { session, reply, queued } => {
                waits.finish.record_duration(queued.elapsed());
                let reports = sessions
                    .remove(&session)
                    .map(AnalysisSession::finish)
                    .unwrap_or_default();
                stats.count_reports(&reports);
                stats.sessions_finished.inc();
                // A receiver that hung up already got its answer elsewhere
                // (connection died); the session state is freed either way.
                let _ = reply.send(reports);
            }
            Job::Abort { session, queued } => {
                waits.abort.record_duration(queued.elapsed());
                sessions.remove(&session);
                stats.sessions_finished.inc();
            }
            Job::Stop => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::addr::DeviceId;

    fn pool(shards: usize, cap: usize) -> (ShardPool, Arc<GlobalStats>) {
        let reg = Registry::new();
        let stats = Arc::new(GlobalStats::new(&reg));
        (ShardPool::new(shards, cap, ArbalestConfig::default(), stats.clone(), &reg), stats)
    }

    fn pool_alloc_event(i: u64) -> TraceEvent {
        TraceEvent::PoolAlloc { device: DeviceId(1), base: i << 12, len: 4096 }
    }

    #[test]
    fn full_queue_refuses_instead_of_growing() {
        let (pool, stats) = pool(1, 2);
        let session = pool.open_session();
        // Retire the only worker so nothing consumes what we enqueue,
        // making the refusal count exact.
        pool.queues[0].push(Job::Stop);
        while pool.queues[0].depth() != 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut refused = 0;
        for i in 0..10u64 {
            if pool.submit_events(session, vec![pool_alloc_event(i)]).is_err() {
                refused += 1;
            }
        }
        // Capacity 2: exactly the overflow is refused with Busy.
        assert_eq!(refused, 8);
        assert_eq!(stats.busy_rejections.get(), 8);
        assert_eq!(stats.events_received.get(), 2);
        pool.shutdown();
    }

    #[test]
    fn finish_drains_queued_batches_first() {
        let (pool, stats) = pool(2, 1024);
        let session = pool.open_session();
        for i in 0..100u64 {
            pool.submit_events(session, vec![pool_alloc_event(i)]).unwrap();
        }
        let reports = pool.submit_finish(session).recv().unwrap();
        assert!(reports.is_empty());
        assert_eq!(stats.events_received.get(), 100);
        assert_eq!(stats.sessions_finished.get(), 1);
        pool.shutdown();
    }

    #[test]
    fn sessions_spread_and_shutdown_drains() {
        let (pool, stats) = pool(4, 64);
        for _ in 0..32 {
            let s = pool.open_session();
            pool.submit_events(s, vec![pool_alloc_event(s)]).unwrap();
            pool.submit_abort(s);
        }
        pool.shutdown(); // must not hang; all queues drain
        assert_eq!(stats.sessions_finished.get(), 32);
    }
}
