//! Worker shards: bounded job queues feeding per-session detectors,
//! under watchdog supervision and per-session resource budgets.
//!
//! Each shard is one worker thread owning the detector state of every
//! session hashed onto it, so all events of a session are analysed by a
//! single thread in arrival order (the property the VSM needs), while
//! different sessions proceed in parallel across shards. Queues are
//! bounded: an `Events` batch that finds the queue full is *refused*
//! (the connection answers `Busy`, the client retries), so a slow shard
//! translates into client backpressure, never into unbounded server
//! memory. Control jobs (`Finish`, `Abort`, `Stop`) bypass the cap —
//! they are small, bounded by the session count, and must never be lost.
//!
//! Two failure domains are contained here rather than allowed to take
//! the process down:
//!
//! * **Panics.** Each worker runs under a supervisor that catches an
//!   escaped panic, quarantines the session that was being analysed
//!   (every later frame for it answers a typed
//!   [`SessionFailure::ShardPanic`]), and restarts the worker thread
//!   with its queue — and every *other* session's state — intact.
//! * **Memory.** After every batch the resource governor compares the
//!   session's footprint (shadow pages, present-table ranges, race
//!   history, plus its queued-event backlog) against the configured
//!   byte budget. A first breach degrades the session via
//!   [`evict_to_may`](AnalysisSession::evict_to_may) — memory is shed,
//!   the protocol keeps flowing; a breach that eviction cannot cure
//!   quarantines the session with a typed
//!   [`SessionFailure::BudgetExceeded`]. A degraded session that reaches
//!   `Finish` also answers `BudgetExceeded`: its findings are incomplete
//!   by construction and the server refuses to pass them off as sound.

use crate::stats::GlobalStats;
use crate::supervise::{panic_message, SessionFailure, SuperviseMetrics};
use crate::tracesink::TraceSink;
use arbalest_core::session::AnalysisSession;
use arbalest_core::ArbalestConfig;
use arbalest_obs::{Gauge, Histogram, Registry, SpanContext, SpanName};
use arbalest_offload::fault::{FaultConfig, FaultOutcome, FaultPlan, FaultSite};
use arbalest_offload::report::Report;
use arbalest_offload::trace::TraceEvent;
use arbalest_sync::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

pub(crate) enum Job {
    /// Analyse a batch. `ctx` is the client-minted span context of the
    /// submitting `Events` frame (when the client traced it); the worker
    /// records its analysis as `shard_job`/`detector_feed` child spans.
    Events { session: u64, events: Vec<TraceEvent>, ctx: Option<SpanContext>, queued: Instant },
    Finish { session: u64, reply: mpsc::Sender<FinishResult>, queued: Instant },
    /// Drop a session that disconnected without `Finish`.
    Abort { session: u64, queued: Instant },
    /// Persist the session's state to the store and compact its WAL.
    /// Enqueued by the connection when a snapshot trigger fires; FIFO
    /// ordering means every batch accepted before the trigger is analysed
    /// first, so the snapshot's event count is exact. `ctx` is the span
    /// context of the batch whose append tripped the trigger.
    Snapshot { session: u64, ctx: Option<SpanContext>, queued: Instant },
    /// Serialize the session's state (non-destructively) for migration.
    Export { session: u64, reply: mpsc::Sender<ExportResult>, queued: Instant },
    Stop,
}

/// What a `Finish` job answers: the session's findings, or the typed
/// reason the server terminated it.
pub type FinishResult = Result<Vec<Report>, SessionFailure>;

/// What an `Export` job answers: the session's encoded snapshot bytes,
/// or the typed reason the session is unexportable.
pub type ExportResult = Result<Vec<u8>, SessionFailure>;

/// Resource-governor and chaos knobs threaded from `ServerConfig` into
/// the shard pool.
#[derive(Debug, Clone)]
pub struct ShardLimits {
    /// Per-session byte budget over detector side tables plus queued-event
    /// backlog; `0` disables the governor. First breach triggers
    /// evict-to-May degradation, an incurable breach quarantines the
    /// session with [`SessionFailure::BudgetExceeded`].
    pub max_session_bytes: u64,
    /// Cap on a session's queued-but-unanalysed events; batches beyond it
    /// are refused with `Busy` (backpressure). `0` disables the cap.
    pub max_inflight_events: u64,
    /// Worker-side fault injection ([`FaultSite::ShardPanic`],
    /// [`FaultSite::BudgetPressure`]) for chaos soaks.
    pub faults: FaultConfig,
}

impl Default for ShardLimits {
    fn default() -> Self {
        ShardLimits { max_session_bytes: 0, max_inflight_events: 0, faults: FaultConfig::disabled() }
    }
}

/// Enqueue-to-drain latency histograms, one per job kind. Cloned into
/// every worker; the cells are shared.
#[derive(Clone)]
struct WaitHists {
    events: Histogram,
    finish: Histogram,
    abort: Histogram,
    snapshot: Histogram,
    export: Histogram,
}

impl WaitHists {
    fn new(reg: &Registry) -> WaitHists {
        let h = |kind| reg.histogram("arbalest_server_job_wait_nanos", &[("kind", kind)]);
        WaitHists {
            events: h("events"),
            finish: h("finish"),
            abort: h("abort"),
            snapshot: h("snapshot"),
            export: h("export"),
        }
    }
}

struct ShardQueue {
    jobs: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
}

impl ShardQueue {
    fn new() -> ShardQueue {
        ShardQueue { jobs: Mutex::new(VecDeque::new()), not_empty: Condvar::new() }
    }

    fn push(&self, job: Job) {
        self.jobs.lock().push_back(job);
        self.not_empty.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock();
        loop {
            match jobs.pop_front() {
                Some(job) => return job,
                None => self.not_empty.wait(&mut jobs),
            }
        }
    }

    fn depth(&self) -> u32 {
        self.jobs.lock().len() as u32
    }
}

/// One session's detector state plus governor bookkeeping.
struct SessionEntry {
    session: AnalysisSession,
    /// High-water mark of the session's accounted footprint, reported in
    /// `BudgetExceeded` (post-eviction live bytes would understate how far
    /// over budget the session actually went).
    peak_bytes: u64,
}

/// A session as the shard sees it: live, or terminated for a typed reason.
/// The live entry is boxed: quarantined slots outnumber live ones only
/// under chaos, but the size gap (detector state vs a small enum) would
/// otherwise make every map slot pay for the largest variant.
enum SessionSlot {
    Live(Box<SessionEntry>),
    Quarantined(SessionFailure),
}

/// Everything a shard's worker (and its supervisor) share. Lives in an
/// `Arc` *outside* the worker thread so sessions, backlog accounting, and
/// the queue all survive a worker restart.
struct ShardState {
    queue: ShardQueue,
    sessions: Mutex<HashMap<u64, SessionSlot>>,
    /// Queued-but-unanalysed event counts, fed into the budget governor
    /// and the max-inflight check.
    backlog: Mutex<HashMap<u64, u64>>,
    /// The session the worker is analysing *right now* — the one the
    /// supervisor quarantines if the worker panics.
    current: Mutex<Option<u64>>,
}

/// The refusal a full shard queue answers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Queue depth observed at refusal.
    pub depth: u32,
}

/// Immutable context cloned into each worker incarnation.
struct WorkerCtx {
    state: Arc<ShardState>,
    detector: ArbalestConfig,
    stats: Arc<GlobalStats>,
    registry: Registry,
    waits: WaitHists,
    limits: ShardLimits,
    plan: FaultPlan,
    sup: SuperviseMetrics,
    /// Durable store for `Snapshot` jobs; `None` when the server runs
    /// without `--data-dir`.
    store: Option<Arc<arbalest_store::Store>>,
    /// Where completed analysis spans land (per-session + recent ring).
    sink: Arc<TraceSink>,
    /// Pre-interned span names, so the per-batch hot path skips the
    /// registry's name-table lock.
    shard_job_name: SpanName,
    detector_feed_name: SpanName,
    snapshot_write_name: SpanName,
}

/// `N` analysis worker threads with session-hash job routing.
pub struct ShardPool {
    states: Vec<Arc<ShardState>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    queue_cap: usize,
    limits: ShardLimits,
    stats: Arc<GlobalStats>,
    next_session: AtomicU64,
    depth_gauges: Vec<Gauge>,
}

impl ShardPool {
    /// Spawn `shards` supervised workers, each with a queue bounded at
    /// `queue_cap` event batches. Finished sessions fold their report
    /// counts into `stats`; per-session detectors and the pool's own
    /// wait/depth/supervision metrics all record into `registry`.
    #[allow(clippy::too_many_arguments)] // one dependency per subsystem, built once by Server::start
    pub fn new(
        shards: usize,
        queue_cap: usize,
        detector: ArbalestConfig,
        stats: Arc<GlobalStats>,
        registry: &Registry,
        limits: ShardLimits,
        store: Option<Arc<arbalest_store::Store>>,
        sink: Arc<TraceSink>,
    ) -> ShardPool {
        let shards = shards.clamp(1, 64);
        let states: Vec<Arc<ShardState>> = (0..shards)
            .map(|_| {
                Arc::new(ShardState {
                    queue: ShardQueue::new(),
                    sessions: Mutex::new(HashMap::new()),
                    backlog: Mutex::new(HashMap::new()),
                    current: Mutex::new(None),
                })
            })
            .collect();
        let waits = WaitHists::new(registry);
        let sup = SuperviseMetrics::new(registry);
        let workers = states
            .iter()
            .enumerate()
            .map(|(i, state)| {
                let ctx = WorkerCtx {
                    state: state.clone(),
                    detector: detector.clone(),
                    stats: stats.clone(),
                    registry: registry.clone(),
                    waits: waits.clone(),
                    limits: limits.clone(),
                    plan: FaultPlan::new(limits.faults),
                    sup: sup.clone(),
                    store: store.clone(),
                    sink: sink.clone(),
                    shard_job_name: registry.span_name("shard_job"),
                    detector_feed_name: registry.span_name("detector_feed"),
                    snapshot_write_name: registry.span_name("snapshot_write"),
                };
                std::thread::Builder::new()
                    .name(format!("arbalest-shard-{i}"))
                    .spawn(move || supervise_worker(&ctx))
                    .expect("spawn shard worker")
            })
            .collect();
        let depth_gauges = (0..shards)
            .map(|i| {
                let shard = i.to_string();
                registry.gauge("arbalest_server_queue_depth", &[("shard", &shard)])
            })
            .collect();
        ShardPool {
            states,
            workers: Mutex::new(workers),
            queue_cap: queue_cap.max(1),
            limits,
            stats,
            next_session: AtomicU64::new(1),
            depth_gauges,
        }
    }

    /// Allocate a fresh session id.
    pub fn open_session(&self) -> u64 {
        self.stats.sessions_started.inc();
        self.next_session.fetch_add(1, Relaxed)
    }

    /// Allocate a fresh id without counting a session start — for callers
    /// that immediately [`adopt_session`](ShardPool::adopt_session) under
    /// it (adopt counts the start).
    pub fn allocate_session_id(&self) -> u64 {
        self.next_session.fetch_add(1, Relaxed)
    }

    /// Install an already-built session (recovered from a data directory
    /// or imported from an `Export`) under a fixed id. Future ids are
    /// bumped past it so fresh sessions can never collide.
    pub fn adopt_session(&self, session: u64, state: AnalysisSession) {
        self.stats.sessions_started.inc();
        self.next_session.fetch_max(session + 1, Relaxed);
        self.state_of(session)
            .sessions
            .lock()
            .insert(session, SessionSlot::Live(Box::new(SessionEntry { session: state, peak_bytes: 0 })));
    }

    /// Events fed so far to a live session, `None` if the pool holds no
    /// live state for the id.
    pub fn session_events(&self, session: u64) -> Option<u64> {
        match self.state_of(session).sessions.lock().get(&session) {
            Some(SessionSlot::Live(entry)) => Some(entry.session.events()),
            _ => None,
        }
    }

    /// Synchronously drop any in-memory state for a session (used before
    /// re-adopting it from its durable state on resume).
    pub fn drop_session(&self, session: u64) {
        let state = self.state_of(session);
        state.sessions.lock().remove(&session);
        state.backlog.lock().remove(&session);
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.states.len()
    }

    fn state_of(&self, session: u64) -> &ShardState {
        // Fibonacci multiplicative hash: consecutive session ids spread
        // uniformly over shards without clustering.
        let h = session.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.states[(h % self.states.len() as u64) as usize]
    }

    /// The typed reason `session` was terminated by the server, if it was.
    /// Connections check this before enqueuing more work so a quarantined
    /// session answers `SessionFailed` instead of silently eating events.
    pub fn session_failure(&self, session: u64) -> Option<SessionFailure> {
        match self.state_of(session).sessions.lock().get(&session) {
            Some(SessionSlot::Quarantined(failure)) => Some(failure.clone()),
            _ => None,
        }
    }

    /// Offer an event batch to the session's shard. Refused (nothing
    /// enqueued, nothing analysed) when the queue is at capacity or the
    /// session's inflight-event backlog is at its limit.
    pub fn submit_events(
        &self,
        session: u64,
        events: Vec<TraceEvent>,
        ctx: Option<SpanContext>,
    ) -> Result<usize, QueueFull> {
        let state = self.state_of(session);
        let accepted = events.len();
        {
            let mut backlog = state.backlog.lock();
            let inflight = backlog.get(&session).copied().unwrap_or(0);
            if self.limits.max_inflight_events > 0
                && inflight.saturating_add(accepted as u64) > self.limits.max_inflight_events
            {
                drop(backlog);
                self.stats.busy_rejections.inc();
                return Err(QueueFull { depth: state.queue.depth() });
            }
            let mut jobs = state.queue.jobs.lock();
            if jobs.len() >= self.queue_cap {
                drop(jobs);
                drop(backlog);
                self.stats.busy_rejections.inc();
                return Err(QueueFull { depth: state.queue.depth() });
            }
            jobs.push_back(Job::Events { session, events, ctx, queued: Instant::now() });
            *backlog.entry(session).or_insert(0) += accepted as u64;
        }
        state.queue.not_empty.notify_one();
        self.stats.events_received.add(accepted as u64);
        Ok(accepted)
    }

    /// Close a session: all batches already queued for it are analysed
    /// first (FIFO per shard), then its findings — or the typed reason it
    /// failed — come back on the channel.
    pub fn submit_finish(&self, session: u64) -> mpsc::Receiver<FinishResult> {
        let (tx, rx) = mpsc::channel();
        self.state_of(session).queue.push(Job::Finish { session, reply: tx, queued: Instant::now() });
        rx
    }

    /// Discard a session whose connection went away.
    pub fn submit_abort(&self, session: u64) {
        self.state_of(session).queue.push(Job::Abort { session, queued: Instant::now() });
    }

    /// Ask the session's worker to snapshot it to the store. Control job:
    /// bypasses the queue cap (one per trigger firing, bounded by the
    /// connection that enqueues it).
    pub fn submit_snapshot(&self, session: u64, ctx: Option<SpanContext>) {
        self.state_of(session).queue.push(Job::Snapshot { session, ctx, queued: Instant::now() });
    }

    /// Ask the session's worker for its encoded snapshot bytes. FIFO with
    /// the shard queue, so every batch accepted before the export is in
    /// the exported state. Non-destructive: the session keeps running.
    pub fn submit_export(&self, session: u64) -> mpsc::Receiver<ExportResult> {
        let (tx, rx) = mpsc::channel();
        self.state_of(session).queue.push(Job::Export { session, reply: tx, queued: Instant::now() });
        rx
    }

    /// Current depth of every shard queue; also refreshes the per-shard
    /// `arbalest_server_queue_depth` gauges, so any snapshot taken right
    /// after a `Stats`/`Metrics` request sees the same depths it answered.
    pub fn queue_depths(&self) -> Vec<u32> {
        self.states
            .iter()
            .zip(&self.depth_gauges)
            .map(|(s, g)| {
                let d = s.queue.depth();
                g.set(u64::from(d));
                d
            })
            .collect()
    }

    /// Drain every queue and join the workers. Jobs already enqueued are
    /// fully processed before the `Stop` sentinel (FIFO) — this is the
    /// graceful-drain half of shutdown. Idempotent: a second call finds
    /// no workers left to join.
    pub fn shutdown(&self) {
        let workers = std::mem::take(&mut *self.workers.lock());
        if workers.is_empty() {
            return;
        }
        for s in &self.states {
            s.queue.push(Job::Stop);
        }
        for w in workers {
            let _ = w.join();
        }
    }
}

/// The shard watchdog: run [`worker_loop`] until it returns cleanly
/// (`Stop`), catching any panic that escapes a job. The panicking
/// session is quarantined with the rendered panic message; the worker is
/// then re-entered on the same [`ShardState`], so the queue and every
/// other session's detector state carry over untouched.
fn supervise_worker(ctx: &WorkerCtx) {
    loop {
        match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(ctx))) {
            Ok(()) => break,
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                if let Some(session) = ctx.state.current.lock().take() {
                    ctx.state
                        .sessions
                        .lock()
                        .insert(session, SessionSlot::Quarantined(SessionFailure::ShardPanic { message }));
                    ctx.sup.quarantined_panic.inc();
                }
                ctx.sup.shard_restarts.inc();
            }
        }
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    loop {
        match ctx.state.queue.pop() {
            Job::Events { session, events, ctx: trace_ctx, queued } => {
                ctx.waits.events.record_duration(queued.elapsed());
                *ctx.state.current.lock() = Some(session);
                // The analysis leg of a traced batch: a `shard_job` span
                // parented to the client's submit span, teed into the sink
                // (the registry ring alone could overwrite it before the
                // session finishes).
                let shard_span = trace_ctx
                    .filter(|c| c.is_traced())
                    .map(|c| ctx.registry.span_child(ctx.shard_job_name, c));
                let fed = events.len() as u64;
                let slot = ctx.state.sessions.lock().remove(&session);
                match slot {
                    Some(SessionSlot::Quarantined(failure)) => {
                        // Batches queued before the quarantine landed:
                        // dropped, counted, never analysed.
                        ctx.sup.events_dropped.add(fed);
                        ctx.state
                            .sessions
                            .lock()
                            .insert(session, SessionSlot::Quarantined(failure));
                    }
                    live => {
                        let mut entry = match live {
                            Some(SessionSlot::Live(entry)) => entry,
                            _ => Box::new(SessionEntry {
                                session: AnalysisSession::with_registry(
                                    ctx.detector.clone(),
                                    ctx.registry.clone(),
                                ),
                                peak_bytes: 0,
                            }),
                        };
                        // Injected worker chaos: the panic escapes to the
                        // supervisor exactly like a real detector bug would
                        // (the entry is out of the map, so its state dies
                        // with the unwound stack).
                        if ctx.plan.decide(FaultSite::ShardPanic) != FaultOutcome::None {
                            panic!("injected shard panic (session {session})");
                        }
                        let feed_span = shard_span
                            .as_ref()
                            .map(|s| ctx.registry.span_child(ctx.detector_feed_name, s.context()));
                        entry.session.feed_batch(&events);
                        if let Some(ev) = feed_span.and_then(|s| s.end()) {
                            ctx.sink.record(session, ev);
                        }
                        let verdict = govern_budget(ctx, session, &mut entry, fed);
                        let slot = match verdict {
                            None => SessionSlot::Live(entry),
                            Some(failure) => SessionSlot::Quarantined(failure),
                        };
                        ctx.state.sessions.lock().insert(session, slot);
                    }
                }
                if let Some(b) = ctx.state.backlog.lock().get_mut(&session) {
                    *b = b.saturating_sub(fed);
                }
                if let Some(ev) = shard_span.and_then(|s| s.end()) {
                    ctx.sink.record(session, ev);
                }
                *ctx.state.current.lock() = None;
            }
            Job::Finish { session, reply, queued } => {
                ctx.waits.finish.record_duration(queued.elapsed());
                *ctx.state.current.lock() = Some(session);
                let slot = ctx.state.sessions.lock().remove(&session);
                ctx.state.backlog.lock().remove(&session);
                let result = match slot {
                    Some(SessionSlot::Live(entry)) => {
                        if entry.session.degraded() {
                            // Degraded findings are incomplete (May mode
                            // suppresses VSM claims): answer the typed
                            // budget failure, never unsound reports.
                            Err(SessionFailure::BudgetExceeded {
                                used_bytes: entry.peak_bytes,
                                budget_bytes: ctx.limits.max_session_bytes,
                            })
                        } else {
                            let reports = entry.session.finish();
                            ctx.stats.count_reports(&reports);
                            Ok(reports)
                        }
                    }
                    Some(SessionSlot::Quarantined(failure)) => Err(failure),
                    None => Ok(Vec::new()),
                };
                ctx.stats.sessions_finished.inc();
                // A receiver that hung up already got its answer elsewhere
                // (connection died); the session state is freed either way.
                let _ = reply.send(result);
                *ctx.state.current.lock() = None;
            }
            Job::Abort { session, queued } => {
                ctx.waits.abort.record_duration(queued.elapsed());
                *ctx.state.current.lock() = Some(session);
                ctx.state.sessions.lock().remove(&session);
                ctx.state.backlog.lock().remove(&session);
                ctx.stats.sessions_finished.inc();
                *ctx.state.current.lock() = None;
            }
            Job::Snapshot { session, ctx: trace_ctx, queued } => {
                ctx.waits.snapshot.record_duration(queued.elapsed());
                *ctx.state.current.lock() = Some(session);
                let snap_span = trace_ctx
                    .filter(|c| c.is_traced())
                    .map(|c| ctx.registry.span_child(ctx.snapshot_write_name, c));
                // Out of the map while serializing, like Events: a panic
                // mid-snapshot quarantines this session only.
                let slot = ctx.state.sessions.lock().remove(&session);
                if let Some(SessionSlot::Live(entry)) = slot {
                    if let Some(store) = &ctx.store {
                        let snap = entry.session.to_snapshot();
                        // Snapshot first, compact only once it is durable;
                        // a failed write just leaves the WAL longer.
                        if store.write_snapshot(session, &snap).is_ok() {
                            let _ = store.compact(session, snap.events);
                        }
                    }
                    ctx.state.sessions.lock().insert(session, SessionSlot::Live(entry));
                } else if let Some(slot) = slot {
                    ctx.state.sessions.lock().insert(session, slot);
                }
                if let Some(ev) = snap_span.and_then(|s| s.end()) {
                    ctx.sink.record(session, ev);
                }
                *ctx.state.current.lock() = None;
            }
            Job::Export { session, reply, queued } => {
                ctx.waits.export.record_duration(queued.elapsed());
                *ctx.state.current.lock() = Some(session);
                let slot = ctx.state.sessions.lock().remove(&session);
                match slot {
                    Some(SessionSlot::Quarantined(failure)) => {
                        let _ = reply.send(Err(failure.clone()));
                        ctx.state
                            .sessions
                            .lock()
                            .insert(session, SessionSlot::Quarantined(failure));
                    }
                    live => {
                        // A session with no state yet exports as an empty
                        // snapshot — same lazy materialization as Events.
                        let entry = match live {
                            Some(SessionSlot::Live(entry)) => entry,
                            _ => Box::new(SessionEntry {
                                session: AnalysisSession::with_registry(
                                    ctx.detector.clone(),
                                    ctx.registry.clone(),
                                ),
                                peak_bytes: 0,
                            }),
                        };
                        let bytes =
                            arbalest_store::encode_session_snapshot(&entry.session.to_snapshot());
                        ctx.state.sessions.lock().insert(session, SessionSlot::Live(entry));
                        let _ = reply.send(Ok(bytes));
                    }
                }
                *ctx.state.current.lock() = None;
            }
            Job::Stop => break,
        }
    }
}

/// The resource governor, run after every analysed batch. Returns the
/// failure to quarantine with, or `None` to keep the session live
/// (possibly newly degraded).
fn govern_budget(
    ctx: &WorkerCtx,
    session: u64,
    entry: &mut SessionEntry,
    just_fed: u64,
) -> Option<SessionFailure> {
    let budget = ctx.limits.max_session_bytes;
    let injected = ctx.plan.decide(FaultSite::BudgetPressure) != FaultOutcome::None;
    if budget == 0 && !injected {
        return None;
    }
    // Account detector side tables plus the session's queued-event
    // backlog (the batch just analysed is still in the count we read —
    // its decrement happens after the governor — so subtract it).
    let backlog_events = ctx
        .state
        .backlog
        .lock()
        .get(&session)
        .copied()
        .unwrap_or(0)
        .saturating_sub(just_fed);
    let backlog_bytes = backlog_events * std::mem::size_of::<TraceEvent>() as u64;
    let used = entry.session.side_table_bytes() + backlog_bytes;
    entry.peak_bytes = entry.peak_bytes.max(used);
    let over = (budget > 0 && used > budget) || injected;
    if !over {
        return None;
    }
    if entry.session.degraded() {
        // Eviction already ran and the session is over budget again (or
        // chaos keeps the pressure on): degradation has failed to cure it.
        ctx.sup.quarantined_budget.inc();
        return Some(SessionFailure::BudgetExceeded { used_bytes: used, budget_bytes: budget });
    }
    // First breach: shed side-table memory and keep serving in May mode.
    entry.session.evict_to_may();
    ctx.sup.budget_evictions.inc();
    let after = entry.session.side_table_bytes() + backlog_bytes;
    if budget > 0 && after > budget {
        ctx.sup.quarantined_budget.inc();
        return Some(SessionFailure::BudgetExceeded { used_bytes: after, budget_bytes: budget });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::addr::DeviceId;

    fn pool(shards: usize, cap: usize) -> (ShardPool, Arc<GlobalStats>) {
        pool_with(shards, cap, ShardLimits::default())
    }

    fn pool_with(shards: usize, cap: usize, limits: ShardLimits) -> (ShardPool, Arc<GlobalStats>) {
        let reg = Registry::new();
        let stats = Arc::new(GlobalStats::new(&reg));
        let sink = Arc::new(TraceSink::new(&reg));
        (
            ShardPool::new(
                shards,
                cap,
                ArbalestConfig::default(),
                stats.clone(),
                &reg,
                limits,
                None,
                sink,
            ),
            stats,
        )
    }

    fn pool_alloc_event(i: u64) -> TraceEvent {
        TraceEvent::PoolAlloc { device: DeviceId(1), base: i << 12, len: 4096 }
    }

    #[test]
    fn full_queue_refuses_instead_of_growing() {
        let (pool, stats) = pool(1, 2);
        let session = pool.open_session();
        // Retire the only worker so nothing consumes what we enqueue,
        // making the refusal count exact.
        pool.states[0].queue.push(Job::Stop);
        while pool.states[0].queue.depth() != 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut refused = 0;
        for i in 0..10u64 {
            if pool.submit_events(session, vec![pool_alloc_event(i)], None).is_err() {
                refused += 1;
            }
        }
        // Capacity 2: exactly the overflow is refused with Busy.
        assert_eq!(refused, 8);
        assert_eq!(stats.busy_rejections.get(), 8);
        assert_eq!(stats.events_received.get(), 2);
        pool.shutdown();
    }

    #[test]
    fn finish_drains_queued_batches_first() {
        let (pool, stats) = pool(2, 1024);
        let session = pool.open_session();
        for i in 0..100u64 {
            pool.submit_events(session, vec![pool_alloc_event(i)], None).unwrap();
        }
        let reports = pool.submit_finish(session).recv().unwrap().unwrap();
        assert!(reports.is_empty());
        assert_eq!(stats.events_received.get(), 100);
        assert_eq!(stats.sessions_finished.get(), 1);
        pool.shutdown();
    }

    #[test]
    fn sessions_spread_and_shutdown_drains() {
        let (pool, stats) = pool(4, 64);
        for _ in 0..32 {
            let s = pool.open_session();
            pool.submit_events(s, vec![pool_alloc_event(s)], None).unwrap();
            pool.submit_abort(s);
        }
        pool.shutdown(); // must not hang; all queues drain
        assert_eq!(stats.sessions_finished.get(), 32);
    }

    #[test]
    fn inflight_cap_refuses_with_busy() {
        let (pool, stats) =
            pool_with(1, 1024, ShardLimits { max_inflight_events: 3, ..Default::default() });
        let session = pool.open_session();
        // Retire the worker so the backlog never drains.
        pool.states[0].queue.push(Job::Stop);
        while pool.states[0].queue.depth() != 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(pool.submit_events(session, vec![pool_alloc_event(0), pool_alloc_event(1)], None).is_ok());
        assert!(pool.submit_events(session, vec![pool_alloc_event(2)], None).is_ok());
        // Backlog is now 3 == cap: the next batch is refused.
        let err = pool.submit_events(session, vec![pool_alloc_event(3)], None).unwrap_err();
        assert!(err.depth >= 2);
        assert_eq!(stats.busy_rejections.get(), 1);
        pool.shutdown();
    }

    #[test]
    fn shard_panic_quarantines_only_the_poisoned_session() {
        // Rate 1.0: the very first Events batch panics the worker.
        let (pool, stats) = pool_with(
            1,
            1024,
            ShardLimits { faults: FaultConfig::new(7, 1.0), ..Default::default() },
        );
        let victim = pool.open_session();
        pool.submit_events(victim, vec![pool_alloc_event(1)], None).unwrap();
        // The restarted worker answers Finish with the typed failure.
        let failure = pool.submit_finish(victim).recv().unwrap().unwrap_err();
        assert!(
            matches!(&failure, SessionFailure::ShardPanic { message } if message.contains("injected")),
            "{failure:?}"
        );
        assert_eq!(pool.session_failure(victim), None, "finish clears the quarantine slot");
        assert_eq!(stats.sessions_finished.get(), 1);
        pool.shutdown();
    }

    /// A trace whose replay makes shadow pages resident, so the session
    /// has a real side-table footprint for the governor to measure.
    fn shadowy_trace() -> Vec<TraceEvent> {
        use arbalest_offload::prelude::*;
        use arbalest_offload::trace::TraceRecorder;
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        let a = rt.alloc_init::<i64>("a", &[1; 64]);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..64, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1);
            });
        });
        rec.take()
    }

    #[test]
    fn budget_breach_degrades_then_finish_is_typed() {
        // A 1-byte budget: the first analysed batch breaches it, evicts to
        // May mode, and the session finishes with BudgetExceeded.
        let (pool, _stats) =
            pool_with(1, 1024, ShardLimits { max_session_bytes: 1, ..Default::default() });
        let session = pool.open_session();
        pool.submit_events(session, shadowy_trace(), None).unwrap();
        let failure = pool.submit_finish(session).recv().unwrap().unwrap_err();
        assert!(
            matches!(failure, SessionFailure::BudgetExceeded { budget_bytes: 1, .. }),
            "{failure:?}"
        );
        pool.shutdown();
    }
}
