//! Network-chaos soak: DRACC traces submitted through a connection that
//! randomly truncates frames, disconnects, and stalls — against a server
//! that is itself injecting shard panics and budget pressure.
//!
//! The invariants under chaos, per session:
//!
//! * a session that completes (`Ok`) yields reports **byte-identical** to
//!   the in-process analysis of the same trace — chaos may kill a
//!   session, it may never corrupt one;
//! * a session that does not complete fails with a *typed* error
//!   ([`ProtoError`]) — never a hang, never a panic;
//! * afterwards the server is still healthy: no leaked sessions, and it
//!   still answers.
//!
//! All fault decisions are seeded ([`FaultPlan`] hashes seed × counter ×
//! site), so a failing run reproduces from its printed seed.

use arbalest_core::{AnalysisSession, ArbalestConfig};
use arbalest_offload::fault::{FaultConfig, FaultOutcome, FaultPlan, FaultSite};
use arbalest_offload::prelude::*;
use arbalest_offload::trace::{TraceEvent, TraceRecorder};
use arbalest_server::{Client, ListenAddr, ProtoError, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn record(bench: &arbalest_dracc::Benchmark) -> Vec<TraceEvent> {
    let recorder = Arc::new(TraceRecorder::new());
    let rt = Runtime::with_tool(Config::default(), recorder.clone());
    bench.run(&rt);
    recorder.take()
}

fn in_process(events: &[TraceEvent]) -> Vec<Report> {
    let session = AnalysisSession::new(ArbalestConfig::default());
    session.feed_batch(events);
    session.finish()
}

fn render_all(reports: &[Report]) -> String {
    reports.iter().map(|r| r.render()).collect()
}

/// Suppress the default panic hook's backtrace spam for the server's own
/// injected shard panics; real panics still print.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected shard panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn chaos_err(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::BrokenPipe, format!("chaos: {what}"))
}

/// A client transport that injects seeded network faults: frames cut
/// short mid-write, clean disconnects, and stalls before reads. Read
/// timeouts become hard errors, so no code path above can spin forever
/// waiting on a connection chaos has already killed.
struct ChaosStream {
    inner: TcpStream,
    plan: FaultPlan,
    dead: bool,
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(chaos_err("reading a killed connection"));
        }
        if let FaultOutcome::Delay { micros } = self.plan.decide(FaultSite::WireStall) {
            std::thread::sleep(Duration::from_micros(micros));
        }
        match self.inner.read(buf) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                self.dead = true;
                Err(chaos_err("read window exceeded"))
            }
            other => other,
        }
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(chaos_err("writing a killed connection"));
        }
        if self.plan.decide(FaultSite::WireDisconnect) == FaultOutcome::Permanent {
            self.dead = true;
            let _ = self.inner.shutdown(Shutdown::Both);
            return Err(chaos_err("injected disconnect"));
        }
        if let FaultOutcome::Partial { frac256 } = self.plan.decide(FaultSite::WirePartialFrame) {
            // Deliver a prefix of the bytes, then die: the server sees a
            // frame truncated mid-body.
            let keep = buf.len() * frac256 as usize / 256;
            if keep > 0 {
                let _ = self.inner.write_all(&buf[..keep]);
                let _ = self.inner.flush();
            }
            self.dead = true;
            let _ = self.inner.shutdown(Shutdown::Both);
            return Err(chaos_err("injected mid-frame disconnect"));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(chaos_err("flushing a killed connection"));
        }
        self.inner.flush()
    }
}

/// One chaotic session: submit `events`, assert the chaos invariants.
/// Returns whether the session completed cleanly.
fn chaos_session(
    addr: &str,
    seed: u64,
    case_no: usize,
    wire_rate: f64,
    bench: &arbalest_dracc::Benchmark,
    events: &[TraceEvent],
    expected: &str,
) -> bool {
    let raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    raw.set_nodelay(true).expect("nodelay");
    let chaos = ChaosStream {
        inner: raw,
        // Every (seed, case) pair gets its own decision stream so adding
        // a case never reshuffles the others' faults.
        plan: FaultPlan::new(FaultConfig::new(seed ^ ((case_no as u64 + 1) << 32), wire_rate)),
        dead: false,
    };
    let mut client = Client::from_stream(chaos).with_deadline(Duration::from_secs(30));
    match client.submit_chunked(events, 128) {
        Ok(reports) => {
            // The one invariant chaos must never bend: a completed
            // session is indistinguishable from a fault-free one — even
            // while other sessions on the same shards are being panicked
            // and quarantined.
            assert_eq!(
                render_all(&reports),
                *expected,
                "{} (seed {seed}): completed session diverged under chaos",
                bench.dracc_id()
            );
            true
        }
        Err(
            ProtoError::Io(_)
            | ProtoError::Wire(_)
            | ProtoError::Remote(_)
            | ProtoError::Failed(_)
            | ProtoError::Overloaded
            | ProtoError::DeadlineExceeded { .. },
        ) => false,
        Err(other) => {
            panic!("{} (seed {seed}): untyped failure {other:?}", bench.dracc_id())
        }
    }
}

/// Drive `stride`-th DRACC cases through a chaotic server — `threads`
/// sessions at a time — once per seed. `wire_rate` governs client-side
/// network chaos, `server_rate` the server's own shard-panic /
/// budget-pressure injection.
fn soak(stride: usize, seeds: &[u64], wire_rate: f64, server_rate: f64, threads: usize) {
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

    quiet_injected_panics();
    // Record each case once; traces and expected reports are reused
    // across seeds (recording is deterministic).
    let cases: Vec<_> = arbalest_dracc::all()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0)
        .map(|(_, b)| b)
        .collect();
    let data: Arc<Vec<(arbalest_dracc::Benchmark, Vec<TraceEvent>, String)>> = Arc::new(
        cases
            .into_iter()
            .map(|bench| {
                let events = record(&bench);
                let expected = render_all(&in_process(&events));
                (bench, events, expected)
            })
            .collect(),
    );

    let mut total_clean = 0usize;
    let mut total_failed = 0usize;
    for &seed in seeds {
        let server = Server::start(
            &ListenAddr::Tcp("127.0.0.1:0".into()),
            ServerConfig {
                shards: 4,
                queue_cap: 64,
                idle_timeout: Duration::from_secs(30),
                request_deadline: Duration::from_secs(10),
                faults: FaultConfig::new(seed, server_rate),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = match server.local_addr() {
            ListenAddr::Tcp(a) => a.clone(),
            other => panic!("wanted tcp, got {other}"),
        };

        // Sessions run concurrently: faults hitting one session (a shard
        // panic, a killed connection) must not perturb its neighbours.
        let clean = Arc::new(AtomicUsize::new(0));
        let next = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..threads.clamp(1, data.len()))
            .map(|_| {
                let data = data.clone();
                let addr = addr.clone();
                let clean = clean.clone();
                let next = next.clone();
                std::thread::spawn(move || loop {
                    let case_no = next.fetch_add(1, SeqCst);
                    let Some((bench, events, expected)) = data.get(case_no) else { break };
                    if chaos_session(&addr, seed, case_no, wire_rate, bench, events, expected) {
                        clean.fetch_add(1, SeqCst);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("soak session thread");
        }
        let clean = clean.load(SeqCst);
        total_clean += clean;
        total_failed += data.len() - clean;

        // Chaos killed connections, panicked workers, and degraded
        // sessions — none of that may leak session state or wedge the
        // server. Every abort is a queued job, so poll briefly.
        let mut admin = Client::connect(server.local_addr()).expect("connect after soak");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stats = admin.stats().expect("stats after soak");
            if stats.sessions_active() == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "seed {seed}: sessions leaked: {stats:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Graceful drain must still complete (a hang here fails the test
        // binary's own timeout).
        server.stop();
    }

    eprintln!(
        "chaos soak: {total_clean} clean / {total_failed} failed across {} seeds × {} cases",
        seeds.len(),
        data.len()
    );
    assert!(total_clean > 0, "no session ever survived — chaos rates are miscalibrated");
    assert!(total_failed > 0, "no fault ever landed — chaos rates are miscalibrated");
}

/// Quick soak: a spread of cases, two seeds, modest fault rates. Runs in
/// the default test pass.
#[test]
fn chaos_soak_quick() {
    soak(4, &[11, 29], 0.005, 0.01, 4);
}

/// The full soak: every DRACC case × 64 seeds, sessions running eight at
/// a time. Ignored by default; `ci.sh` runs it in release within a
/// bounded budget.
#[test]
#[ignore = "full chaos soak; run by ci.sh in release"]
fn chaos_soak_full() {
    let seeds: Vec<u64> = (0..64).collect();
    soak(1, &seeds, 0.01, 0.02, 8);
}
