//! End-to-end parity: analysing a trace through a live `arbalest-serve`
//! instance must produce *byte-identical* rendered reports to the
//! in-process analysis path, for every DRACC Table III case — plus
//! concurrency and shutdown behaviour under several simultaneous
//! sessions.

use arbalest_core::{AnalysisSession, ArbalestConfig};
use arbalest_offload::prelude::*;
use arbalest_offload::trace::{TraceEvent, TraceRecorder};
use arbalest_server::{Client, ListenAddr, Server, ServerConfig};
use std::sync::Arc;

/// Record one DRACC benchmark's event trace.
fn record(bench: &arbalest_dracc::Benchmark) -> Vec<TraceEvent> {
    let recorder = Arc::new(TraceRecorder::new());
    let rt = Runtime::with_tool(Config::default(), recorder.clone());
    bench.run(&rt);
    recorder.take()
}

/// The in-process reference: replay the trace through a fresh detector.
fn in_process(events: &[TraceEvent]) -> Vec<Report> {
    let session = AnalysisSession::new(ArbalestConfig::default());
    session.feed_batch(events);
    session.finish()
}

fn render_all(reports: &[Report]) -> String {
    reports.iter().map(|r| r.render()).collect()
}

fn start_server(shards: usize) -> Server {
    Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        ServerConfig { shards, queue_cap: 64, ..ServerConfig::default() },
    )
    .expect("bind")
}

#[test]
fn every_dracc_case_matches_in_process_byte_for_byte() {
    let server = start_server(4);
    let addr = server.local_addr().clone();

    for bench in arbalest_dracc::all() {
        let events = record(&bench);
        let expected = in_process(&events);

        let mut client = Client::connect(&addr).expect("connect");
        // A small chunk size exercises multi-frame streaming even for
        // short traces.
        let got = client.submit_chunked(&events, 64).expect("submit");

        assert_eq!(
            got.len(),
            expected.len(),
            "{}: report count diverged (server {} vs in-process {})",
            bench.dracc_id(),
            got.len(),
            expected.len()
        );
        assert_eq!(
            render_all(&got),
            render_all(&expected),
            "{}: rendered reports diverged",
            bench.dracc_id()
        );
        // Structural equality too, not just rendering.
        assert_eq!(got, expected, "{}: report values diverged", bench.dracc_id());
    }

    server.stop();
}

#[test]
fn concurrent_sessions_are_isolated_and_drain_cleanly() {
    let server = start_server(2);
    let addr = server.local_addr().clone();

    // Four distinct benchmarks submitted concurrently, several times
    // each; every session must get exactly its own benchmark's reports.
    let ids: Vec<u32> = arbalest_dracc::all().into_iter().take(4).map(|b| b.id).collect();
    assert_eq!(ids.len(), 4);

    let handles: Vec<_> = ids
        .into_iter()
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let bench = arbalest_dracc::by_id(id).expect("benchmark");
                let events = record(&bench);
                let expected = render_all(&in_process(&events));
                for _ in 0..3 {
                    let mut client = Client::connect(&addr).expect("connect");
                    let got = client.submit_chunked(&events, 32).expect("submit");
                    assert_eq!(render_all(&got), expected, "{}", bench.dracc_id());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }

    // Counters reflect all twelve finished sessions.
    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.sessions_started, 12);
    assert_eq!(stats.sessions_finished, 12);
    assert_eq!(stats.sessions_active(), 0);

    // Shutdown via the protocol: acknowledged, then the server drains.
    client.shutdown_server().expect("shutdown");
    server.wait_for_shutdown();
    server.stop();
}

#[test]
fn unix_socket_transport_matches_tcp() {
    let path = std::env::temp_dir().join(format!("arbalest-e2e-{}.sock", std::process::id()));
    let server = Server::start(
        &ListenAddr::Unix(path.clone()),
        ServerConfig { shards: 1, queue_cap: 16, ..ServerConfig::default() },
    )
    .expect("bind unix");

    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);
    let expected = render_all(&in_process(&events));

    let mut client = Client::connect(server.local_addr()).expect("connect unix");
    let got = client.submit(&events).expect("submit");
    assert_eq!(render_all(&got), expected);

    server.stop();
    assert!(!path.exists(), "socket file not cleaned up");
}

/// Parse one unlabelled sample's value out of Prometheus text.
fn prom_value(prom: &str, name: &str) -> u64 {
    prom.lines()
        .find(|l| l.starts_with(&format!("{name} ")))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("sample {name} missing from export:\n{prom}"))
}

/// Sum every sample of a (possibly labelled) family.
fn prom_sum(prom: &str, name: &str) -> u64 {
    prom.lines()
        .filter(|l| l.starts_with(&format!("{name}{{")) || l.starts_with(&format!("{name} ")))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

#[test]
fn stats_frame_and_prometheus_export_agree() {
    let server = start_server(2);
    let addr = server.local_addr().clone();

    // Drive real work through the server so the counters are non-trivial.
    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);
    let mut client = Client::connect(&addr).expect("connect");
    let reports = client.submit_chunked(&events, 64).expect("submit");
    assert!(!reports.is_empty(), "DRACC 22 is a buggy case");

    // Both views must read the same cells: the binary STATS snapshot and
    // the Prometheus text cannot disagree on any shared counter.
    let stats = client.stats().expect("stats");
    let prom = client.metrics().expect("metrics");

    assert_eq!(prom_value(&prom, "arbalest_server_sessions_started_total"), stats.sessions_started);
    assert_eq!(
        prom_value(&prom, "arbalest_server_sessions_finished_total"),
        stats.sessions_finished
    );
    assert_eq!(prom_value(&prom, "arbalest_server_events_received_total"), stats.events_received);
    assert_eq!(prom_value(&prom, "arbalest_server_busy_rejections_total"), stats.busy_rejections);
    assert_eq!(
        prom_sum(&prom, "arbalest_server_reports_total"),
        stats.reports_by_kind.iter().sum::<u64>()
    );

    // The wire layer and shard pool record into the same registry.
    assert!(prom_sum(&prom, "arbalest_server_frames_total") > 0, "frame counters missing");
    assert!(prom_sum(&prom, "arbalest_server_rx_bytes_total") > 0, "rx byte counter missing");
    assert!(
        prom.contains("arbalest_server_queue_depth{"),
        "queue depth gauges missing:\n{prom}"
    );
    // Per-session detectors share the registry too: VSM work shows up.
    assert!(
        prom_sum(&prom, "arbalest_detector_vsm_transition_pairs_total") > 0,
        "detector metrics missing from server export"
    );

    server.stop();
}

#[test]
fn protocol_misuse_yields_remote_errors_not_hangs() {
    let server = start_server(1);
    let addr = server.local_addr().clone();

    // Events before Hello.
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .send_events(&[TraceEvent::PoolAlloc {
            device: arbalest_offload::addr::DeviceId(1),
            base: 0,
            len: 4096,
        }])
        .expect_err("events before hello must fail");
    assert!(matches!(err, arbalest_server::ProtoError::Remote(_)), "{err:?}");

    // Finish before Hello, on a fresh connection.
    let mut client = Client::connect(&addr).expect("connect");
    let err = client.finish().expect_err("finish before hello must fail");
    assert!(matches!(err, arbalest_server::ProtoError::Remote(_)), "{err:?}");

    // Double Hello on one connection.
    let mut client = Client::connect(&addr).expect("connect");
    client.hello().expect("first hello");
    let err = client.hello().expect_err("second hello must fail");
    assert!(matches!(err, arbalest_server::ProtoError::Remote(_)), "{err:?}");

    server.stop();
}
