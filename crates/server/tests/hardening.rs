//! Connection-hardening and supervision behaviour over live sockets: a
//! peer that dies mid-frame, announces an oversized frame, idles
//! forever, or stalls mid-frame must always produce a typed error (or a
//! clean reap) — never a hang, a crash, or a partially-mutated session —
//! and the server must keep serving afterwards. Shard panics and budget
//! breaches must surface as typed `SessionFailed` replies.

use arbalest_offload::fault::FaultConfig;
use arbalest_offload::prelude::*;
use arbalest_offload::trace::{TraceEvent, TraceRecorder};
use arbalest_server::{
    Client, Frame, ListenAddr, ProtoError, Server, ServerConfig, SessionFailure, WIRE_VERSION,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Suppress the default panic hook's backtrace spam for panics this test
/// binary injects on purpose; real panics still print.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected shard panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn record(bench: &arbalest_dracc::Benchmark) -> Vec<TraceEvent> {
    let recorder = Arc::new(TraceRecorder::new());
    let rt = Runtime::with_tool(Config::default(), recorder.clone());
    bench.run(&rt);
    recorder.take()
}

fn start(cfg: ServerConfig) -> Server {
    Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), cfg).expect("bind")
}

fn tcp_addr(server: &Server) -> String {
    match server.local_addr() {
        ListenAddr::Tcp(a) => a.clone(),
        other => panic!("wanted tcp, got {other}"),
    }
}

fn prom_sum(prom: &str, name: &str) -> u64 {
    prom.lines()
        .filter(|l| l.starts_with(&format!("{name}{{")) || l.starts_with(&format!("{name} ")))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

#[test]
fn mid_frame_disconnect_is_counted_and_the_server_keeps_serving() {
    let server = start(ServerConfig { shards: 1, ..ServerConfig::default() });
    let addr = tcp_addr(&server);

    // Announce a 100-byte frame, deliver 10 bytes, vanish.
    {
        let mut raw = TcpStream::connect(&addr).expect("connect");
        raw.write_all(&100u32.to_le_bytes()).expect("len prefix");
        raw.write_all(&[0x02; 10]).expect("partial body");
        // Dropping the stream closes it mid-frame.
    }
    // The handler must notice the truncation promptly and move on; give it
    // a moment, then prove the server is still healthy.
    std::thread::sleep(Duration::from_millis(100));

    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);
    let mut client = Client::connect(server.local_addr()).expect("connect after disconnect");
    let reports = client.submit_chunked(&events, 64).expect("submit after disconnect");
    assert!(!reports.is_empty(), "DRACC 22 is a buggy case");

    let prom = client.metrics().expect("metrics");
    assert!(
        prom_sum(&prom, "arbalest_server_decode_errors_total") >= 1,
        "mid-frame disconnect not counted as a typed decode error:\n{prom}"
    );
    // No session state was mutated by the dead connection: only the good
    // session ever opened.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.sessions_started, 1);
    assert_eq!(stats.sessions_finished, 1);
    server.stop();
}

#[test]
fn oversized_frame_announcement_is_refused_with_a_typed_error() {
    let server = start(ServerConfig { shards: 1, max_frame: 1024, ..ServerConfig::default() });
    let addr = tcp_addr(&server);

    let mut raw = TcpStream::connect(&addr).expect("connect");
    // Announce a frame far over the per-instance limit (but under the
    // protocol cap, so only the configured limit can refuse it).
    raw.write_all(&(1_000_000u32).to_le_bytes()).expect("len prefix");
    raw.flush().expect("flush");
    let reply = Frame::read_from(&mut raw, &mut || true).expect("server must answer, not hang");
    match reply {
        Frame::Error { message } => {
            assert!(message.contains("frame"), "unexpected refusal text: {message}")
        }
        other => panic!("wanted Error, got {other:?}"),
    }

    // The refusal closed only that connection; the server still serves.
    let mut client = Client::connect(server.local_addr()).expect("connect after refusal");
    client.hello().expect("hello after refusal");
    server.stop();
}

#[test]
fn idle_connections_are_reaped_with_a_typed_timeout() {
    let server = start(ServerConfig {
        shards: 1,
        idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let addr = tcp_addr(&server);

    let mut raw = TcpStream::connect(&addr).expect("connect");
    // Send nothing. The reaper must close us with the typed reason rather
    // than holding the handler thread forever.
    let reply = Frame::read_from(&mut raw, &mut || true).expect("reap notice");
    assert!(
        matches!(reply, Frame::SessionFailed(SessionFailure::IdleTimeout { limit_ms: 300 })),
        "{reply:?}"
    );
    server.stop();
}

#[test]
fn stalled_mid_frame_sender_hits_the_request_deadline() {
    let server = start(ServerConfig {
        shards: 1,
        idle_timeout: Duration::from_secs(60),
        request_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let addr = tcp_addr(&server);

    let mut raw = TcpStream::connect(&addr).expect("connect");
    // Start a frame (length prefix + first body byte), then stall.
    raw.write_all(&8u32.to_le_bytes()).expect("len prefix");
    raw.write_all(&[0x01]).expect("first byte");
    raw.flush().expect("flush");
    let reply = Frame::read_from(&mut raw, &mut || true).expect("deadline notice");
    assert!(
        matches!(reply, Frame::SessionFailed(SessionFailure::DeadlineExceeded { limit_ms: 300 })),
        "{reply:?}"
    );
    server.stop();
}

#[test]
fn shard_panic_surfaces_as_a_typed_failure_and_spares_other_sessions() {
    quiet_injected_panics();
    // Rate 1.0: every Events batch trips the injected panic.
    let server = start(ServerConfig {
        shards: 1,
        faults: FaultConfig::new(11, 1.0),
        ..ServerConfig::default()
    });
    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);

    // An innocent session is open on the same shard while the victim's
    // batch panics the worker.
    let mut innocent = Client::connect(server.local_addr()).expect("connect innocent");
    innocent.hello().expect("hello innocent");

    let mut victim = Client::connect(server.local_addr()).expect("connect victim");
    let err = victim.submit_chunked(&events, 64).expect_err("victim must fail typed");
    match err {
        ProtoError::Failed(SessionFailure::ShardPanic { message }) => {
            assert!(message.contains("injected shard panic"), "{message}")
        }
        other => panic!("wanted ShardPanic, got {other:?}"),
    }

    // The worker restarted; the innocent session (which never fed events,
    // so never tripped the fault) still finishes cleanly.
    let reports = innocent.finish().expect("innocent finish");
    assert!(reports.is_empty());
    server.stop();
}

#[test]
fn budget_breach_ends_the_session_with_a_typed_failure() {
    let server = start(ServerConfig {
        shards: 1,
        max_session_bytes: 1,
        ..ServerConfig::default()
    });
    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);

    let mut client = Client::connect(server.local_addr()).expect("connect");
    let err = client.submit_chunked(&events, 64).expect_err("1-byte budget must fail");
    assert!(
        matches!(err, ProtoError::Failed(SessionFailure::BudgetExceeded { budget_bytes: 1, .. })),
        "{err:?}"
    );

    // The budget is per session: an unconstrained follow-up session would
    // still fail here (budget applies to all), but the server itself is
    // healthy and answers stats.
    let mut admin = Client::connect(server.local_addr()).expect("connect admin");
    let stats = admin.stats().expect("stats");
    assert_eq!(stats.sessions_started, 1);
    server.stop();
}

#[test]
fn wire_version_mismatch_still_fails_fast() {
    // Hardening must not regress the version check's fail-fast behaviour.
    let server = start(ServerConfig { shards: 1, ..ServerConfig::default() });
    let addr = tcp_addr(&server);
    let mut raw = TcpStream::connect(&addr).expect("connect");
    Frame::Hello { version: WIRE_VERSION + 1, resume: None }.write_to(&mut raw).expect("hello");
    let reply = Frame::read_from(&mut raw, &mut || true).expect("reply");
    assert!(matches!(reply, Frame::Error { .. }), "{reply:?}");
    server.stop();
}
