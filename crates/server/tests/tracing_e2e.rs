//! End-to-end causal tracing: a traced client submitting a DRACC trace
//! through a live `arbalest serve --trace-dir` instance must leave a
//! Perfetto-loadable trace file in which one batch's `client_submit`,
//! `wal_append`, `shard_job`, and `detector_feed` spans share a single
//! trace id with correct parent links — and the `TraceSnapshot` admin
//! frame must surface the same spans over the wire.

use arbalest_obs::Registry;
use arbalest_offload::json::Json;
use arbalest_offload::prelude::*;
use arbalest_offload::trace::{TraceEvent, TraceRecorder};
use arbalest_server::{Client, ListenAddr, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn record(bench: &arbalest_dracc::Benchmark) -> Vec<TraceEvent> {
    let recorder = Arc::new(TraceRecorder::new());
    let rt = Runtime::with_tool(Config::default(), recorder.clone());
    bench.run(&rt);
    recorder.take()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arbalest-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// One parsed span slice out of a Chrome trace file.
#[derive(Debug, Clone)]
struct Slice {
    name: String,
    trace: String,
    span: String,
    parent: String,
}

/// Parse every `ph:"X"` slice out of a Chrome trace-event document.
fn slices(doc: &Json) -> Vec<Slice> {
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| {
            let args = e.get("args").expect("args");
            Slice {
                name: e.get("name").and_then(Json::as_str).expect("name").to_string(),
                trace: args.get("trace").and_then(Json::as_str).expect("trace").to_string(),
                span: args.get("span").and_then(Json::as_str).expect("span").to_string(),
                parent: args.get("parent").and_then(Json::as_str).expect("parent").to_string(),
            }
        })
        .collect()
}

#[test]
fn traced_session_writes_a_linked_perfetto_tree() {
    let trace_dir = temp_dir("out");
    let data_dir = temp_dir("wal");
    let server = Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        ServerConfig {
            shards: 2,
            queue_cap: 64,
            trace_dir: Some(trace_dir.clone()),
            data_dir: Some(data_dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);

    let client_reg = Registry::new();
    let mut client =
        Client::connect(server.local_addr()).expect("connect").with_tracing(client_reg.clone());
    let session = client.hello().expect("hello");
    for batch in events.chunks(64) {
        client.send_events(batch).expect("send");
    }
    let reports = client.finish().expect("finish");
    assert!(!reports.is_empty(), "DRACC 22 is a buggy case");

    // The client recorded its own half of every trace.
    let client_spans = client_reg.drain_spans();
    assert!(!client_spans.is_empty());
    assert!(client_spans.iter().all(|e| e.name == "client_submit" && e.trace != 0));

    // The per-session trace file exists and is well-formed JSON.
    let path = trace_dir.join(format!("session-{session}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("trace file {} missing: {e}", path.display()));
    let doc = Json::parse(&text).expect("trace file parses as JSON");
    let all = slices(&doc);

    // Pick one client-minted trace id and check its whole causal tree.
    let client_trace = format!("{:032x}", client_spans[0].trace);
    let tree: Vec<&Slice> = all.iter().filter(|s| s.trace == client_trace).collect();
    let find = |name: &str| {
        tree.iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no {name} span in trace {client_trace}:\n{tree:#?}"))
    };
    let submit = find("client_submit");
    let wal = find("wal_append");
    let shard = find("shard_job");
    let feed = find("detector_feed");

    // The server re-recorded the client's exact context as the tree root.
    assert_eq!(submit.span, format!("{:016x}", client_spans[0].span));
    assert_eq!(submit.parent, format!("{:016x}", 0u64), "client_submit is the root");
    // WAL append and shard job are children of the submit; the detector
    // feed is a grandchild through the shard job.
    assert_eq!(wal.parent, submit.span);
    assert_eq!(shard.parent, submit.span);
    assert_eq!(feed.parent, shard.span);

    // Every submitted batch produced a full set of legs in the file.
    let batches = events.chunks(64).count();
    for name in ["client_submit", "wal_append", "shard_job", "detector_feed"] {
        let n = all.iter().filter(|s| s.name == name).count();
        assert_eq!(n, batches, "{name}: {n} spans for {batches} batches");
    }

    server.stop();
    let _ = std::fs::remove_dir_all(&trace_dir);
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn trace_snapshot_frame_surfaces_recent_spans() {
    let server = Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        ServerConfig { shards: 1, queue_cap: 16, ..ServerConfig::default() },
    )
    .expect("bind");

    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);
    let mut client =
        Client::connect(server.local_addr()).expect("connect").with_tracing(Registry::new());
    client.hello().expect("hello");
    client.send_events(&events).expect("send");

    // The admin frame needs no session of its own.
    let mut admin = Client::connect(server.local_addr()).expect("connect admin");
    // The shard job runs asynchronously; poll briefly for it to land.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let spans = loop {
        let spans = admin.trace_snapshot().expect("trace snapshot");
        if spans.iter().any(|e| e.name == "shard_job") || std::time::Instant::now() > deadline {
            break spans;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    for name in ["client_submit", "shard_job", "detector_feed"] {
        assert!(spans.iter().any(|e| e.name == name), "{name} missing from snapshot");
    }
    // Names survived the wire re-intern and the ids stayed causal.
    let submit = spans.iter().find(|e| e.name == "client_submit").unwrap();
    let shard = spans.iter().find(|e| e.name == "shard_job").unwrap();
    assert_eq!(submit.trace, shard.trace);
    assert_eq!(shard.parent, submit.span);

    client.finish().expect("finish");
    server.stop();
}

#[test]
fn untraced_clients_leave_no_trace_files() {
    let trace_dir = temp_dir("silent");
    let server = Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        ServerConfig {
            shards: 1,
            queue_cap: 16,
            trace_dir: Some(trace_dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let reports = client.submit(&events).expect("submit");
    assert!(!reports.is_empty());

    // No span contexts on the wire → nothing recorded → no file.
    let entries: Vec<_> = std::fs::read_dir(&trace_dir).expect("read dir").collect();
    assert!(entries.is_empty(), "untraced session wrote {entries:?}");

    server.stop();
    let _ = std::fs::remove_dir_all(&trace_dir);
}
