//! Durable-session end-to-end tests: kill a server mid-stream, restart it
//! on the same data directory, resume every session, and demand reports
//! **byte-identical** to an uninterrupted in-process run — for all 56
//! DRACC cases at seeded pseudo-random cut offsets. Plus live-reconnect
//! resume, export/import migration, snapshot/compaction triggering, and
//! clean-finish garbage collection.

use arbalest_core::{AnalysisSession, ArbalestConfig};
use arbalest_offload::prelude::*;
use arbalest_offload::trace::{TraceEvent, TraceRecorder};
use arbalest_server::{Client, ListenAddr, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn record(bench: &arbalest_dracc::Benchmark) -> Vec<TraceEvent> {
    let recorder = Arc::new(TraceRecorder::new());
    let rt = Runtime::with_tool(Config::default(), recorder.clone());
    bench.run(&rt);
    recorder.take()
}

fn in_process(events: &[TraceEvent]) -> Vec<Report> {
    let session = AnalysisSession::new(ArbalestConfig::default());
    session.feed_batch(events);
    session.finish()
}

fn render_all(reports: &[Report]) -> String {
    reports.iter().map(|r| r.render()).collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "arbalest-durable-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_server(data_dir: &Path, shards: usize) -> Server {
    Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        ServerConfig {
            shards,
            queue_cap: 64,
            data_dir: Some(data_dir.to_path_buf()),
            ..ServerConfig::default()
        },
    )
    .expect("bind durable server")
}

/// Deterministic splitmix64 step (the tests must not depend on wall
/// clock or OS entropy).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The acceptance criterion: every DRACC case, cut at a seeded offset,
/// killed, recovered on a fresh server instance over the same data dir,
/// resumed, and finished — reports must match an uninterrupted run
/// byte-for-byte.
#[test]
fn kill_and_recover_every_dracc_case_at_seeded_offsets() {
    let data_dir = tmp_dir("parity");
    let mut rng = 0x5EED_u64;

    // Phase 1: submit a seeded prefix of every benchmark, then abandon
    // the connection (no Finish) and stop the server. Acked batches are
    // in each session's WAL.
    let mut pending: Vec<(u64, Vec<TraceEvent>, usize)> = Vec::new();
    {
        let server = durable_server(&data_dir, 4);
        let addr = server.local_addr().clone();
        for bench in arbalest_dracc::all() {
            let events = record(&bench);
            let cut = (splitmix(&mut rng) % (events.len() as u64 + 1)) as usize;
            let mut client = Client::connect(&addr).expect("connect");
            let id = client.hello().expect("hello");
            for batch in events[..cut].chunks(32) {
                client.send_events(batch).expect("send prefix");
            }
            pending.push((id, events, cut));
            // Dropping the client without Finish is the "kill": the
            // session's only live copy is now the data directory.
        }
        server.stop();
    }

    // Phase 2: a fresh server over the same directory recovers every
    // session; resuming and finishing each must converge to the
    // uninterrupted report.
    let server = durable_server(&data_dir, 4);
    let addr = server.local_addr().clone();
    for (id, events, cut) in pending {
        let expected = in_process(&events);
        let mut client = Client::connect(&addr).expect("connect");
        client.hello_resume(Some(id)).expect("resume");
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats.session_events, cut as u64,
            "session {id}: recovered event count must equal the acked prefix"
        );
        for batch in events[cut..].chunks(32) {
            client.send_events(batch).expect("send tail");
        }
        let got = client.finish().expect("finish");
        assert_eq!(got, expected, "session {id}: reports diverged after recovery");
        assert_eq!(render_all(&got), render_all(&expected), "session {id}: rendering diverged");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// Resume against the *same* server instance (disconnect, reconnect):
/// disk stays the authority and the stream continues seamlessly.
#[test]
fn live_reconnect_resumes_from_the_wal() {
    let data_dir = tmp_dir("reconnect");
    let server = durable_server(&data_dir, 2);
    let addr = server.local_addr().clone();

    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);
    let expected = in_process(&events);
    let cut = events.len() / 2;

    let id = {
        let mut client = Client::connect(&addr).expect("connect");
        let id = client.hello().expect("hello");
        for batch in events[..cut].chunks(16) {
            client.send_events(batch).expect("send prefix");
        }
        id
    }; // dropped without Finish

    // The old handler unregisters the session as it tears down; an
    // immediate reconnect can race that cleanup and see the single-writer
    // guard still held. Retry briefly, as a real client would.
    let mut client = Client::connect(&addr).expect("reconnect");
    let mut attempts = 0;
    loop {
        match client.hello_resume(Some(id)) {
            Ok(_) => break,
            Err(e) if attempts < 50 => {
                assert!(matches!(e, arbalest_server::ProtoError::Remote(_)), "{e:?}");
                attempts += 1;
                std::thread::sleep(std::time::Duration::from_millis(20));
                client = Client::connect(&addr).expect("reconnect retry");
            }
            Err(e) => panic!("resume never succeeded: {e:?}"),
        }
    }
    assert_eq!(client.stats().expect("stats").session_events, cut as u64);
    for batch in events[cut..].chunks(16) {
        client.send_events(batch).expect("send tail");
    }
    assert_eq!(client.finish().expect("finish"), expected);
    server.stop();
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// A session resumed while still attached elsewhere is refused: two
/// writers interleaving one WAL would corrupt the resume point.
#[test]
fn double_attach_is_refused() {
    let data_dir = tmp_dir("doubleattach");
    let server = durable_server(&data_dir, 1);
    let addr = server.local_addr().clone();

    let mut first = Client::connect(&addr).expect("connect");
    let id = first.hello().expect("hello");

    let mut second = Client::connect(&addr).expect("connect");
    let err = second.hello_resume(Some(id)).expect_err("attached session must refuse resume");
    assert!(matches!(err, arbalest_server::ProtoError::Remote(_)), "{err:?}");
    server.stop();
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// Export mid-session, import on a *different* server (no shared disk),
/// resume the imported id there, finish both: identical reports.
#[test]
fn export_import_migrates_a_session_between_servers() {
    let source = Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        ServerConfig { shards: 1, ..ServerConfig::default() },
    )
    .expect("bind source");
    let target = Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        ServerConfig { shards: 1, ..ServerConfig::default() },
    )
    .expect("bind target");

    let bench = arbalest_dracc::by_id(1).expect("DRACC 1");
    let events = record(&bench);
    let expected = in_process(&events);
    let cut = events.len() / 2;

    let mut src = Client::connect(source.local_addr()).expect("connect source");
    src.hello().expect("hello");
    for batch in events[..cut].chunks(16) {
        src.send_events(batch).expect("send prefix");
    }
    let state = src.export().expect("export");
    assert!(!state.is_empty());

    let mut dst = Client::connect(target.local_addr()).expect("connect target");
    let moved = dst.import(&state).expect("import");
    // Import does not bind the session; attach explicitly.
    let mut dst2 = Client::connect(target.local_addr()).expect("connect target");
    dst2.hello_resume(Some(moved)).expect("resume imported");
    assert_eq!(dst2.stats().expect("stats").session_events, cut as u64);
    for batch in events[cut..].chunks(16) {
        dst2.send_events(batch).expect("send tail");
    }
    assert_eq!(dst2.finish().expect("finish"), expected, "migrated session diverged");

    // Garbage import bytes are rejected typed, creating nothing.
    let err = dst.import(&[0u8; 16]).expect_err("garbage import must fail");
    assert!(matches!(err, arbalest_server::ProtoError::Remote(_)), "{err:?}");

    source.stop();
    target.stop();
}

/// Parse one unlabelled sample's value out of Prometheus text.
fn prom_value(prom: &str, name: &str) -> u64 {
    prom.lines()
        .find(|l| l.starts_with(&format!("{name} ")))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Snapshot triggers fire mid-stream, compaction prunes covered
/// segments, the store's instruments land in the server's Prometheus
/// export, and a clean Finish removes the session's durable state.
#[test]
fn snapshot_triggers_compaction_and_clean_finish_removes_state() {
    let data_dir = tmp_dir("snaptrig");
    let server = Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        ServerConfig {
            shards: 1,
            data_dir: Some(data_dir.to_path_buf()),
            store: arbalest_store::StoreConfig {
                // Tiny segments and an aggressive event trigger so even a
                // short trace snapshots and compacts several times.
                segment_bytes: 2048,
                snapshot_every_events: 64,
                ..arbalest_store::StoreConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().clone();

    let bench = arbalest_dracc::by_id(22).expect("DRACC 22");
    let events = record(&bench);
    assert!(events.len() > 128, "need enough events to trip the trigger twice");
    let expected = in_process(&events);

    let mut client = Client::connect(&addr).expect("connect");
    let got = client.submit_chunked(&events, 32).expect("submit");
    assert_eq!(got, expected, "durable path must not perturb analysis");

    let prom = client.metrics().expect("metrics");
    assert!(
        prom_value(&prom, "arbalest_store_snapshots_total") >= 1,
        "snapshot trigger never fired:\n{prom}"
    );
    assert!(prom_value(&prom, "arbalest_store_wal_records_total") >= 1);
    assert!(prom_value(&prom, "arbalest_store_wal_appended_bytes_total") > 0);

    // Clean Finish: the session's durable record is gone, so a restart
    // recovers nothing.
    let sessions = data_dir.join("sessions");
    let leftovers: Vec<_> = std::fs::read_dir(&sessions)
        .map(|it| it.filter_map(|e| e.ok().map(|e| e.path())).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "finished session left durable state: {leftovers:?}");

    server.stop();
    let _ = std::fs::remove_dir_all(&data_dir);
}
