//! `arbalest_store_*` observability instruments.
//!
//! Registered through [`Registry::state`](arbalest_obs::Registry::state)
//! like the detector's pack, so a server sharing one registry across
//! shards shows durability cost in the same Prometheus/JSON exports as
//! everything else.

use arbalest_obs::{Counter, Histogram, Registry};

/// Instrument pack for WAL, snapshot, and recovery activity.
#[derive(Debug)]
pub struct StoreMetrics {
    /// Payload + framing bytes appended to WALs
    /// (`arbalest_store_wal_appended_bytes_total`).
    pub wal_appended_bytes: Counter,
    /// Records appended (`arbalest_store_wal_records_total`).
    pub wal_records: Counter,
    /// Completed fsyncs (`arbalest_store_fsyncs_total`).
    pub fsyncs: Counter,
    /// Fsyncs that failed or were injected to fail
    /// (`arbalest_store_fsync_failures_total`).
    pub fsync_failures: Counter,
    /// Fsync latency in nanoseconds (`arbalest_store_fsync_nanos`).
    pub fsync_latency: Histogram,
    /// Snapshots written (`arbalest_store_snapshots_total`).
    pub snapshots: Counter,
    /// Encoded snapshot bytes written
    /// (`arbalest_store_snapshot_bytes_total`).
    pub snapshot_bytes: Counter,
    /// Snapshot encode+write latency in nanoseconds
    /// (`arbalest_store_snapshot_nanos`).
    pub snapshot_duration: Histogram,
    /// Sessions rebuilt from disk (`arbalest_store_recovered_sessions_total`).
    pub recovered_sessions: Counter,
    /// Events replayed from WAL tails during recovery
    /// (`arbalest_store_recovered_events_total`).
    pub recovered_events: Counter,
    /// Bytes discarded by torn/corrupt-tail truncation
    /// (`arbalest_store_truncated_bytes_total`).
    pub truncated_bytes: Counter,
    /// Recoveries that found a torn (incomplete) tail
    /// (`arbalest_store_torn_tails_total`).
    pub torn_tails: Counter,
    /// Recoveries that found a CRC-corrupt record
    /// (`arbalest_store_corrupt_records_total`).
    pub corrupt_records: Counter,
    /// WAL segments deleted by compaction
    /// (`arbalest_store_segments_compacted_total`).
    pub segments_compacted: Counter,
    /// Injected storage faults by site
    /// (`arbalest_store_injected_faults_total{site}`):
    /// `[torn_tail, corrupt_record, fsync_fail]`.
    pub injected: [Counter; 3],
}

impl StoreMetrics {
    /// Register the pack in `reg` (all no-ops on a disabled registry).
    pub fn new(reg: &Registry) -> StoreMetrics {
        StoreMetrics {
            wal_appended_bytes: reg.counter("arbalest_store_wal_appended_bytes_total", &[]),
            wal_records: reg.counter("arbalest_store_wal_records_total", &[]),
            fsyncs: reg.counter("arbalest_store_fsyncs_total", &[]),
            fsync_failures: reg.counter("arbalest_store_fsync_failures_total", &[]),
            fsync_latency: reg.histogram("arbalest_store_fsync_nanos", &[]),
            snapshots: reg.counter("arbalest_store_snapshots_total", &[]),
            snapshot_bytes: reg.counter("arbalest_store_snapshot_bytes_total", &[]),
            snapshot_duration: reg.histogram("arbalest_store_snapshot_nanos", &[]),
            recovered_sessions: reg.counter("arbalest_store_recovered_sessions_total", &[]),
            recovered_events: reg.counter("arbalest_store_recovered_events_total", &[]),
            truncated_bytes: reg.counter("arbalest_store_truncated_bytes_total", &[]),
            torn_tails: reg.counter("arbalest_store_torn_tails_total", &[]),
            corrupt_records: reg.counter("arbalest_store_corrupt_records_total", &[]),
            segments_compacted: reg.counter("arbalest_store_segments_compacted_total", &[]),
            injected: ["torn_tail", "corrupt_record", "fsync_fail"]
                .map(|site| reg.counter("arbalest_store_injected_faults_total", &[("site", site)])),
        }
    }
}
