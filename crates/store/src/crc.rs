//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`), hand-rolled —
//! the workspace builds hermetically, so the checksum every WAL record
//! and snapshot trailer carries is defined here and nowhere else.

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = make_table();

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `data` (IEEE: init `!0`, reflected, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"arbalest wal record".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 1;
            assert_ne!(crc32(&data), clean, "flip at byte {i} went undetected");
            data[i] ^= 1;
        }
        assert_eq!(crc32(&data), clean);
    }
}
