//! Segmented append-only write-ahead log of wire-encoded trace events.
//!
//! ## Record framing
//!
//! Each appended batch becomes one record:
//!
//! ```text
//! len:u32le | crc:u32le | payload
//! ```
//!
//! where `payload` is [`wire::encode_events`] of the batch (count-prefixed
//! events in the exact PR-2 wire layout) and `crc` is the [`crc32`] of the
//! payload. Records are written with a single `write`, so a crash tears at
//! most the final record.
//!
//! ## Segments
//!
//! A log is a directory of `wal-<start>.log` files where `<start>` is the
//! zero-padded absolute index of the first event the segment holds. Each
//! segment begins with a 14-byte header (`ABWL`, version, start index).
//! Encoding the start index in both the name and the header makes
//! compaction a pure filename computation — a segment is fully covered by
//! a snapshot iff the *next* segment's start is ≤ the snapshot's event
//! count — and lets recovery verify segment contiguity without trusting
//! directory listings.
//!
//! ## Torn-tail rule
//!
//! Scanning stops at the first violation — a record header that doesn't
//! fit, a declared length past end-of-file (torn: the crash shape), a CRC
//! or decode mismatch (corrupt), or a segment that is not contiguous with
//! its predecessor. In repair mode everything from the violation on is
//! discarded *exactly*: the bad segment is truncated to its last good
//! byte and later segments are deleted. Nothing past a violation is ever
//! replayed as state.

use crate::crc::crc32;
use crate::metrics::StoreMetrics;
use crate::StoreError;
use arbalest_offload::fault::{FaultConfig, FaultOutcome, FaultPlan, FaultSite};
use arbalest_offload::trace::TraceEvent;
use arbalest_offload::wire::{self, Cursor, WireError};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Magic prefix of a WAL segment file.
pub const WAL_MAGIC: [u8; 4] = *b"ABWL";

/// Version of the WAL record layout. Bump on any layout change.
pub const WAL_VERSION: u16 = 1;

/// Segment header bytes: magic + version + start index.
pub const WAL_HEADER: usize = 4 + 2 + 8;

/// Largest record payload a reader accepts (matches the server's frame
/// bound, so any accepted `Events` frame is loggable).
pub const MAX_RECORD: u32 = 32 << 20;

/// When (relative to appends) WAL bytes are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acked batch is always durable.
    Always,
    /// Group commit: `fsync` once at least this many bytes are unsynced.
    /// A crash can lose up to one group of *acked* events — recovery
    /// still converges, the client just re-submits from the typed gap.
    Group {
        /// Unsynced-byte threshold that triggers a flush.
        bytes: u64,
    },
    /// Never `fsync`; rely on the OS. Fastest, weakest.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Group { bytes: 256 * 1024 }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Group { bytes } => write!(f, "group={bytes}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "group" => Ok(FsyncPolicy::default()),
            _ => match s.strip_prefix("group=") {
                Some(n) => n
                    .parse::<u64>()
                    .map(|bytes| FsyncPolicy::Group { bytes })
                    .map_err(|_| format!("bad group fsync byte count '{n}'")),
                None => Err(format!("unknown fsync policy '{s}' (always|group[=BYTES]|never)")),
            },
        }
    }
}

fn segment_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("wal-{start:020}.log"))
}

/// List a log directory's segments as `(start_index, path)`, sorted.
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(start) = name.strip_prefix("wal-").and_then(|s| s.strip_suffix(".log")) {
            if let Ok(start) = start.parse::<u64>() {
                out.push((start, entry.path()));
            }
        }
    }
    out.sort_unstable_by_key(|&(start, _)| start);
    Ok(out)
}

/// The appender side of one session's log.
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    segment_bytes: u64,
    bytes_in_segment: u64,
    unsynced: u64,
    events_appended: u64,
    policy: FsyncPolicy,
    plan: FaultPlan,
    metrics: Arc<StoreMetrics>,
    poisoned: bool,
}

impl WalWriter {
    /// Open a writer over `dir`, starting a *fresh* segment whose first
    /// event has absolute index `start_event` (0 for a new session, the
    /// recovered event count after recovery). Existing segments are left
    /// alone; the new segment is contiguous with them by construction.
    pub fn open(
        dir: &Path,
        start_event: u64,
        segment_bytes: u64,
        policy: FsyncPolicy,
        faults: FaultConfig,
        metrics: Arc<StoreMetrics>,
    ) -> Result<WalWriter, StoreError> {
        fs::create_dir_all(dir)?;
        let file = Self::new_segment(dir, start_event)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            file,
            segment_bytes: segment_bytes.max(WAL_HEADER as u64 + 1),
            bytes_in_segment: WAL_HEADER as u64,
            unsynced: 0,
            events_appended: start_event,
            policy,
            plan: FaultPlan::new(faults),
            metrics,
            poisoned: false,
        })
    }

    fn new_segment(dir: &Path, start: u64) -> Result<File, StoreError> {
        let mut header = Vec::with_capacity(WAL_HEADER);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&start.to_le_bytes());
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(dir, start))?;
        file.write_all(&header)?;
        Ok(file)
    }

    /// Total events appended over the log's lifetime (== the absolute
    /// index the next appended event will get).
    pub fn events_appended(&self) -> u64 {
        self.events_appended
    }

    /// Append one batch as a single CRC-framed record, then apply the
    /// fsync policy. On success the batch may be acked to the client;
    /// returns the record size in bytes (framing included).
    pub fn append(&mut self, events: &[TraceEvent]) -> Result<u64, StoreError> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        if events.is_empty() {
            return Ok(0);
        }
        if self.bytes_in_segment >= self.segment_bytes {
            self.sync()?;
            self.file = Self::new_segment(&self.dir, self.events_appended)?;
            self.bytes_in_segment = WAL_HEADER as u64;
        }
        let mut payload = wire::encode_events(events);
        let crc = crc32(&payload);
        if self.plan.active() {
            if let FaultOutcome::Permanent = self.plan.decide(FaultSite::WalCorruptRecord) {
                // Written whole, checksummed wrong: silent corruption that
                // only the recovery scan can catch.
                let idx = payload.len() / 2;
                payload[idx] ^= 0x40;
                self.metrics.injected[1].inc();
            }
        }
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc.to_le_bytes());
        record.extend_from_slice(&payload);
        if self.plan.active() {
            if let FaultOutcome::Partial { frac256 } = self.plan.decide(FaultSite::WalTornTail) {
                // The crash model: only a prefix reaches the file, and the
                // "process" (this writer) dies.
                let keep = (record.len() * frac256 as usize) / 256;
                self.file.write_all(&record[..keep])?;
                let _ = self.file.flush();
                self.metrics.injected[0].inc();
                self.poisoned = true;
                return Err(StoreError::Poisoned);
            }
        }
        self.file.write_all(&record)?;
        self.events_appended += events.len() as u64;
        self.bytes_in_segment += record.len() as u64;
        self.unsynced += record.len() as u64;
        self.metrics.wal_records.inc();
        self.metrics.wal_appended_bytes.add(record.len() as u64);
        match self.policy {
            FsyncPolicy::Always => self.do_sync()?,
            FsyncPolicy::Group { bytes } => {
                if self.unsynced >= bytes {
                    self.do_sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(record.len() as u64)
    }

    /// Force a flush to stable storage (snapshot barriers use this
    /// regardless of policy).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.unsynced > 0 {
            self.do_sync()?;
        }
        Ok(())
    }

    fn do_sync(&mut self) -> Result<(), StoreError> {
        if self.plan.active() {
            if let FaultOutcome::Transient = self.plan.decide(FaultSite::FsyncFail) {
                // Transient: the bytes stay unsynced and the next group
                // flush retries them.
                self.metrics.injected[2].inc();
                self.metrics.fsync_failures.inc();
                return Ok(());
            }
        }
        let started = Instant::now();
        match self.file.sync_data() {
            Ok(()) => {
                self.metrics.fsync_latency.record_duration(started.elapsed());
                self.metrics.fsyncs.inc();
                self.unsynced = 0;
                Ok(())
            }
            Err(e) => {
                self.metrics.fsync_failures.inc();
                Err(StoreError::Io(e))
            }
        }
    }
}

/// Result of scanning (and optionally repairing) one session's log.
#[derive(Debug)]
pub struct WalReplay {
    /// Absolute index of `events[0]` (the first segment's start).
    pub first_event: u64,
    /// Every event recovered from complete, checksummed records, in order.
    pub events: Vec<TraceEvent>,
    /// Complete records scanned.
    pub records: u64,
    /// Segment files scanned.
    pub segments: u64,
    /// Bytes past the first violation (discarded in repair mode).
    pub truncated_bytes: u64,
    /// A record was incomplete — the crash shape.
    pub torn: bool,
    /// A record was complete but failed its CRC or decode — bit rot or an
    /// injected corruption.
    pub corrupt: bool,
}

enum ScanEnd {
    Clean,
    /// Violation at this byte offset; `torn` distinguishes an incomplete
    /// suffix from a checksum/decode failure.
    Broken { good_bytes: u64, torn: bool },
}

fn scan_segment(
    bytes: &[u8],
    name_start: u64,
    events: &mut Vec<TraceEvent>,
) -> (u64, ScanEnd) {
    if bytes.len() < WAL_HEADER
        || bytes[0..4] != WAL_MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != WAL_VERSION
        || u64::from_le_bytes(bytes[6..14].try_into().unwrap()) != name_start
    {
        // A header can only be short if the crash hit mid-roll; a header
        // that disagrees with the filename is corruption. Either way the
        // whole file is unusable.
        let torn = bytes.len() < WAL_HEADER;
        return (0, ScanEnd::Broken { good_bytes: 0, torn });
    }
    let mut pos = WAL_HEADER;
    let mut records = 0u64;
    loop {
        let left = bytes.len() - pos;
        if left == 0 {
            return (records, ScanEnd::Clean);
        }
        if left < 8 {
            return (records, ScanEnd::Broken { good_bytes: pos as u64, torn: true });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD {
            return (records, ScanEnd::Broken { good_bytes: pos as u64, torn: false });
        }
        if left - 8 < len as usize {
            return (records, ScanEnd::Broken { good_bytes: pos as u64, torn: true });
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            return (records, ScanEnd::Broken { good_bytes: pos as u64, torn: false });
        }
        let mut cur = Cursor::new(payload);
        let before = events.len();
        match wire::decode_events(&mut cur) {
            Ok(evs) if cur.is_empty() => events.extend(evs),
            Ok(_) | Err(_) => {
                // CRC matched but the payload does not decode as a clean
                // event batch: a writer bug or forged bytes. Same rule —
                // stop, never replay it.
                events.truncate(before);
                return (records, ScanEnd::Broken { good_bytes: pos as u64, torn: false });
            }
        }
        records += 1;
        pos += 8 + len as usize;
    }
}

fn decode_batch_guard(payload: &[u8]) -> Result<Vec<TraceEvent>, WireError> {
    let mut cur = Cursor::new(payload);
    let evs = wire::decode_events(&mut cur)?;
    if !cur.is_empty() {
        return Err(WireError::TrailingBytes { extra: cur.remaining() });
    }
    Ok(evs)
}

/// Scan a log directory. With `repair`, the first violation's suffix is
/// physically discarded: the broken segment is truncated to its last good
/// byte (deleted outright when even its header is bad) and every later
/// segment is deleted, so a subsequent scan is clean. Without `repair`
/// (inspection), files are not touched.
pub fn read_wal(dir: &Path, repair: bool) -> Result<WalReplay, StoreError> {
    let segments = list_segments(dir)?;
    let mut replay = WalReplay {
        first_event: segments.first().map(|&(s, _)| s).unwrap_or(0),
        events: Vec::new(),
        records: 0,
        segments: 0,
        truncated_bytes: 0,
        torn: false,
        corrupt: false,
    };
    let mut broken_at: Option<usize> = None;
    let mut expected_start: Option<u64> = None;
    for (i, (start, path)) in segments.iter().enumerate() {
        if let Some(exp) = expected_start {
            if *start != exp {
                // A hole in the sequence (lost or misnamed segment):
                // everything from here on is unanchored.
                replay.corrupt = true;
                broken_at = Some(i);
                for (_, later) in &segments[i..] {
                    replay.truncated_bytes += fs::metadata(later).map(|m| m.len()).unwrap_or(0);
                }
                break;
            }
        }
        let bytes = fs::read(path)?;
        let (records, end) = scan_segment(&bytes, *start, &mut replay.events);
        replay.records += records;
        replay.segments += 1;
        match end {
            ScanEnd::Clean => {
                expected_start = Some(replay.first_event + replay.events.len() as u64);
            }
            ScanEnd::Broken { good_bytes, torn } => {
                if torn {
                    replay.torn = true;
                } else {
                    replay.corrupt = true;
                }
                replay.truncated_bytes += bytes.len() as u64 - good_bytes;
                for (_, later) in &segments[i + 1..] {
                    replay.truncated_bytes += fs::metadata(later).map(|m| m.len()).unwrap_or(0);
                }
                if repair {
                    if good_bytes == 0 {
                        fs::remove_file(path)?;
                    } else {
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(good_bytes)?;
                        f.sync_data()?;
                    }
                }
                broken_at = Some(i + 1);
                break;
            }
        }
    }
    if let Some(from) = broken_at {
        if repair {
            for (_, later) in &segments[from..] {
                if later.exists() {
                    fs::remove_file(later)?;
                }
            }
        }
    }
    Ok(replay)
}

/// Decode one record payload exactly as the recovery scan does (used by
/// `store inspect` to show per-record event counts).
pub fn decode_record_payload(payload: &[u8]) -> Result<Vec<TraceEvent>, WireError> {
    decode_batch_guard(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_obs::Registry;
    use arbalest_offload::events::{SyncEvent, TaskId};

    fn metrics() -> Arc<StoreMetrics> {
        Registry::new().state(StoreMetrics::new)
    }

    fn ev(n: u32) -> TraceEvent {
        TraceEvent::Sync(SyncEvent::TaskCreate { parent: TaskId(0), child: TaskId(n) })
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "arbalest-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut w = WalWriter::open(
            &dir,
            0,
            8 << 20,
            FsyncPolicy::Never,
            FaultConfig::disabled(),
            metrics(),
        )
        .unwrap();
        w.append(&[ev(1), ev(2)]).unwrap();
        w.append(&[ev(3)]).unwrap();
        assert_eq!(w.events_appended(), 3);
        let replay = read_wal(&dir, false).unwrap();
        assert_eq!(replay.events, vec![ev(1), ev(2), ev(3)]);
        assert_eq!(replay.records, 2);
        assert!(!replay.torn && !replay.corrupt);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_stay_contiguous() {
        let dir = tmpdir("roll");
        // Tiny segment bound: every record rolls a new segment.
        let mut w = WalWriter::open(
            &dir,
            0,
            WAL_HEADER as u64 + 1,
            FsyncPolicy::Never,
            FaultConfig::disabled(),
            metrics(),
        )
        .unwrap();
        for n in 0..5 {
            w.append(&[ev(n)]).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 4, "expected rolls, got {}", segs.len());
        let replay = read_wal(&dir, false).unwrap();
        assert_eq!(replay.events.len(), 5);
        assert!(!replay.torn && !replay.corrupt);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_exactly() {
        let dir = tmpdir("torn");
        let mut w = WalWriter::open(
            &dir,
            0,
            8 << 20,
            FsyncPolicy::Never,
            FaultConfig::disabled(),
            metrics(),
        )
        .unwrap();
        w.append(&[ev(1)]).unwrap();
        w.append(&[ev(2)]).unwrap();
        drop(w);
        // Tear the last record by chopping 3 bytes off the file.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 3).unwrap();
        let replay = read_wal(&dir, true).unwrap();
        assert_eq!(replay.events, vec![ev(1)], "exactly the torn suffix is dropped");
        assert!(replay.torn && !replay.corrupt);
        // After repair the log scans clean.
        let again = read_wal(&dir, false).unwrap();
        assert_eq!(again.events, vec![ev(1)]);
        assert!(!again.torn && !again.corrupt);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay_typed() {
        let dir = tmpdir("corrupt");
        let mut w = WalWriter::open(
            &dir,
            0,
            8 << 20,
            FsyncPolicy::Never,
            FaultConfig::disabled(),
            metrics(),
        )
        .unwrap();
        w.append(&[ev(1)]).unwrap();
        w.append(&[ev(2)]).unwrap();
        w.append(&[ev(3)]).unwrap();
        drop(w);
        // Flip a byte inside the second record's payload.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let first_rec = 8 + u32::from_le_bytes(bytes[WAL_HEADER..WAL_HEADER + 4].try_into().unwrap()) as usize;
        let target = WAL_HEADER + first_rec + 10;
        bytes[target] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let replay = read_wal(&dir, true).unwrap();
        assert_eq!(replay.events, vec![ev(1)], "records after the corruption are dropped too");
        assert!(replay.corrupt && !replay.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_write_poisons_the_writer_and_scans_like_a_crash() {
        let dir = tmpdir("inject");
        let m = metrics();
        let mut w = WalWriter::open(
            &dir,
            0,
            8 << 20,
            FsyncPolicy::Never,
            FaultConfig::new(7, 1.0),
            m.clone(),
        )
        .unwrap();
        // First append: WalCorruptRecord fires (rate 1.0) and corrupts it;
        // WalTornTail also fires and tears the write. Either way the
        // append errors and the writer is poisoned.
        let err = w.append(&[ev(1)]).unwrap_err();
        assert!(matches!(err, StoreError::Poisoned), "{err:?}");
        assert!(matches!(w.append(&[ev(2)]).unwrap_err(), StoreError::Poisoned));
        assert!(m.injected[0].get() >= 1, "torn-tail fault not counted");
        // The resulting file recovers typed: nothing or a broken suffix.
        let replay = read_wal(&dir, true).unwrap();
        assert!(replay.events.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_after_recovery_is_contiguous() {
        let dir = tmpdir("resume");
        let m = metrics();
        let mut w = WalWriter::open(&dir, 0, 8 << 20, FsyncPolicy::Never, FaultConfig::disabled(), m.clone()).unwrap();
        w.append(&[ev(1), ev(2)]).unwrap();
        drop(w);
        let replay = read_wal(&dir, true).unwrap();
        assert_eq!(replay.events.len(), 2);
        // Reopen at the recovered count: a fresh contiguous segment.
        let mut w = WalWriter::open(&dir, 2, 8 << 20, FsyncPolicy::Always, FaultConfig::disabled(), m).unwrap();
        w.append(&[ev(3)]).unwrap();
        drop(w);
        let replay = read_wal(&dir, false).unwrap();
        assert_eq!(replay.events, vec![ev(1), ev(2), ev(3)]);
        assert!(!replay.torn && !replay.corrupt);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!("always".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Always);
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert_eq!(
            "group=4096".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Group { bytes: 4096 }
        );
        assert_eq!("group".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::default());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }
}
