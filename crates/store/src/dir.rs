//! The [`Store`]: per-session directories of WAL segments and snapshots,
//! snapshot triggering, compaction, and crash recovery.
//!
//! Layout under the data directory:
//!
//! ```text
//! <root>/sessions/<id>/wal-<start>.log        segmented WAL
//! <root>/sessions/<id>/snapshot-<seq>.snap    versioned snapshots
//! ```
//!
//! A session directory existing at startup *is* the "unfinished session"
//! marker: a clean `Finish` removes the directory, so everything found at
//! boot is recovered. Snapshots are written atomically (temp + rename)
//! and the WAL is fsynced before a snapshot counts, so at any instant
//! the directory holds a consistent (snapshot, WAL-tail) pair.

use crate::metrics::StoreMetrics;
use crate::snapshot::{decode_session_snapshot, encode_session_snapshot};
use crate::wal::{list_segments, read_wal, FsyncPolicy, WalWriter};
use crate::StoreError;
use arbalest_core::{AnalysisSession, ArbalestConfig, SessionSnapshot};
use arbalest_obs::Registry;
use arbalest_offload::fault::FaultConfig;
use arbalest_offload::trace::TraceEvent;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Durability tuning for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Roll a new WAL segment once the current one exceeds this.
    pub segment_bytes: u64,
    /// When WAL bytes reach stable storage relative to appends.
    pub fsync: FsyncPolicy,
    /// Snapshot a session after this many WAL bytes since the last
    /// snapshot (0 disables the byte trigger).
    pub snapshot_every_bytes: u64,
    /// Snapshot a session after this many events since the last snapshot
    /// (0 disables the event trigger).
    pub snapshot_every_events: u64,
    /// Deterministic storage-fault injection (tests and chaos soaks).
    pub faults: FaultConfig,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::default(),
            snapshot_every_bytes: 0,
            snapshot_every_events: 0,
            faults: FaultConfig::disabled(),
        }
    }
}

/// One data directory holding every session's durable state.
pub struct Store {
    root: PathBuf,
    cfg: StoreConfig,
    metrics: Arc<StoreMetrics>,
}

/// One session's outcome in a [`Store::recover_all`] sweep.
pub type RecoveryOutcome = (u64, Result<RecoveredSession, StoreError>);

/// A session rebuilt from disk by [`Store::recover_session`].
pub struct RecoveredSession {
    /// The restored analysis session, ready for more events.
    pub session: AnalysisSession,
    /// Total events the session has absorbed (snapshot + replayed tail).
    pub events: u64,
    /// Events replayed from the WAL tail past the snapshot.
    pub wal_events_replayed: u64,
    /// Bytes discarded as a torn or corrupt suffix.
    pub truncated_bytes: u64,
    /// The WAL tail ended in an incomplete record (crash shape).
    pub torn: bool,
    /// The WAL tail contained a checksum/decode failure.
    pub corrupt: bool,
}

/// The per-session append handle: a [`WalWriter`] plus the since-last-
/// snapshot counters that drive [`SessionLog::snapshot_due`].
pub struct SessionLog {
    wal: WalWriter,
    every_bytes: u64,
    every_events: u64,
    since_bytes: u64,
    since_events: u64,
}

impl SessionLog {
    /// Append one batch; the batch may be acked to the client only after
    /// this returns `Ok`.
    pub fn append(&mut self, events: &[TraceEvent]) -> Result<(), StoreError> {
        let bytes = self.wal.append(events)?;
        self.since_bytes += bytes;
        self.since_events += events.len() as u64;
        Ok(())
    }

    /// Absolute index the next appended event will get.
    pub fn events_appended(&self) -> u64 {
        self.wal.events_appended()
    }

    /// Whether a configured snapshot trigger has fired since the last
    /// [`SessionLog::mark_snapshot`].
    pub fn snapshot_due(&self) -> bool {
        (self.every_bytes > 0 && self.since_bytes >= self.every_bytes)
            || (self.every_events > 0 && self.since_events >= self.every_events)
    }

    /// Reset the snapshot triggers (call after a successful snapshot).
    pub fn mark_snapshot(&mut self) {
        self.since_bytes = 0;
        self.since_events = 0;
    }

    /// Force WAL bytes to stable storage regardless of fsync policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }
}

fn snapshot_seq(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?.strip_suffix(".snap")?.parse().ok()
}

fn list_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(snapshot_seq) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

impl Store {
    /// Open (creating if needed) a data directory. Metrics register into
    /// `reg` once per registry via the instrument-pack cache.
    pub fn open(root: &Path, cfg: StoreConfig, reg: &Registry) -> Result<Store, StoreError> {
        fs::create_dir_all(root.join("sessions"))?;
        Ok(Store { root: root.to_path_buf(), cfg, metrics: reg.state(StoreMetrics::new) })
    }

    /// The durability configuration this store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// The store's instrument pack.
    pub fn metrics(&self) -> &Arc<StoreMetrics> {
        &self.metrics
    }

    /// Directory holding one session's segments and snapshots.
    pub fn session_dir(&self, id: u64) -> PathBuf {
        self.root.join("sessions").join(id.to_string())
    }

    /// Ids of every session directory present (ascending). Each one is an
    /// unfinished session to recover.
    pub fn session_ids(&self) -> Result<Vec<u64>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("sessions"))? {
            let entry = entry?;
            if let Some(id) = entry.file_name().to_str().and_then(|s| s.parse().ok()) {
                out.push(id);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Open the append handle for a session, starting a fresh segment at
    /// absolute event index `start_event` (0 for new sessions, the
    /// recovered count when resuming).
    pub fn open_log(&self, id: u64, start_event: u64) -> Result<SessionLog, StoreError> {
        let wal = WalWriter::open(
            &self.session_dir(id),
            start_event,
            self.cfg.segment_bytes,
            self.cfg.fsync,
            self.cfg.faults,
            self.metrics.clone(),
        )?;
        Ok(SessionLog {
            wal,
            every_bytes: self.cfg.snapshot_every_bytes,
            every_events: self.cfg.snapshot_every_events,
            since_bytes: 0,
            since_events: 0,
        })
    }

    /// Atomically persist a snapshot (temp file + rename + fsync) under
    /// the next sequence number. Returns the encoded size in bytes.
    pub fn write_snapshot(&self, id: u64, snap: &SessionSnapshot) -> Result<u64, StoreError> {
        let started = Instant::now();
        let dir = self.session_dir(id);
        fs::create_dir_all(&dir)?;
        let seq = list_snapshots(&dir)?.last().map(|&(s, _)| s + 1).unwrap_or(0);
        let bytes = encode_session_snapshot(snap);
        let tmp = dir.join(format!("snapshot-{seq:010}.tmp"));
        let final_path = dir.join(format!("snapshot-{seq:010}.snap"));
        {
            let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        // Durable rename: fsync the directory so the new name survives.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        self.metrics.snapshots.inc();
        self.metrics.snapshot_bytes.add(bytes.len() as u64);
        self.metrics.snapshot_duration.record_duration(started.elapsed());
        Ok(bytes.len() as u64)
    }

    /// The newest snapshot that decodes cleanly, if any. Unreadable or
    /// corrupt snapshots are skipped (never deleted here), falling back
    /// to older ones — a half-written snapshot can't poison recovery.
    pub fn latest_snapshot(&self, id: u64) -> Result<Option<SessionSnapshot>, StoreError> {
        let dir = self.session_dir(id);
        if !dir.exists() {
            return Ok(None);
        }
        for (_, path) in list_snapshots(&dir)?.into_iter().rev() {
            let Ok(bytes) = fs::read(&path) else { continue };
            if let Ok(snap) = decode_session_snapshot(&bytes) {
                return Ok(Some(snap));
            }
        }
        Ok(None)
    }

    /// Delete WAL segments fully covered by `covered_events` (a segment
    /// is deletable when the *next* segment starts at or before that
    /// index — the live tail segment is never deleted) and all but the
    /// newest snapshot. Returns the number of segments removed.
    pub fn compact(&self, id: u64, covered_events: u64) -> Result<u64, StoreError> {
        let dir = self.session_dir(id);
        let segments = list_segments(&dir)?;
        let mut removed = 0u64;
        for pair in segments.windows(2) {
            let (_, ref path) = pair[0];
            let (next_start, _) = pair[1];
            if next_start <= covered_events {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        let snaps = list_snapshots(&dir)?;
        for (_, path) in snaps.iter().rev().skip(1) {
            fs::remove_file(path)?;
        }
        self.metrics.segments_compacted.add(removed);
        Ok(removed)
    }

    /// Rebuild one session from its latest valid snapshot plus the WAL
    /// tail, repairing (truncating) any torn or corrupt suffix in place.
    ///
    /// `cfg` seeds the detector only when no snapshot exists (a snapshot
    /// carries its own configuration). Fails typed — [`StoreError::Gap`]
    /// when compaction outran the surviving snapshots — rather than ever
    /// installing wrong state.
    pub fn recover_session(
        &self,
        id: u64,
        cfg: &ArbalestConfig,
        reg: &Registry,
    ) -> Result<RecoveredSession, StoreError> {
        let dir = self.session_dir(id);
        let snap = self.latest_snapshot(id)?;
        let (session, skip) = match snap {
            Some(s) => {
                let events = s.events;
                (AnalysisSession::from_snapshot(&s, reg.clone())?, events)
            }
            None => (AnalysisSession::with_registry(cfg.clone(), reg.clone()), 0),
        };
        let replay = read_wal(&dir, true)?;
        let mut replayed = 0u64;
        if !replay.events.is_empty() {
            if replay.first_event > skip {
                return Err(StoreError::Gap { have: replay.first_event, need: skip });
            }
            let offset = (skip - replay.first_event) as usize;
            if offset < replay.events.len() {
                session.feed_batch(&replay.events[offset..]);
                replayed = (replay.events.len() - offset) as u64;
            }
        }
        self.metrics.recovered_sessions.inc();
        self.metrics.recovered_events.add(replayed);
        self.metrics.truncated_bytes.add(replay.truncated_bytes);
        if replay.torn {
            self.metrics.torn_tails.inc();
        }
        if replay.corrupt {
            self.metrics.corrupt_records.inc();
        }
        Ok(RecoveredSession {
            events: session.events(),
            session,
            wal_events_replayed: replayed,
            truncated_bytes: replay.truncated_bytes,
            torn: replay.torn,
            corrupt: replay.corrupt,
        })
    }

    /// Recover every session directory. A session that fails to recover
    /// is returned as its error (the directory is left untouched for
    /// inspection) without aborting the others.
    pub fn recover_all(
        &self,
        cfg: &ArbalestConfig,
        reg: &Registry,
    ) -> Result<Vec<RecoveryOutcome>, StoreError> {
        let mut out = Vec::new();
        for id in self.session_ids()? {
            out.push((id, self.recover_session(id, cfg, reg)));
        }
        Ok(out)
    }

    /// Remove a session's durable state (after a clean `Finish`).
    pub fn remove_session(&self, id: u64) -> Result<(), StoreError> {
        let dir = self.session_dir(id);
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::prelude::*;
    use arbalest_offload::trace::TraceRecorder;

    fn dracc_trace(i: usize) -> Vec<TraceEvent> {
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        arbalest_dracc::all()[i].run(&rt);
        rec.take()
    }

    fn tmp_store(tag: &str, cfg: StoreConfig) -> Store {
        let root = std::env::temp_dir().join(format!(
            "arbalest-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        Store::open(&root, cfg, &Registry::new()).unwrap()
    }

    fn destroy(store: Store) {
        let _ = fs::remove_dir_all(&store.root);
    }

    #[test]
    fn wal_only_recovery_matches_uninterrupted_run() {
        let store = tmp_store("walonly", StoreConfig::default());
        let trace = dracc_trace(1);
        let cut = trace.len() / 2;
        let mut log = store.open_log(7, 0).unwrap();
        for chunk in trace[..cut].chunks(5) {
            log.append(chunk).unwrap();
        }
        drop(log); // crash: in-memory session lost, WAL survives

        let rec = store.recover_session(7, &ArbalestConfig::default(), &Registry::new()).unwrap();
        assert_eq!(rec.events, cut as u64);
        assert_eq!(rec.wal_events_replayed, cut as u64);
        assert!(!rec.torn && !rec.corrupt);

        // Feed the tail; the report must match an uninterrupted run.
        rec.session.feed_batch(&trace[cut..]);
        let whole = AnalysisSession::new(ArbalestConfig::default());
        whole.feed_batch(&trace);
        assert_eq!(rec.session.finish(), whole.finish());
        destroy(store);
    }

    #[test]
    fn snapshot_plus_tail_recovery_and_compaction() {
        let cfg = StoreConfig { segment_bytes: 4096, ..StoreConfig::default() };
        let store = tmp_store("snaptail", cfg);
        let trace = dracc_trace(3);
        let snap_at = trace.len() / 3;
        let cut = 2 * trace.len() / 3;

        let live = AnalysisSession::new(ArbalestConfig::default());
        let mut log = store.open_log(1, 0).unwrap();
        for (i, ev) in trace[..cut].iter().enumerate() {
            log.append(std::slice::from_ref(ev)).unwrap();
            live.feed(ev);
            if i + 1 == snap_at {
                log.sync().unwrap();
                store.write_snapshot(1, &live.to_snapshot()).unwrap();
                store.compact(1, snap_at as u64).unwrap();
                log.mark_snapshot();
            }
        }
        drop(log);
        drop(live);

        let rec = store.recover_session(1, &ArbalestConfig::default(), &Registry::new()).unwrap();
        assert_eq!(rec.events, cut as u64);
        assert_eq!(
            rec.wal_events_replayed,
            (cut - snap_at) as u64,
            "replay must start from the snapshot, not the stream head"
        );
        rec.session.feed_batch(&trace[cut..]);
        let whole = AnalysisSession::new(ArbalestConfig::default());
        whole.feed_batch(&trace);
        assert_eq!(rec.session.finish(), whole.finish());
        destroy(store);
    }

    #[test]
    fn recovery_at_every_cut_point_is_byte_identical() {
        // The acceptance-criterion shape, in miniature: kill at every
        // prefix, recover, finish, demand identical reports.
        let store = tmp_store("everycut", StoreConfig::default());
        let trace = dracc_trace(0);
        let whole = AnalysisSession::new(ArbalestConfig::default());
        whole.feed_batch(&trace);
        let want = whole.finish();

        for cut in (0..=trace.len()).step_by(7) {
            let id = cut as u64 + 100;
            let mut log = store.open_log(id, 0).unwrap();
            log.append(&trace[..cut]).unwrap();
            drop(log);
            let rec =
                store.recover_session(id, &ArbalestConfig::default(), &Registry::new()).unwrap();
            rec.session.feed_batch(&trace[cut..]);
            assert_eq!(rec.session.finish(), want, "diverged at cut {cut}");
            store.remove_session(id).unwrap();
        }
        destroy(store);
    }

    #[test]
    fn gap_between_snapshot_and_wal_is_typed() {
        let store = tmp_store("gap", StoreConfig::default());
        let trace = dracc_trace(0);
        // Log starts at event 10 but no snapshot covers events 0..10.
        let mut log = store.open_log(2, 10).unwrap();
        log.append(&trace[10..20]).unwrap();
        drop(log);
        let err = store.recover_session(2, &ArbalestConfig::default(), &Registry::new());
        match err {
            Err(StoreError::Gap { have: 10, need: 0 }) => {}
            other => panic!("expected Gap, got {:?}", other.map(|r| r.events)),
        }
        destroy(store);
    }

    #[test]
    fn finish_removes_session_and_recover_all_skips_it() {
        let store = tmp_store("remove", StoreConfig::default());
        let trace = dracc_trace(0);
        let mut log = store.open_log(3, 0).unwrap();
        log.append(&trace[..4]).unwrap();
        drop(log);
        assert_eq!(store.session_ids().unwrap(), vec![3]);
        store.remove_session(3).unwrap();
        assert!(store.session_ids().unwrap().is_empty());
        let all = store.recover_all(&ArbalestConfig::default(), &Registry::new()).unwrap();
        assert!(all.is_empty());
        destroy(store);
    }

    #[test]
    fn newer_corrupt_snapshot_falls_back_to_older_valid_one() {
        let store = tmp_store("snapfall", StoreConfig::default());
        let trace = dracc_trace(0);
        let live = AnalysisSession::new(ArbalestConfig::default());
        live.feed_batch(&trace[..6]);
        store.write_snapshot(4, &live.to_snapshot()).unwrap();
        live.feed_batch(&trace[6..12]);
        store.write_snapshot(4, &live.to_snapshot()).unwrap();
        // Corrupt the newer snapshot on disk.
        let dir = store.session_dir(4);
        let (_, newest) = list_snapshots(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        // Also log the WAL so recovery can reach event 12 again.
        let mut log = store.open_log(4, 6).unwrap();
        log.append(&trace[6..12]).unwrap();
        drop(log);
        let rec = store.recover_session(4, &ArbalestConfig::default(), &Registry::new()).unwrap();
        assert_eq!(rec.events, 12, "older snapshot (6 events) + WAL tail (6 events)");
        destroy(store);
    }
}
