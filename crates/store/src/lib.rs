//! # arbalest-store
//!
//! Durable sessions for the analysis service: a segmented append-only
//! **write-ahead log** of wire-encoded trace events per session, a
//! versioned binary **snapshot** format serializing complete analysis
//! state ([`arbalest_core::SessionSnapshot`]), and **crash recovery**
//! that rebuilds every unfinished session from its latest valid snapshot
//! plus the WAL tail.
//!
//! ARBALEST's soundness contract (Theorem 1) holds only over a *complete*
//! event stream, so the recovery invariants are strict:
//!
//! * An event is acknowledged to the client only after its batch is
//!   appended to the WAL — acked events survive a crash (modulo the
//!   configured [`FsyncPolicy`] window).
//! * A torn or CRC-corrupt WAL suffix is *discarded exactly*, never
//!   replayed as wrong state: recovery truncates at the first bad record
//!   and reports how much it dropped, typed.
//! * A recovered session fed the rest of its stream finishes with reports
//!   **byte-identical** to an uninterrupted in-process run (this rests on
//!   the deterministic `to_snapshot`/`from_snapshot` support in `core`,
//!   `shadow`, and `race`).
//!
//! Layering:
//!
//! * [`crc`] — hand-rolled CRC32 (IEEE), the only checksum in the stack.
//! * [`wal`] — record framing, segment files, group-fsync policy, torn
//!   tail scanning/repair.
//! * [`snapshot`] — the versioned snapshot byte format (also the payload
//!   of the server's `Export`/`Import` migration frames).
//! * [`dir`] — the [`Store`]: per-session directories, snapshot
//!   triggering state, compaction, recovery.
//! * [`metrics`] — `arbalest_store_*` observability instruments.

#![warn(missing_docs)]

pub mod crc;
pub mod dir;
pub mod metrics;
pub mod snapshot;
pub mod wal;

pub use dir::{RecoveredSession, RecoveryOutcome, SessionLog, Store, StoreConfig};
pub use metrics::StoreMetrics;
pub use snapshot::{decode_session_snapshot, encode_session_snapshot, SNAP_VERSION};
pub use wal::{read_wal, FsyncPolicy, WalReplay, WalWriter, WAL_VERSION};

use arbalest_core::RestoreError;
use arbalest_offload::wire::WireError;
use std::fmt;

/// Why a store operation failed. Every failure is typed: recovery never
/// silently installs wrong state.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A snapshot or WAL payload failed wire decoding.
    Wire(WireError),
    /// A snapshot file did not start with the snapshot magic.
    BadMagic,
    /// A snapshot or WAL file speaks a different layout version.
    Version {
        /// Version found in the file.
        got: u16,
        /// Version this build understands.
        want: u16,
    },
    /// A CRC32 trailer or record checksum did not match.
    Crc {
        /// Checksum stored in the file.
        expected: u32,
        /// Checksum of the bytes actually present.
        actual: u32,
    },
    /// A decoded snapshot could not be installed into a detector.
    Restore(RestoreError),
    /// The WAL no longer covers the events between the best snapshot and
    /// the log's first surviving record — state would be unsound.
    Gap {
        /// First event index the WAL still holds.
        have: u64,
        /// Event index recovery needed to resume from.
        need: u64,
    },
    /// The writer injected (or hit) a torn write and is no longer usable.
    Poisoned,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Wire(e) => write!(f, "store payload decode error: {e}"),
            StoreError::BadMagic => write!(f, "not an arbalest snapshot (bad magic)"),
            StoreError::Version { got, want } => {
                write!(f, "store format version {got} (this build speaks {want})")
            }
            StoreError::Crc { expected, actual } => {
                write!(f, "checksum mismatch: stored {expected:#010x}, computed {actual:#010x}")
            }
            StoreError::Restore(e) => write!(f, "snapshot cannot be installed: {e}"),
            StoreError::Gap { have, need } => write!(
                f,
                "WAL gap: needed events from index {need} but the log starts at {have}"
            ),
            StoreError::Poisoned => write!(f, "WAL writer is poisoned after a torn write"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> StoreError {
        StoreError::Wire(e)
    }
}

impl From<RestoreError> for StoreError {
    fn from(e: RestoreError) -> StoreError {
        StoreError::Restore(e)
    }
}

impl StoreError {
    /// Stable snake_case label of the variant (metric label vocabulary).
    pub fn label(&self) -> &'static str {
        match self {
            StoreError::Io(_) => "io",
            StoreError::Wire(_) => "wire",
            StoreError::BadMagic => "bad_magic",
            StoreError::Version { .. } => "version",
            StoreError::Crc { .. } => "crc",
            StoreError::Restore(_) => "restore",
            StoreError::Gap { .. } => "gap",
            StoreError::Poisoned => "poisoned",
        }
    }
}
