//! Versioned binary snapshot format for [`SessionSnapshot`].
//!
//! Layout (all integers little-endian, strings/collections in the PR-2
//! wire idiom of u32 counts + UTF-8 bytes):
//!
//! ```text
//! magic "ABSS" | version:u16 | events:u64
//! accelerators:u16 | check_races:bool | lookup_cache:bool
//! max_reports:u64 | degraded:bool
//! shadow_pages  : count | { idx:u64, cells: count + u64* }*
//! intervals     : count | { lo:u64, hi:u64, buffer:u32, ov_addr:u64 }*
//! buffers       : count | { id:u32, name:str, elem:u64, len:u64, ov:u64 }*
//! reports       : wire::encode_reports
//! seen          : count | { kind:u8, buffer:0|1+u32, file:str, line:u32 }*
//! race          : 0 | 1 + race-engine state (tasks, floors, locs, locks)
//! crc32 over everything above
//! ```
//!
//! The trailer CRC is verified *before* any field decoding, so a
//! truncated or bit-flipped snapshot fails typed ([`StoreError::Crc`])
//! rather than decoding into plausible-but-wrong state. The same bytes
//! are the payload of the server's `Export`/`ImportReply` migration
//! frames — a snapshot file and an exported session are interchangeable.

use crate::crc::crc32;
use crate::StoreError;
use arbalest_core::{CvInterval, DetectorSnapshot, SeenKey, SessionSnapshot};
use arbalest_offload::buffer::{BufferId, BufferInfo};
use arbalest_offload::wire::{self, Cursor, WireError};
use arbalest_race::{LocSnapshot, RaceSnapshot, ReadSnapshot, TaskSnapshot};

/// Magic prefix of a snapshot (file or `Export` payload).
pub const SNAP_MAGIC: [u8; 4] = *b"ABSS";

/// Version of the snapshot layout. Bump on any layout change.
pub const SNAP_VERSION: u16 = 1;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_clock(out: &mut Vec<u8>, slots: &[u64]) {
    put_u32(out, slots.len() as u32);
    for &s in slots {
        put_u64(out, s);
    }
}

fn clock(cur: &mut Cursor<'_>) -> Result<Vec<u64>, WireError> {
    let n = cur.count("clock slots")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(cur.u64()?);
    }
    Ok(out)
}

/// Serialize a session snapshot to its on-disk / on-wire bytes.
pub fn encode_session_snapshot(snap: &SessionSnapshot) -> Vec<u8> {
    let d = &snap.detector;
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&SNAP_MAGIC);
    put_u16(&mut out, SNAP_VERSION);
    put_u64(&mut out, snap.events);
    put_u16(&mut out, d.accelerators);
    put_bool(&mut out, d.check_races);
    put_bool(&mut out, d.lookup_cache);
    put_u64(&mut out, d.max_reports);
    put_bool(&mut out, d.degraded);

    put_u32(&mut out, d.shadow_pages.len() as u32);
    for (idx, cells) in &d.shadow_pages {
        put_u64(&mut out, *idx);
        put_clock(&mut out, cells);
    }

    put_u32(&mut out, d.intervals.len() as u32);
    for iv in &d.intervals {
        put_u64(&mut out, iv.lo);
        put_u64(&mut out, iv.hi);
        put_u32(&mut out, iv.buffer);
        put_u64(&mut out, iv.ov_addr);
    }

    put_u32(&mut out, d.buffers.len() as u32);
    for b in &d.buffers {
        put_u32(&mut out, b.id.0);
        wire::put_str(&mut out, &b.name);
        put_u64(&mut out, b.elem_size as u64);
        put_u64(&mut out, b.len as u64);
        put_u64(&mut out, b.ov_base);
    }

    out.extend_from_slice(&wire::encode_reports(&d.reports));

    put_u32(&mut out, d.seen.len() as u32);
    for k in &d.seen {
        out.push(wire::report_kind_tag(k.kind));
        match k.buffer {
            None => out.push(0),
            Some(id) => {
                out.push(1);
                put_u32(&mut out, id);
            }
        }
        wire::put_str(&mut out, &k.file);
        put_u32(&mut out, k.line);
    }

    match &d.race {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            put_u32(&mut out, r.tasks.len() as u32);
            for t in &r.tasks {
                put_u32(&mut out, t.task);
                put_u16(&mut out, t.tid);
                put_bool(&mut out, t.ended);
                put_clock(&mut out, &t.clock);
            }
            put_clock(&mut out, &r.slot_floor);
            put_u64(&mut out, r.next_slot);
            put_u32(&mut out, r.locs.len() as u32);
            for (granule, loc) in &r.locs {
                put_u64(&mut out, *granule);
                put_u16(&mut out, loc.write_tid);
                put_u64(&mut out, loc.write_clock);
                out.push(loc.write_offset);
                out.push(loc.write_size);
                match &loc.read {
                    ReadSnapshot::Epoch { tid, clock, offset, size } => {
                        out.push(0);
                        put_u16(&mut out, *tid);
                        put_u64(&mut out, *clock);
                        out.push(*offset);
                        out.push(*size);
                    }
                    ReadSnapshot::Shared(slots) => {
                        out.push(1);
                        put_clock(&mut out, slots);
                    }
                }
            }
            put_u32(&mut out, r.locks.len() as u32);
            for (lock, slots) in &r.locks {
                put_u64(&mut out, *lock);
                put_clock(&mut out, slots);
            }
        }
    }

    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decode snapshot bytes, verifying the CRC trailer first and rejecting
/// trailing garbage. The inverse of [`encode_session_snapshot`].
pub fn decode_session_snapshot(bytes: &[u8]) -> Result<SessionSnapshot, StoreError> {
    if bytes.len() < 4 + 2 + 4 {
        return Err(StoreError::BadMagic);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(trailer.try_into().unwrap());
    let actual = crc32(body);
    if expected != actual {
        return Err(StoreError::Crc { expected, actual });
    }
    if body[0..4] != SNAP_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut cur = Cursor::new(&body[4..]);
    let version = cur.u16()?;
    if version != SNAP_VERSION {
        return Err(StoreError::Version { got: version, want: SNAP_VERSION });
    }
    let events = cur.u64()?;
    let accelerators = cur.u16()?;
    let check_races = cur.bool()?;
    let lookup_cache = cur.bool()?;
    let max_reports = cur.u64()?;
    let degraded = cur.bool()?;

    let n = cur.count("shadow pages")?;
    let mut shadow_pages = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = cur.u64()?;
        let cells = clock(&mut cur)?;
        shadow_pages.push((idx, cells));
    }

    let n = cur.count("intervals")?;
    let mut intervals = Vec::with_capacity(n);
    for _ in 0..n {
        intervals.push(CvInterval {
            lo: cur.u64()?,
            hi: cur.u64()?,
            buffer: cur.u32()?,
            ov_addr: cur.u64()?,
        });
    }

    let n = cur.count("buffers")?;
    let mut buffers = Vec::with_capacity(n);
    for _ in 0..n {
        buffers.push(BufferInfo {
            id: BufferId(cur.u32()?),
            name: cur.string()?,
            elem_size: cur.u64()? as usize,
            len: cur.u64()? as usize,
            ov_base: cur.u64()?,
        });
    }

    let reports = wire::decode_reports(&mut cur)?;

    let n = cur.count("seen keys")?;
    let mut seen = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = wire::report_kind(cur.u8()?)?;
        let buffer = match cur.u8()? {
            0 => None,
            1 => Some(cur.u32()?),
            tag => return Err(StoreError::Wire(WireError::BadTag { what: "seen buffer", tag })),
        };
        seen.push(SeenKey { kind, buffer, file: cur.string()?, line: cur.u32()? });
    }

    let race = match cur.u8()? {
        0 => None,
        1 => {
            let n = cur.count("race tasks")?;
            let mut tasks = Vec::with_capacity(n);
            for _ in 0..n {
                tasks.push(TaskSnapshot {
                    task: cur.u32()?,
                    tid: cur.u16()?,
                    ended: cur.bool()?,
                    clock: clock(&mut cur)?,
                });
            }
            let slot_floor = clock(&mut cur)?;
            let next_slot = cur.u64()?;
            let n = cur.count("race locations")?;
            let mut locs = Vec::with_capacity(n);
            for _ in 0..n {
                let granule = cur.u64()?;
                let write_tid = cur.u16()?;
                let write_clock = cur.u64()?;
                let write_offset = cur.u8()?;
                let write_size = cur.u8()?;
                let read = match cur.u8()? {
                    0 => ReadSnapshot::Epoch {
                        tid: cur.u16()?,
                        clock: cur.u64()?,
                        offset: cur.u8()?,
                        size: cur.u8()?,
                    },
                    1 => ReadSnapshot::Shared(clock(&mut cur)?),
                    tag => {
                        return Err(StoreError::Wire(WireError::BadTag { what: "read state", tag }))
                    }
                };
                locs.push((
                    granule,
                    LocSnapshot { write_tid, write_clock, write_offset, write_size, read },
                ));
            }
            let n = cur.count("race locks")?;
            let mut locks = Vec::with_capacity(n);
            for _ in 0..n {
                locks.push((cur.u64()?, clock(&mut cur)?));
            }
            Some(RaceSnapshot { tasks, slot_floor, next_slot, locs, locks })
        }
        tag => return Err(StoreError::Wire(WireError::BadTag { what: "race state", tag })),
    };

    if !cur.is_empty() {
        return Err(StoreError::Wire(WireError::TrailingBytes { extra: cur.remaining() }));
    }

    Ok(SessionSnapshot {
        events,
        detector: DetectorSnapshot {
            accelerators,
            check_races,
            lookup_cache,
            max_reports,
            shadow_pages,
            intervals,
            buffers,
            reports,
            seen,
            degraded,
            race,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_core::{AnalysisSession, ArbalestConfig};
    use arbalest_offload::prelude::*;
    use arbalest_offload::trace::{TraceEvent, TraceRecorder};
    use std::sync::Arc;

    fn dracc_trace(i: usize) -> Vec<TraceEvent> {
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        arbalest_dracc::all()[i].run(&rt);
        rec.take()
    }

    fn mid_stream_snapshot() -> SessionSnapshot {
        // A real mid-stream state from a DRACC case exercises every
        // section: shadow pages, intervals, buffers, reports, seen keys,
        // and live race-engine state.
        let trace = dracc_trace(0);
        let session = AnalysisSession::new(ArbalestConfig::default());
        for ev in trace.iter().take(trace.len() * 2 / 3) {
            session.feed(ev);
        }
        session.to_snapshot()
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = mid_stream_snapshot();
        let bytes = encode_session_snapshot(&snap);
        let back = decode_session_snapshot(&bytes).unwrap();
        assert_eq!(back, snap);
        // Determinism: equal state must encode to equal bytes.
        assert_eq!(encode_session_snapshot(&back), bytes);
    }

    #[test]
    fn empty_session_round_trips() {
        let session = AnalysisSession::new(ArbalestConfig::default());
        let snap = session.to_snapshot();
        let bytes = encode_session_snapshot(&snap);
        assert_eq!(decode_session_snapshot(&bytes).unwrap(), snap);
    }

    #[test]
    fn corruption_fails_typed_never_decodes() {
        let bytes = encode_session_snapshot(&mid_stream_snapshot());
        // Every single-byte flip must be caught by the CRC trailer (or,
        // for flips inside the trailer itself, by the mismatch).
        let mut copy = bytes.clone();
        for i in (0..copy.len()).step_by(97) {
            copy[i] ^= 0x10;
            match decode_session_snapshot(&copy) {
                Err(StoreError::Crc { .. }) => {}
                other => panic!("flip at {i}: expected Crc error, got {other:?}"),
            }
            copy[i] ^= 0x10;
        }
    }

    #[test]
    fn truncation_fails_typed() {
        let bytes = encode_session_snapshot(&mid_stream_snapshot());
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_session_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Crc { .. } | StoreError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn wrong_version_fails_typed() {
        let snap = AnalysisSession::new(ArbalestConfig::default()).to_snapshot();
        let mut bytes = encode_session_snapshot(&snap);
        bytes[4] = 99;
        // Re-seal the CRC so the version check itself is reached.
        let body_len = bytes.len() - 4;
        let crc = crate::crc::crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        match decode_session_snapshot(&bytes) {
            Err(StoreError::Version { got: 99, want: SNAP_VERSION }) => {}
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn restored_snapshot_finishes_identically() {
        let trace = dracc_trace(2);
        let cut = trace.len() / 2;
        let whole = AnalysisSession::new(ArbalestConfig::default());
        let half = AnalysisSession::new(ArbalestConfig::default());
        for ev in &trace {
            whole.feed(ev);
        }
        for ev in &trace[..cut] {
            half.feed(ev);
        }
        let bytes = encode_session_snapshot(&half.to_snapshot());
        let snap = decode_session_snapshot(&bytes).unwrap();
        let resumed =
            AnalysisSession::from_snapshot(&snap, arbalest_obs::Registry::disabled()).unwrap();
        for ev in &trace[cut..] {
            resumed.feed(ev);
        }
        assert_eq!(resumed.finish(), whole.finish());
    }
}
