//! Detector-level tests for the §IV-C multi-accelerator extension and
//! the device-to-device transfer path.

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;

fn harness(accels: u16) -> (Runtime, Arc<Arbalest>) {
    let tool = Arc::new(Arbalest::new(ArbalestConfig { accelerators: accels, ..Default::default() }));
    let rt = Runtime::with_tool(Config::default().accelerators(accels), tool.clone());
    (rt, tool)
}

#[test]
fn clean_d2d_pipeline_has_no_reports() {
    let (rt, tool) = harness(2);
    let d0 = DeviceId(1);
    let d1 = DeviceId(2);
    let a = rt.alloc_with::<f64>("a", 16, |i| i as f64);
    rt.target_enter_data(d0, &[Map::to(&a)]);
    rt.target_enter_data(d1, &[Map::alloc(&a)]);
    rt.target().on_device(d0).map(Map::to(&a)).run(move |k| {
        k.for_each(0..16, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1.0);
        });
    });
    rt.device_memcpy(d0, d1, &a);
    rt.target().on_device(d1).map(Map::to(&a)).run(move |k| {
        k.for_each(0..16, |k, i| {
            let _ = k.read(&a, i); // valid: D2D copy delivered it
        });
    });
    rt.update_from_on(d1, &a);
    let _ = rt.read(&a, 3);
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

#[test]
fn d2d_copy_of_stale_source_propagates_staleness() {
    let (rt, tool) = harness(2);
    let d0 = DeviceId(1);
    let d1 = DeviceId(2);
    let a = rt.alloc_with::<f64>("a", 16, |i| i as f64);
    rt.target_enter_data(d0, &[Map::to(&a)]);
    rt.target_enter_data(d1, &[Map::alloc(&a)]);
    // Host updates after the to-map: device 0's CV is now stale.
    for i in 0..16 {
        rt.write(&a, i, -1.0);
    }
    // Copy the STALE device-0 CV to device 1, then read it there.
    rt.device_memcpy(d0, d1, &a);
    rt.target().on_device(d1).map(Map::to(&a)).run(move |k| {
        k.for_each(0..16, |k, i| {
            let _ = k.read(&a, i);
        });
    });
    assert!(
        tool.reports().iter().any(|r| r.kind == ReportKind::MappingUsd),
        "the D2D copy carries stale data: {:?}",
        tool.reports()
    );
}

#[test]
fn d2d_copy_of_uninitialised_source_is_uum_at_the_sink() {
    let (rt, tool) = harness(2);
    let d0 = DeviceId(1);
    let d1 = DeviceId(2);
    let a = rt.alloc::<f64>("a", 16); // never initialised anywhere
    rt.target_enter_data(d0, &[Map::alloc(&a)]);
    rt.target_enter_data(d1, &[Map::alloc(&a)]);
    rt.device_memcpy(d0, d1, &a);
    rt.target().on_device(d1).map(Map::alloc(&a)).run(move |k| {
        k.for_each(0..16, |k, i| {
            let _ = k.read(&a, i);
        });
    });
    assert!(
        tool.reports().iter().any(|r| r.kind == ReportKind::MappingUum),
        "{:?}",
        tool.reports()
    );
}

#[test]
fn seven_accelerators_round_robin() {
    // The widest configuration the multi-device shadow word supports.
    let (rt, tool) = harness(7);
    let a = rt.alloc_with::<f64>("a", 8, |_| 0.0);
    for d in 1..=7u16 {
        let dev = DeviceId(d);
        rt.target().on_device(dev).map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
    }
    assert_eq!(rt.read(&a, 0), 7.0);
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

#[test]
fn stats_expose_cache_amortisation() {
    let (rt, tool) = harness(1);
    let a = rt.alloc_with::<f64>("a", 4096, |_| 1.0);
    rt.target().map(Map::tofrom(&a)).run(move |k| {
        k.for_each(0..4096, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1.0);
        });
    });
    let stats = tool.stats();
    assert!(stats.accesses.get() >= 8192, "host init + kernel accesses");
    assert!(stats.vsm_transitions() >= stats.accesses.get());
    assert!(
        stats.cache_hit_rate() > 0.99,
        "sequential kernel accesses must hit the one-entry cache: {}",
        stats.cache_hit_rate()
    );
}

#[test]
fn cache_disabled_still_correct_just_not_amortised() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig { lookup_cache: false, ..Default::default() }));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    let a = rt.alloc_with::<f64>("a", 256, |_| 1.0);
    rt.target().map(Map::tofrom(&a)).run(move |k| {
        k.for_each(0..256, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v * 2.0);
        });
    });
    assert!(tool.reports().is_empty());
    assert_eq!(tool.stats().cache_hit_rate(), 0.0);
    assert!(tool.stats().cache_misses.get() >= 512);
}
