//! §V-A: implicit data mappings of `declare target` globals, and the
//! OMPT gap the paper reports ("OMPT does not provide correct mapping
//! information for global variables... we proposed that the OpenMP
//! runtime should provide event callbacks for those implicit data
//! mappings").
//!
//! With the proposed callbacks on (the default), ARBALEST handles
//! globals exactly like explicitly mapped data. With the callbacks off
//! (the LLVM-9-era OMPT), ARBALEST has no interval for the global's CV —
//! kernel accesses look like wild device reads, a spurious finding that
//! demonstrates *why* the authors needed the OMPT extension.

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;

fn global_program(rt: &Runtime) -> i64 {
    let table = rt.alloc_with::<i64>("lookup_table", 16, |i| (i * i) as i64);
    rt.declare_target(&table);
    let out = rt.alloc::<i64>("out", 16);
    rt.target().map(Map::from(&out)).run(move |k| {
        k.par_for(0..16, |k, i| {
            // No map clause for `table`: it is a declare-target global,
            // implicitly present since device initialisation.
            k.write(&out, i, k.read(&table, i) + 1);
        });
    });
    rt.read(&out, 3)
}

#[test]
fn globals_work_and_are_clean_with_implicit_map_events() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    assert_eq!(global_program(&rt), 10);
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

#[test]
fn missing_ompt_callbacks_break_global_attribution() {
    // The LLVM-9 behaviour: the implicit mapping happens (the program is
    // correct and computes the right answer) but no tool event is
    // emitted, so ARBALEST cannot attribute the CV — the §V-A gap.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().implicit_map_events(false), tool.clone());
    assert_eq!(global_program(&rt), 10, "the program itself is unaffected");
    let reports = tool.reports();
    assert!(
        reports.iter().any(|r| r.kind == ReportKind::MappingOverflow),
        "without the proposed callbacks the tool misattributes the global: {reports:?}"
    );
}

#[test]
fn globals_persist_across_kernels_and_updates_flow() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    let state = rt.alloc_with::<i64>("state", 8, |_| 0);
    rt.declare_target(&state);
    for _ in 0..3 {
        rt.target().run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&state, i);
                k.write(&state, i, v + 1);
            });
        });
    }
    // The global's CV persists; pull it back explicitly.
    rt.update_from(&state);
    assert_eq!(rt.read(&state, 0), 3);
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

#[test]
fn stale_global_read_is_still_detected() {
    // Globals are not exempt from mapping issues: a host read without an
    // update is a USD like any other.
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    let g = rt.alloc_with::<i64>("g", 4, |_| 1);
    rt.declare_target(&g);
    rt.target().run(move |k| {
        k.for_each(0..4, |k, i| k.write(&g, i, 99));
    });
    let _ = rt.read(&g, 0); // stale: no update from
    assert!(tool.reports().iter().any(|r| r.kind == ReportKind::MappingUsd));
}
