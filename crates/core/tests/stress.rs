//! Concurrency stress: the lock-free shadow analysis must stay sound and
//! silent under heavy parallel load — many teams, many async kernels,
//! contended granules — and still catch a seeded bug planted in the
//! middle of the noise.

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;

#[test]
fn parallel_kernels_on_disjoint_buffers_stay_silent() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().team_size(4), tool.clone());
    let bufs: Vec<Buffer<f64>> =
        (0..8).map(|i| rt.alloc_with::<f64>(&format!("b{i}"), 512, |j| j as f64)).collect();
    // Launch eight concurrent nowait kernels, one per buffer.
    for buf in &bufs {
        let b = *buf;
        rt.target().map(Map::tofrom(&b)).nowait().run(move |k| {
            k.par_for(0..512, |k, i| {
                let v = k.read(&b, i);
                k.write(&b, i, v * 2.0);
            });
        });
    }
    rt.taskwait();
    for buf in &bufs {
        assert_eq!(rt.read(buf, 100), 200.0);
    }
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

#[test]
fn contended_atomic_granule_is_clean_and_exact() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().team_size(8), tool.clone());
    let c = rt.alloc_with::<i64>("c", 1, |_| 0);
    rt.target().map(Map::tofrom(&c)).run(move |k| {
        k.par_for(0..4000, |k, _| {
            k.atomic_add(&c, 0, 1);
        });
    });
    assert_eq!(rt.read(&c, 0), 4000);
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

#[test]
fn repeated_map_churn_with_concurrent_host_traffic() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().team_size(2), tool.clone());
    let shared = rt.alloc_with::<f64>("shared", 128, |_| 1.0);
    let private = rt.alloc_with::<f64>("private", 128, |_| 5.0);
    for round in 0..16 {
        // Device round trip on `shared` (interval tree insert/remove churn).
        rt.target().map(Map::tofrom(&shared)).run(move |k| {
            k.par_for(0..128, |k, i| {
                let v = k.read(&shared, i);
                k.write(&shared, i, v + 1.0);
            });
        });
        // Host-only traffic on `private` interleaved with the churn.
        for i in 0..128 {
            let v = rt.read(&private, i);
            rt.write(&private, i, v + round as f64);
        }
    }
    assert_eq!(rt.read(&shared, 0), 17.0);
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

#[test]
fn seeded_bug_is_found_amid_heavy_noise() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().team_size(4), tool.clone());
    // Noise: four clean async pipelines.
    let noise: Vec<Buffer<f64>> =
        (0..4).map(|i| rt.alloc_with::<f64>(&format!("n{i}"), 256, |_| 1.0)).collect();
    for buf in &noise {
        let b = *buf;
        rt.target().map(Map::tofrom(&b)).depend(Depend::write(&b)).nowait().run(move |k| {
            k.par_for(0..256, |k, i| {
                let v = k.read(&b, i);
                k.write(&b, i, v + 1.0);
            });
        });
    }
    // Signal: one stale read.
    let s = rt.alloc_init::<i64>("signal", &[7; 32]);
    rt.target().map(Map::to(&s)).run(move |k| {
        k.for_each(0..32, |k, i| k.write(&s, i, 0));
    });
    let _ = rt.read(&s, 16); // USD
    rt.taskwait();
    let reports = tool.reports();
    assert_eq!(reports.len(), 1, "exactly the seeded bug: {reports:?}");
    assert_eq!(reports[0].kind, ReportKind::MappingUsd);
    assert_eq!(reports[0].buffer.as_deref(), Some("signal"));
}

#[test]
fn report_cap_bounds_memory_under_report_storms() {
    let tool = Arc::new(Arbalest::new(ArbalestConfig { max_reports: 16, ..Default::default() }));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    // 64 distinct buggy sites via 64 buffers read uninitialised from one
    // line each... one line only dedups per (kind, buffer, line), so use
    // distinct buffers to create distinct keys.
    for i in 0..64 {
        let b = rt.alloc::<f64>(&format!("u{i}"), 4);
        let _ = rt.read(&b, 0);
    }
    assert_eq!(tool.reports().len(), 16, "max_reports must cap the sink");
}
