//! Offline analysis: record an execution trace once, replay it into
//! detectors afterwards. Verifies that ARBALEST's findings are a function
//! of the event stream (live == replayed), which is what makes traces a
//! usable regression corpus.

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use arbalest_offload::trace::{replay, TraceRecorder};
use std::sync::Arc;

fn record(buggy: bool) -> Vec<arbalest_offload::trace::TraceEvent> {
    let rec = Arc::new(TraceRecorder::new());
    let rt = Runtime::with_tool(Config::default(), rec.clone());
    let a = rt.alloc_init::<i64>("a", &[1; 16]);
    let map = if buggy { Map::to(&a) } else { Map::tofrom(&a) };
    rt.target().map(map).run(move |k| {
        k.for_each(0..16, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1);
        });
    });
    let _ = rt.read(&a, 5);
    rec.take()
}

#[test]
fn replayed_bug_matches_live_detection() {
    let trace = record(true);

    // Live run for the ground truth.
    let live = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), live.clone());
    let a = rt.alloc_init::<i64>("a", &[1; 16]);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..16, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1);
        });
    });
    let _ = rt.read(&a, 5);

    // Offline replay into a fresh detector.
    let offline = Arbalest::new(ArbalestConfig::default());
    replay(&trace, &offline);

    let live_kinds: Vec<ReportKind> = live.reports().iter().map(|r| r.kind).collect();
    let offline_kinds: Vec<ReportKind> = offline.reports().iter().map(|r| r.kind).collect();
    assert_eq!(live_kinds, offline_kinds);
    assert_eq!(offline_kinds, vec![ReportKind::MappingUsd]);
}

#[test]
fn replayed_clean_trace_is_clean() {
    let trace = record(false);
    let offline = Arbalest::new(ArbalestConfig::default());
    replay(&trace, &offline);
    assert!(offline.reports().is_empty(), "{:?}", offline.reports());
}

#[test]
fn one_trace_many_detector_configs() {
    let trace = record(true);
    // Race detection on/off and cache on/off all agree on the VSM finding.
    for (races, cache) in [(true, true), (true, false), (false, true), (false, false)] {
        let tool = Arbalest::new(ArbalestConfig {
            check_races: races,
            lookup_cache: cache,
            ..Default::default()
        });
        replay(&trace, &tool);
        assert_eq!(
            tool.reports().iter().filter(|r| r.kind == ReportKind::MappingUsd).count(),
            1,
            "races={races} cache={cache}"
        );
    }
}
