//! §IV-C's granularity discussion, pinned as tests.
//!
//! The paper argues byte-level tracking is requisite for soundness in
//! general, then settles on 8-byte granularity because "most operations
//! in scientific applications are performed in double-precision
//! arithmetic". This reproduction makes the same trade-off; these tests
//! document both sides of it:
//!
//! * full-granule (8-byte) workloads are tracked exactly;
//! * sub-granule interleavings inherit the approximation — two 4-byte
//!   values sharing one granule share one VSM state, so a kernel write
//!   of one half marks the *granule* device-valid, and a host read of
//!   the untouched other half is flagged (a coarseness artifact the
//!   paper accepts at this granularity).

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;

fn harness() -> (Runtime, Arc<Arbalest>) {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool.clone());
    (rt, tool)
}

#[test]
fn eight_byte_elements_are_tracked_exactly() {
    let (rt, tool) = harness();
    let a = rt.alloc_with::<f64>("a", 64, |i| i as f64);
    // Kernel writes only the even elements; host reads only the odd ones.
    // At f64 width each element is its own granule, so this is precise:
    // no report.
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..32, |k, i| k.write(&a, 2 * i, -1.0));
    });
    for i in 0..32 {
        assert_eq!(rt.read(&a, 2 * i + 1), (2 * i + 1) as f64);
    }
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}

#[test]
fn sub_granule_interleaving_is_coarsened() {
    let (rt, tool) = harness();
    // Two i32 values share each 8-byte granule.
    let a = rt.alloc_with::<i32>("a", 2, |i| i as i32);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..1, |k, _| k.write(&a, 0, 99)); // writes bytes 0..4
    });
    // Bytes 4..8 were never written on the device, and the host's copy of
    // them is intact — but the shared granule is in the `target` state,
    // so this read reports USD. The paper accepts exactly this
    // approximation when choosing 8-byte granularity (§IV-C); pin it so
    // a future granularity change is a conscious decision.
    let v = rt.read(&a, 1);
    assert_eq!(v, 1, "the data itself is intact");
    assert_eq!(
        tool.reports().iter().filter(|r| r.kind == ReportKind::MappingUsd).count(),
        1,
        "documented coarseness artifact: {:?}",
        tool.reports()
    );
}

#[test]
fn whole_granule_small_scalars_are_fine() {
    let (rt, tool) = harness();
    // 8 u8 values = 1 granule, but host and device exchange the WHOLE
    // granule via proper maps: precise and silent.
    let a = rt.alloc_with::<u8>("a", 8, |i| i as u8);
    rt.target().map(Map::tofrom(&a)).run(move |k| {
        k.for_each(0..8, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v.wrapping_add(1));
        });
    });
    for i in 0..8 {
        assert_eq!(rt.read(&a, i), (i + 1) as u8);
    }
    assert!(tool.reports().is_empty(), "{:?}", tool.reports());
}
