//! Theorem-1 certification (§IV-E).
//!
//! The VSM precisely reports the mapping issues of *one observed
//! schedule*. For programs with asynchronous (`nowait`) compute kernels,
//! Theorem 1 gives a sufficient and necessary condition covering **all**
//! schedules:
//!
//! 1. the program is data-race free, and
//! 2. the VSM reports no issue when every asynchronous kernel is executed
//!    synchronously.
//!
//! [`certify`] runs a program exactly that way: the runtime serializes
//! `nowait` bodies while emitting the *asynchronous* happens-before
//! structure, so the integrated race detector checks hypothesis 1 on the
//! true concurrency structure while the VSM checks hypothesis 2 on the
//! serialized schedule.

use crate::detector::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;

/// Outcome of a Theorem-1 run.
#[derive(Debug)]
pub struct Certification {
    /// Mapping-issue reports from the serialized schedule (hypothesis 2).
    pub mapping_issues: Vec<Report>,
    /// Data-race reports (hypothesis 1).
    pub races: Vec<Report>,
}

impl Certification {
    /// True when both hypotheses hold: the program is free of data
    /// mapping issues under *every* schedule of its asynchronous kernels.
    pub fn certified(&self) -> bool {
        self.mapping_issues.is_empty() && self.races.is_empty()
    }
}

/// Run `program` in Theorem-1 analysis mode and classify the findings.
///
/// `configure` lets callers adjust the runtime (devices, team size,
/// unified memory); `serialize_nowait` is forced on.
pub fn certify(configure: Config, program: impl FnOnce(&Runtime)) -> Certification {
    let tool = Arc::new(Arbalest::new(ArbalestConfig {
        accelerators: configure.accelerators.min(7),
        ..ArbalestConfig::default()
    }));
    let cfg = configure.serialize(true);
    let rt = Runtime::with_tool(cfg, tool.clone());
    program(&rt);
    rt.taskwait();
    let (races, mapping_issues) =
        tool.reports().into_iter().partition(|r| r.kind == ReportKind::DataRace);
    Certification { mapping_issues, races }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_async_program_certifies() {
        let cert = certify(Config::default(), |rt| {
            let a = rt.alloc_with::<f64>("a", 64, |i| i as f64);
            let h = rt.target().map(Map::tofrom(&a)).nowait().run(move |k| {
                k.for_each(0..64, |k, i| {
                    let v = k.read(&a, i);
                    k.write(&a, i, v + 1.0);
                });
            });
            h.wait();
            let _ = rt.read(&a, 0);
        });
        assert!(cert.certified(), "{cert:?}");
    }

    #[test]
    fn schedule_dependent_bug_fails_hypothesis_1() {
        // Fig. 2 lines 7–16: nowait kernel write vs host write, no
        // synchronization. Even when the serialized schedule happens to
        // produce a legal VSM trace, the race check rejects certification.
        let cert = certify(Config::default(), |rt| {
            let a = rt.alloc_init::<i64>("a", &[1]);
            rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
                rt.target().nowait().run(move |k| {
                    k.for_each(0..1, |k, _| k.write(&a, 0, 3));
                });
                let v = rt.read(&a, 0);
                rt.write(&a, 0, v + 1);
            });
        });
        assert!(!cert.certified());
        assert!(!cert.races.is_empty(), "hypothesis 1 (race freedom) must fail");
    }

    #[test]
    fn deterministic_mapping_bug_fails_hypothesis_2() {
        let cert = certify(Config::default(), |rt| {
            let a = rt.alloc_init::<i64>("a", &[1]);
            rt.target().map(Map::to(&a)).run(move |k| {
                k.for_each(0..1, |k, _| k.write(&a, 0, 2));
            });
            let _ = rt.read(&a, 0); // stale
        });
        assert!(!cert.certified());
        assert!(!cert.mapping_issues.is_empty());
        assert!(cert.races.is_empty());
    }

    #[test]
    fn properly_synchronized_async_chain_certifies() {
        let cert = certify(Config::default(), |rt| {
            let a = rt.alloc_with::<i64>("a", 32, |_| 0);
            for _ in 0..3 {
                rt.target()
                    .map(Map::tofrom(&a))
                    .depend(Depend::write(&a))
                    .nowait()
                    .run(move |k| {
                        k.for_each(0..32, |k, i| {
                            let v = k.read(&a, i);
                            k.write(&a, i, v + 1);
                        });
                    });
            }
            rt.taskwait();
            assert_eq!(rt.read(&a, 5), 3);
        });
        assert!(cert.certified(), "{cert:?}");
    }
}
