//! # arbalest-core
//!
//! ARBALEST — the paper's core contribution: an on-the-fly detector of
//! *data mapping issues* in target-offloading programs.
//!
//! * [`vsm`] — the Variable State Machine of Fig. 4, generalised to the
//!   §IV-C multi-device (n+1)-tuple form, as pure transition logic.
//! * [`detector`] — the [`detector::Arbalest`] tool: direct-mapped shadow
//!   words (Table II) updated lock-free, an interval tree resolving CV
//!   addresses back to OVs, the §IV-D buffer-overflow extension,
//!   UUM/USD classification, and integrated FastTrack race detection
//!   (ARBALEST is built on Archer).
//! * [`replay`] — the Theorem-1 certification mode: serialized `nowait`
//!   execution plus race-freedom implies mapping-issue freedom for every
//!   schedule.
//! * [`ddg`] — dynamic data dependence graphs (Fig. 3) built from
//!   recorded execution traces, rendered as Graphviz DOT.
//!
//! ## Example: catching Fig. 2's stale read
//!
//! ```
//! use arbalest_core::{Arbalest, ArbalestConfig};
//! use arbalest_offload::prelude::*;
//! use std::sync::Arc;
//!
//! let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
//! let rt = Runtime::with_tool(Config::default(), tool.clone());
//!
//! let a = rt.alloc_init::<i64>("a", &[1]);
//! rt.target().map(Map::to(&a)).run(move |k| {
//!     k.for_each(0..1, |k, _| {
//!         let v = k.read(&a, 0);
//!         k.write(&a, 0, v + 1);
//!     });
//! });
//! let stale = rt.read(&a, 0); // fails to observe the device's write
//! assert_eq!(stale, 1);
//!
//! let reports = tool.reports();
//! assert_eq!(reports.len(), 1);
//! assert_eq!(reports[0].kind, ReportKind::MappingUsd);
//! ```
//!
//! ## Example: certifying all schedules (Theorem 1)
//!
//! ```
//! use arbalest_core::certify;
//! use arbalest_offload::prelude::*;
//!
//! let cert = certify(Config::default(), |rt| {
//!     let a = rt.alloc_init::<i64>("a", &[0; 16]);
//!     let h = rt.target().map(Map::tofrom(&a)).nowait().run(move |k| {
//!         k.par_for(0..16, |k, i| k.write(&a, i, i as i64));
//!     });
//!     h.wait();
//! });
//! assert!(cert.certified());
//! ```

#![warn(missing_docs)]

pub mod ddg;
pub mod detector;
pub mod replay;
pub mod session;
pub mod vsm;

pub use ddg::Ddg;
pub use detector::{
    Arbalest, ArbalestConfig, ArbalestStats, CvInterval, DetectorSnapshot, RestoreError, SeenKey,
};
pub use replay::{certify, Certification};
pub use session::{AnalysisSession, SessionSnapshot};
pub use vsm::{StorageLoc, Violation, ViolationKind, VsmOp};
