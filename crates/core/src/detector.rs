//! The ARBALEST detector (§IV–V).
//!
//! Per aligned 8-byte granule of every tracked host variable, ARBALEST
//! keeps one Table II shadow word, updated with lock-free compare-and-swap
//! so analysis runs fully concurrently with the program (§IV-C). Kernel
//! accesses land on CV device addresses; an interval tree (with a
//! last-lookup cache) resolves them back to the OV's shadow in
//! O(log m) — amortised O(1) — and doubles as the §IV-D mapping-related
//! buffer-overflow detector. A FastTrack engine (ARBALEST is built on
//! Archer) supplies the happens-before side: data races are reported and
//! the Table II TID/clock fields are stamped from the racing task's epoch.

use crate::vsm::{self, StorageLoc, ViolationKind, VsmOp};
use arbalest_offload::addr::DeviceId;
use arbalest_offload::buffer::{BufferId, BufferInfo};
use arbalest_offload::events::{
    AccessEvent, DataOpEvent, DataOpKind, SrcLoc, SyncEvent, Tool, TransferEvent, TransferKind,
};
use arbalest_offload::report::{hints, PrevAccess, ProvenanceStep, Report, ReportKind};
use arbalest_offload::sections;
use arbalest_race::RaceEngine;
use arbalest_shadow::{IntervalTree, Layout, ShadowMemory};
use arbalest_sync::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};

/// Deduplication key: (kind, buffer, file, line).
type ReportKey = (ReportKind, Option<u32>, &'static str, u32);

/// Edges kept per buffer when provenance capture is on. A mapping-issue
/// story is short (map, transfer, a few accesses); the ring only has to
/// outlive the window between the decisive edges and the faulting read.
const PROV_RING_CAP: usize = 16;

/// Interval payload: which buffer a CV belongs to and where its OV lives.
#[derive(Debug, Clone, Copy)]
struct CvInfo {
    buffer: BufferId,
    ov_addr: u64,
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct ArbalestConfig {
    /// Number of accelerators the analysed program may use (≤ 7 for the
    /// multi-device shadow encoding). Chooses the shadow layout.
    pub accelerators: u16,
    /// Run the integrated happens-before race detection (Archer side).
    /// Disable only for ablation measurements.
    pub check_races: bool,
    /// Use the one-entry interval-tree lookup cache (§IV-C's amortisation).
    pub lookup_cache: bool,
    /// Stop recording after this many distinct reports.
    pub max_reports: usize,
    /// Capture per-buffer VSM edge provenance and attach the causal chain
    /// to UUM/USD reports (the `arbalest explain` feed). Off by default:
    /// recording allocates per edge, and default-config reports must stay
    /// byte-identical with or without the feature compiled in.
    pub provenance: bool,
}

impl Default for ArbalestConfig {
    fn default() -> Self {
        ArbalestConfig {
            accelerators: 1,
            check_races: true,
            lookup_cache: true,
            max_reports: 1024,
            provenance: false,
        }
    }
}

/// Live operation counters (§IV-C's amortisation claims, measurable).
///
/// Since the observability layer, these are registry-backed
/// [`Counter`](arbalest_obs::Counter) handles: the same cells appear in
/// metric snapshots under `arbalest_detector_*`, so exporters and these
/// accessors can never disagree.
#[derive(Debug)]
pub struct ArbalestStats {
    /// Memory accesses analysed (`arbalest_detector_accesses_total`).
    pub accesses: arbalest_obs::Counter,
    /// Interval lookups answered by the one-entry cache
    /// (`arbalest_detector_lookup_cache_total{result="hit"}`).
    pub cache_hits: arbalest_obs::Counter,
    /// Interval lookups that walked the tree
    /// (`arbalest_detector_lookup_cache_total{result="miss"}`).
    pub cache_misses: arbalest_obs::Counter,
    /// The `(from,op)` transition matrix the total is derived from.
    metrics: std::sync::Arc<DetectorMetrics>,
}

impl ArbalestStats {
    fn new(reg: &arbalest_obs::Registry, metrics: std::sync::Arc<DetectorMetrics>) -> ArbalestStats {
        ArbalestStats {
            accesses: reg.counter("arbalest_detector_accesses_total", &[]),
            cache_hits: reg.counter("arbalest_detector_lookup_cache_total", &[("result", "hit")]),
            cache_misses: reg
                .counter("arbalest_detector_lookup_cache_total", &[("result", "miss")]),
            metrics,
        }
    }

    /// VSM transitions applied — accesses + per-granule range ops.
    ///
    /// Every committed transition counts exactly one edge of
    /// `arbalest_detector_vsm_transition_pairs_total{from,op}`, so the
    /// total is the sum of that family, read here instead of paying a
    /// second hot-path RMW per transition.
    pub fn vsm_transitions(&self) -> u64 {
        self.metrics.transitions_total()
    }

    /// Fraction of CV lookups served by the cache (0 when none happened,
    /// never NaN).
    pub fn cache_hit_rate(&self) -> f64 {
        let h = self.cache_hits.get() as f64;
        let m = self.cache_misses.get() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// VSM state labels for the `(from_state, event)` transition counters,
/// indexed by [`vsm::NamedState`] discriminant order.
const VSM_STATE_LABELS: [&str; 4] = ["invalid", "host", "target", "consistent"];

/// VSM event labels, indexed by [`vsm_op_index`].
const VSM_OP_LABELS: [&str; 10] = [
    "read_host",
    "read_target",
    "write_host",
    "write_target",
    "update_target",
    "update_host",
    "alloc",
    "release",
    "flush",
    "device_to_device",
];

fn vsm_state_index(s: vsm::NamedState) -> usize {
    match s {
        vsm::NamedState::Invalid => 0,
        vsm::NamedState::Host => 1,
        vsm::NamedState::Target => 2,
        vsm::NamedState::Consistent => 3,
    }
}

fn vsm_op_index(op: VsmOp) -> usize {
    match op {
        VsmOp::Read(StorageLoc::Host) => 0,
        VsmOp::Read(StorageLoc::Device(_)) => 1,
        VsmOp::Write(StorageLoc::Host) => 2,
        VsmOp::Write(StorageLoc::Device(_)) => 3,
        VsmOp::UpdateToDevice(_) => 4,
        VsmOp::UpdateFromDevice(_) => 5,
        VsmOp::Allocate(_) => 6,
        VsmOp::Release(_) => 7,
        VsmOp::Flush(_) => 8,
        VsmOp::UpdateDeviceToDevice { .. } => 9,
    }
}

/// Pre-registered observability handles beyond the public
/// [`ArbalestStats`] counters; all no-ops on a disabled registry.
#[derive(Debug)]
struct DetectorMetrics {
    /// `arbalest_detector_vsm_transition_pairs_total{from,op}`, indexed
    /// `[from_state][op]`; every access commits one edge, from whichever
    /// kernel thread made it. Fixed arrays: the per-access edge increment
    /// must not pay `Vec` double indirection.
    vsm_pairs: [[arbalest_obs::Counter; VSM_OP_LABELS.len()]; VSM_STATE_LABELS.len()],
    /// Failed shadow-word CAS attempts
    /// (`arbalest_detector_shadow_cas_retries_total`).
    cas_retries: arbalest_obs::Counter,
    /// Nodes visited per successful interval stab
    /// (`arbalest_detector_lookup_depth`).
    lookup_depth: arbalest_obs::Histogram,
    /// `arbalest_detector_present_ops_total{op}`: [cv_alloc, cv_delete].
    present_ops: [arbalest_obs::Counter; 2],
}

impl DetectorMetrics {
    fn new(reg: &arbalest_obs::Registry) -> DetectorMetrics {
        let vsm_pairs = std::array::from_fn(|f| {
            std::array::from_fn(|o| {
                reg.counter(
                    "arbalest_detector_vsm_transition_pairs_total",
                    &[("from", VSM_STATE_LABELS[f]), ("op", VSM_OP_LABELS[o])],
                )
            })
        });
        DetectorMetrics {
            vsm_pairs,
            cas_retries: reg.counter("arbalest_detector_shadow_cas_retries_total", &[]),
            lookup_depth: reg.histogram("arbalest_detector_lookup_depth", &[]),
            present_ops: [
                reg.counter("arbalest_detector_present_ops_total", &[("op", "cv_alloc")]),
                reg.counter("arbalest_detector_present_ops_total", &[("op", "cv_delete")]),
            ],
        }
    }

    /// Count one committed transition from the *post-commit* old word, so
    /// CAS retries never double-count an edge.
    #[inline]
    fn note_transition(&self, from: vsm::NamedState, op: VsmOp, retries: u32) {
        self.vsm_pairs[vsm_state_index(from)][vsm_op_index(op)].inc();
        if retries > 0 {
            self.cas_retries.add(u64::from(retries));
        }
    }

    /// Batched form for range operations: one counter add per occupied
    /// from-state instead of one per granule.
    fn note_transitions(&self, op: VsmOp, by_from: &[u64; 4], retries: u64) {
        let o = vsm_op_index(op);
        for (f, &count) in by_from.iter().enumerate() {
            if count > 0 {
                self.vsm_pairs[f][o].add(count);
            }
        }
        if retries > 0 {
            self.cas_retries.add(retries);
        }
    }

    /// Total committed transitions: the sum of the pair matrix.
    fn transitions_total(&self) -> u64 {
        self.vsm_pairs.iter().flatten().map(arbalest_obs::Counter::get).sum()
    }
}

/// One entry of the CV→OV interval tree in a [`DetectorSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CvInterval {
    /// CV range start (inclusive).
    pub lo: u64,
    /// CV range end (exclusive).
    pub hi: u64,
    /// Owning buffer id.
    pub buffer: u32,
    /// OV address the CV range shadows.
    pub ov_addr: u64,
}

/// One deduplication key from the detector's `seen` set. Serialized
/// separately from the reports themselves: the key holds the buffer *id*
/// while a [`Report`] holds only the buffer *name*, so the set cannot be
/// reconstructed from the report list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeenKey {
    /// Report kind.
    pub kind: ReportKind,
    /// Buffer id, when the report named one.
    pub buffer: Option<u32>,
    /// Source file of the reporting site ("" when unknown).
    pub file: String,
    /// Source line of the reporting site (0 when unknown).
    pub line: u32,
}

/// Complete serializable state of an [`Arbalest`] detector, produced by
/// [`Arbalest::to_snapshot`]. All collections are sorted (shadow pages by
/// page index, intervals by lo, buffers by id, seen keys lexicographically)
/// except `reports`, which keeps insertion order — report order is part of
/// the byte-identical-`Finish` contract.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorSnapshot {
    /// [`ArbalestConfig::accelerators`].
    pub accelerators: u16,
    /// [`ArbalestConfig::check_races`].
    pub check_races: bool,
    /// [`ArbalestConfig::lookup_cache`].
    pub lookup_cache: bool,
    /// [`ArbalestConfig::max_reports`].
    pub max_reports: u64,
    /// Resident shadow pages ([`ShadowMemory::snapshot_pages`]).
    pub shadow_pages: Vec<(u64, Vec<u64>)>,
    /// CV→OV present-table intervals, sorted by `lo`.
    pub intervals: Vec<CvInterval>,
    /// Registered buffers, sorted by id.
    pub buffers: Vec<BufferInfo>,
    /// Findings so far, in insertion order.
    pub reports: Vec<Report>,
    /// Deduplication keys, sorted.
    pub seen: Vec<SeenKey>,
    /// Whether [`Arbalest::evict_to_may`] has run.
    pub degraded: bool,
    /// Race-engine state when race checking is on.
    pub race: Option<arbalest_race::RaceSnapshot>,
}

/// Why a [`DetectorSnapshot`] could not be installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// Shadow pages in the snapshot do not match this build's page layout.
    ShadowLayout,
    /// `check_races` and the presence of race state disagree.
    RaceMismatch,
    /// The snapshot's accelerator count exceeds the shadow encoding limit.
    TooManyAccelerators,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::ShadowLayout => write!(f, "snapshot shadow pages do not fit this build's page layout"),
            RestoreError::RaceMismatch => write!(f, "snapshot race state disagrees with its check_races flag"),
            RestoreError::TooManyAccelerators => write!(f, "snapshot accelerator count exceeds the 7-device shadow encoding"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// The ARBALEST tool.
pub struct Arbalest {
    cfg: ArbalestConfig,
    layout: Layout,
    shadow: ShadowMemory,
    intervals: RwLock<IntervalTree<CvInfo>>,
    cache: RwLock<Option<(u64, u64, CvInfo)>>,
    race: Option<RaceEngine>,
    buffers: RwLock<HashMap<u32, BufferInfo>>,
    reports: Mutex<Vec<Report>>,
    seen: Mutex<HashSet<ReportKey>>,
    /// Per-buffer bounded rings of VSM edges, recorded only when
    /// [`ArbalestConfig::provenance`] is on; cloned into UUM/USD reports.
    prov: Mutex<HashMap<u32, std::collections::VecDeque<ProvenanceStep>>>,
    /// Logical clock stamped on provenance edges (event order, not time).
    prov_clock: std::sync::atomic::AtomicU64,
    stats: ArbalestStats,
    metrics: std::sync::Arc<DetectorMetrics>,
    registry: arbalest_obs::Registry,
    /// Set once [`evict_to_may`](Self::evict_to_may) has run: shadow state
    /// was reset, so VSM violations can no longer be asserted.
    degraded: std::sync::atomic::AtomicBool,
}

impl Default for Arbalest {
    fn default() -> Self {
        Arbalest::new(ArbalestConfig::default())
    }
}

impl Arbalest {
    /// Create a detector with a private (enabled) metrics registry, so
    /// [`stats`](Self::stats) counts as it always has.
    pub fn new(cfg: ArbalestConfig) -> Arbalest {
        Arbalest::with_registry(cfg, arbalest_obs::Registry::new())
    }

    /// Create a detector recording into `reg` — share one registry across
    /// detector, runtime, and server to get a unified metric namespace,
    /// or pass [`Registry::disabled`](arbalest_obs::Registry::disabled)
    /// to strip instrumentation down to single-branch no-ops.
    pub fn with_registry(cfg: ArbalestConfig, reg: arbalest_obs::Registry) -> Arbalest {
        assert!(cfg.accelerators <= 7, "multi-device shadow word supports up to 7 accelerators");
        let layout = Layout::for_accelerators(cfg.accelerators);
        // The pack is cached per registry: detectors sharing a registry
        // share cells anyway, so re-registering every series per detector
        // would buy nothing and cost setup time.
        let metrics = reg.state(DetectorMetrics::new);
        Arbalest {
            layout,
            shadow: ShadowMemory::new(1),
            intervals: RwLock::new(IntervalTree::new()),
            cache: RwLock::new(None),
            race: if cfg.check_races { Some(RaceEngine::new()) } else { None },
            buffers: RwLock::new(HashMap::new()),
            reports: Mutex::new(Vec::new()),
            seen: Mutex::new(HashSet::new()),
            prov: Mutex::new(HashMap::new()),
            prov_clock: std::sync::atomic::AtomicU64::new(0),
            stats: ArbalestStats::new(&reg, metrics.clone()),
            metrics,
            registry: reg,
            cfg,
            degraded: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Shed side-table memory under resource pressure: drop every resident
    /// shadow page, the race engine's per-location access history, and the
    /// lookup cache, returning the approximate bytes freed.
    ///
    /// The detector keeps running afterwards in *May mode*: evicted shadow
    /// words read back as the initial state, so VSM violations (UUM/USD)
    /// can no longer be asserted and are suppressed — only claims that do
    /// not depend on evicted state (mapping-overflow checks against the
    /// retained interval tree and buffer table, and races between two
    /// post-eviction accesses) are still reported. Reports recorded before
    /// the eviction are retained. The transition is one-way.
    pub fn evict_to_may(&self) -> u64 {
        let before = self.side_table_bytes();
        self.shadow.evict_all();
        if let Some(r) = &self.race {
            r.evict_history();
        }
        *self.cache.write() = None;
        self.degraded.store(true, std::sync::atomic::Ordering::Release);
        before.saturating_sub(self.side_table_bytes())
    }

    /// Whether [`evict_to_may`](Self::evict_to_may) has run on this
    /// detector, i.e. VSM findings are now May-only and suppressed.
    pub fn degraded(&self) -> bool {
        self.degraded.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Dump the complete detector state as plain data for durable session
    /// snapshots. Two detectors holding identical analysis state dump
    /// equal snapshots (every map is emitted sorted by key), and
    /// [`from_snapshot`](Self::from_snapshot) of the dump behaves
    /// identically to this detector on every subsequent event — the
    /// recovered-session byte-identical-`Finish` invariant rests on this.
    pub fn to_snapshot(&self) -> DetectorSnapshot {
        let mut intervals: Vec<CvInterval> = self
            .intervals
            .read()
            .iter_ordered()
            .into_iter()
            .map(|(lo, hi, info)| CvInterval { lo, hi, buffer: info.buffer.0, ov_addr: info.ov_addr })
            .collect();
        intervals.sort_unstable_by_key(|iv| iv.lo);
        let mut buffers: Vec<BufferInfo> = self.buffers.read().values().cloned().collect();
        buffers.sort_unstable_by_key(|b| b.id.0);
        let mut seen: Vec<SeenKey> = self
            .seen
            .lock()
            .iter()
            .map(|&(kind, buffer, file, line)| SeenKey { kind, buffer, file: file.to_string(), line })
            .collect();
        seen.sort_unstable_by(|a, b| {
            (a.kind, a.buffer, &a.file, a.line).cmp(&(b.kind, b.buffer, &b.file, b.line))
        });
        DetectorSnapshot {
            accelerators: self.cfg.accelerators,
            check_races: self.cfg.check_races,
            lookup_cache: self.cfg.lookup_cache,
            max_reports: self.cfg.max_reports as u64,
            shadow_pages: self.shadow.snapshot_pages(),
            intervals,
            buffers,
            reports: self.reports.lock().clone(),
            seen,
            degraded: self.degraded(),
            race: self.race.as_ref().map(|r| r.to_snapshot()),
        }
    }

    /// Rebuild a detector from a [`DetectorSnapshot`], recording metrics
    /// into `reg`. The lookup cache restarts cold (a pure performance
    /// artifact, invisible to analysis results); everything else resumes
    /// exactly where the dumped detector stopped.
    pub fn from_snapshot(
        snap: &DetectorSnapshot,
        reg: arbalest_obs::Registry,
    ) -> Result<Arbalest, RestoreError> {
        if snap.accelerators > 7 {
            return Err(RestoreError::TooManyAccelerators);
        }
        if snap.check_races != snap.race.is_some() {
            return Err(RestoreError::RaceMismatch);
        }
        let cfg = ArbalestConfig {
            accelerators: snap.accelerators,
            check_races: snap.check_races,
            lookup_cache: snap.lookup_cache,
            max_reports: snap.max_reports as usize,
            // Provenance rings are transient working memory, deliberately
            // excluded from snapshots (the feature is off on every durable
            // path); a restored detector restarts with capture off.
            provenance: false,
        };
        let layout = Layout::for_accelerators(cfg.accelerators);
        let metrics = reg.state(DetectorMetrics::new);
        let shadow = ShadowMemory::new(1);
        if !shadow.restore_pages(&snap.shadow_pages) {
            return Err(RestoreError::ShadowLayout);
        }
        let mut intervals = IntervalTree::new();
        for iv in &snap.intervals {
            intervals.insert(
                iv.lo,
                iv.hi,
                CvInfo { buffer: BufferId(iv.buffer), ov_addr: iv.ov_addr },
            );
        }
        let buffers: HashMap<u32, BufferInfo> =
            snap.buffers.iter().map(|b| (b.id.0, b.clone())).collect();
        let seen: HashSet<ReportKey> = snap
            .seen
            .iter()
            .map(|k| {
                // Re-intern the file path so the key's &'static str compares
                // (and hashes) identically to keys made by future reports.
                (k.kind, k.buffer, SrcLoc::intern(&k.file, 0, 0).file, k.line)
            })
            .collect();
        Ok(Arbalest {
            layout,
            shadow,
            intervals: RwLock::new(intervals),
            cache: RwLock::new(None),
            race: snap.race.as_ref().map(RaceEngine::from_snapshot),
            buffers: RwLock::new(buffers),
            reports: Mutex::new(snap.reports.clone()),
            seen: Mutex::new(seen),
            prov: Mutex::new(HashMap::new()),
            prov_clock: std::sync::atomic::AtomicU64::new(0),
            stats: ArbalestStats::new(&reg, metrics.clone()),
            metrics,
            registry: reg,
            cfg,
            degraded: std::sync::atomic::AtomicBool::new(snap.degraded),
        })
    }

    /// Live operation counters.
    pub fn stats(&self) -> &ArbalestStats {
        &self.stats
    }

    /// The metrics registry this detector records into.
    pub fn registry(&self) -> &arbalest_obs::Registry {
        &self.registry
    }

    /// The shadow layout in use (Table II vs multi-device).
    pub fn layout(&self) -> Layout {
        self.layout
    }

    fn buffer_name(&self, id: Option<BufferId>) -> Option<String> {
        let id = id?;
        self.buffers.read().get(&id.0).map(|b| b.name.clone())
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        kind: ReportKind,
        message: String,
        buffer: Option<BufferId>,
        device: DeviceId,
        addr: u64,
        size: usize,
        loc: Option<SrcLoc>,
        prev: Option<PrevAccess>,
        suggested_fix: Option<String>,
        provenance: Vec<ProvenanceStep>,
    ) {
        let key = (
            kind,
            buffer.map(|b| b.0),
            loc.map(|l| l.file).unwrap_or(""),
            loc.map(|l| l.line).unwrap_or(0),
        );
        let mut seen = self.seen.lock();
        if seen.len() >= self.cfg.max_reports || !seen.insert(key) {
            return;
        }
        drop(seen);
        self.reports.lock().push(Report {
            tool: "arbalest",
            kind,
            message,
            buffer: self.buffer_name(buffer),
            device,
            addr,
            size,
            loc,
            prev,
            suggested_fix,
            provenance,
        });
    }

    /// Record one VSM edge in the buffer's provenance ring (bounded at
    /// [`PROV_RING_CAP`] — old edges fall off the front). No-op unless
    /// [`ArbalestConfig::provenance`] is on.
    fn prov_note(
        &self,
        buffer: Option<BufferId>,
        op: VsmOp,
        from: vsm::NamedState,
        to: vsm::NamedState,
        loc: Option<SrcLoc>,
        tid: u16,
    ) {
        if !self.cfg.provenance {
            return;
        }
        let Some(buffer) = buffer else { return };
        let clock = self.prov_clock.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let step = ProvenanceStep {
            op: VSM_OP_LABELS[vsm_op_index(op)].to_string(),
            from: VSM_STATE_LABELS[vsm_state_index(from)].to_string(),
            to: VSM_STATE_LABELS[vsm_state_index(to)].to_string(),
            loc,
            tid,
            clock,
        };
        let mut prov = self.prov.lock();
        let ring = prov.entry(buffer.0).or_default();
        if ring.len() >= PROV_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(step);
    }

    /// The buffer's current provenance chain, oldest edge first; empty
    /// when capture is off or nothing was recorded.
    fn prov_chain(&self, buffer: Option<BufferId>) -> Vec<ProvenanceStep> {
        if !self.cfg.provenance {
            return Vec::new();
        }
        let Some(buffer) = buffer else { return Vec::new() };
        self.prov
            .lock()
            .get(&buffer.0)
            .map(|ring| ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Resolve a device (CV) address to its owning interval, through the
    /// one-entry cache when enabled.
    fn lookup(&self, addr: u64) -> Option<(u64, u64, CvInfo)> {
        if self.cfg.lookup_cache {
            if let Some((lo, hi, info)) = *self.cache.read() {
                if (lo..hi).contains(&addr) {
                    self.stats.cache_hits.inc();
                    return Some((lo, hi, info));
                }
            }
        }
        self.stats.cache_misses.inc();
        let tree = self.intervals.read();
        let (lo, hi, info, depth) =
            tree.stab_with_depth(addr).map(|(lo, hi, v, d)| (lo, hi, *v, d))?;
        drop(tree);
        self.metrics.lookup_depth.record(u64::from(depth));
        if self.cfg.lookup_cache {
            *self.cache.write() = Some((lo, hi, info));
        }
        Some((lo, hi, info))
    }

    /// Apply a VSM operation to one granule's shadow word, stamping the
    /// Table II epoch fields; returns the violation and the *previous*
    /// word's recorded access for the report.
    fn vsm_step(
        &self,
        key: u64,
        op: VsmOp,
        ev: Option<&AccessEvent>,
    ) -> (Option<vsm::Violation>, PrevAccess) {
        let epoch = match (&self.race, ev) {
            (Some(r), Some(ev)) => r.epoch_of(ev.task.0),
            _ => arbalest_race::Epoch::ZERO,
        };
        let mut violation = None;
        // The closure may re-run on CAS contention, so per-edge counting
        // happens *after* commit, from the old word that actually won.
        let (old, new, retries) = self.shadow.update_counted(key & !7, 0, |w| {
            let state = self.layout.decode(w);
            let (mut next, v) = vsm::apply(state, op);
            violation = v;
            if let Some(ev) = ev {
                next.tid = epoch.tid;
                next.clock = epoch.clock;
                next.is_write = ev.is_write;
                next.access_size = ev.size as u8;
                next.addr_offset = (ev.addr & 7) as u8;
            }
            self.layout.encode(next)
        });
        let old_state = self.layout.decode(old);
        self.metrics.note_transition(vsm::named(old_state), op, retries);
        if self.cfg.provenance {
            if let Some(ev) = ev {
                self.prov_note(
                    ev.buffer,
                    op,
                    vsm::named(old_state),
                    vsm::named(self.layout.decode(new)),
                    Some(ev.loc),
                    epoch.tid,
                );
            }
        }
        let prev =
            PrevAccess { tid: old_state.tid, clock: old_state.clock, is_write: old_state.is_write };
        (violation, prev)
    }

    /// Apply a VSM operation across a granule range; returns the first
    /// granule's `(from, to)` named states (the representative edge for
    /// provenance capture), or `None` for an empty range.
    fn vsm_range(
        &self,
        ov_addr: u64,
        len: u64,
        op: VsmOp,
    ) -> Option<(vsm::NamedState, vsm::NamedState)> {
        let mut a = ov_addr & !7;
        let end = ov_addr + len;
        // Accumulate locally and flush once: range ops dominate transition
        // volume, and per-granule counter traffic is what the ≤5%
        // observability budget cannot afford.
        let mut by_from = [0u64; 4];
        let mut retries_total = 0u64;
        let mut first_edge = None;
        while a < end {
            let (old, new, retries) = self.shadow.update_counted(a, 0, |w| {
                let state = self.layout.decode(w);
                vsm::apply(state, op).0.pipe_encode(self.layout)
            });
            by_from[vsm_state_index(vsm::named(self.layout.decode(old)))] += 1;
            if first_edge.is_none() {
                first_edge =
                    Some((vsm::named(self.layout.decode(old)), vsm::named(self.layout.decode(new))));
            }
            retries_total += u64::from(retries);
            a += 8;
        }
        self.metrics.note_transitions(op, &by_from, retries_total);
        first_edge
    }

    fn race_access(&self, ev: &AccessEvent) {
        if ev.atomic {
            return; // `omp atomic` accesses are synchronised by definition
        }
        let Some(engine) = &self.race else { return };
        let info = if ev.is_write {
            engine.check_write(ev.task.0, ev.addr, ev.size as u8)
        } else {
            engine.check_read(ev.task.0, ev.addr, ev.size as u8)
        };
        if let Some(r) = info {
            self.report(
                ReportKind::DataRace,
                format!(
                    "{} of size {} races with a previous {} by T{}",
                    if ev.is_write { "write" } else { "read" },
                    ev.size,
                    if r.prev_was_write { "write" } else { "read" },
                    r.prev_tid
                ),
                ev.buffer,
                ev.device,
                ev.addr,
                ev.size,
                Some(ev.loc),
                Some(PrevAccess { tid: r.prev_tid, clock: r.prev_clock, is_write: r.prev_was_write }),
                Some(hints::ORDER_ACCESSES.into()),
                Vec::new(),
            );
        }
    }
}

/// Tiny helper so a `GranuleState` can be encoded in closure position.
trait PipeEncode {
    fn pipe_encode(self, layout: Layout) -> u64;
}
impl PipeEncode for arbalest_shadow::GranuleState {
    #[inline]
    fn pipe_encode(self, layout: Layout) -> u64 {
        layout.encode(self)
    }
}

impl Tool for Arbalest {
    fn name(&self) -> &'static str {
        "arbalest"
    }

    fn on_buffer_registered(&self, info: &BufferInfo) {
        // Shadow defaults to the all-zero word — VSM `invalid`, exactly
        // the paper's initial state for a fresh variable.
        self.buffers.write().insert(info.id.0, info.clone());
    }

    fn on_data_op(&self, ev: &DataOpEvent) {
        let d = ev.device.0 as u8;
        match ev.kind {
            DataOpKind::CvAlloc => {
                self.metrics.present_ops[0].inc();
                self.intervals.write().insert(
                    ev.cv_base,
                    ev.cv_base + ev.len,
                    CvInfo { buffer: ev.buffer, ov_addr: ev.ov_addr },
                );
                let op = VsmOp::Allocate(d);
                if let Some((from, to)) = self.vsm_range(ev.ov_addr, ev.len, op) {
                    self.prov_note(Some(ev.buffer), op, from, to, None, ev.task.0 as u16);
                }
            }
            DataOpKind::CvDelete => {
                self.metrics.present_ops[1].inc();
                self.intervals.write().remove(ev.cv_base);
                *self.cache.write() = None;
                let op = VsmOp::Release(d);
                if let Some((from, to)) = self.vsm_range(ev.ov_addr, ev.len, op) {
                    self.prov_note(Some(ev.buffer), op, from, to, None, ev.task.0 as u16);
                }
            }
        }
    }

    fn on_transfer(&self, ev: &TransferEvent) {
        let (ov_addr, device) = match ev.kind {
            TransferKind::ToDevice => (ev.src_addr, ev.dst_device),
            TransferKind::FromDevice => (ev.dst_addr, ev.src_device),
            TransferKind::DeviceToDevice => {
                // Resolve the shadow anchor through the source CV's
                // interval; both CVs shadow the same OV range.
                let Some((lo, _hi, info)) = self.lookup(ev.src_addr) else { return };
                (info.ov_addr + (ev.src_addr - lo), ev.dst_device)
            }
        };
        let d = device.0 as u8;

        // Mapping-related buffer overflow in the *transfer* itself: the
        // array section walks outside the original variable (§IV-D).
        if let Some(info) = self.buffers.read().get(&ev.buffer.0) {
            if ov_addr < info.ov_base || ov_addr + ev.len > info.ov_end() {
                self.report(
                    ReportKind::MappingOverflow,
                    format!(
                        "mapped array section [{:#x}, {:#x}) exceeds variable '{}' [{:#x}, {:#x})",
                        ov_addr,
                        ov_addr + ev.len,
                        info.name,
                        info.ov_base,
                        info.ov_end()
                    ),
                    Some(ev.buffer),
                    device,
                    ov_addr,
                    ev.len as usize,
                    None,
                    None,
                    Some(hints::shrink_section(&info.name)),
                    Vec::new(),
                );
            }
        }

        // Happens-before: a transfer reads its source range and writes its
        // destination range on the transferring task. Fig. 2's exit
        // transfer racing a nowait kernel is caught here. Unified flushes
        // move no data and are skipped.
        if !ev.unified {
            if let Some(engine) = &self.race {
                let read_race = engine.check_read_range(ev.task.0, ev.src_addr, ev.len);
                let write_race = engine.check_write_range(ev.task.0, ev.dst_addr, ev.len);
                if let Some(r) = read_race.or(write_race) {
                    self.report(
                        ReportKind::DataRace,
                        format!(
                            "implicit data transfer of '{}' races with a concurrent {} by T{}",
                            self.buffer_name(Some(ev.buffer)).unwrap_or_default(),
                            if r.prev_was_write { "write" } else { "read" },
                            r.prev_tid
                        ),
                        Some(ev.buffer),
                        device,
                        ov_addr,
                        ev.len as usize,
                        None,
                        Some(PrevAccess {
                            tid: r.prev_tid,
                            clock: r.prev_clock,
                            is_write: r.prev_was_write,
                        }),
                        Some(hints::SYNC_BEFORE_TRANSFER.into()),
                        Vec::new(),
                    );
                }
            }
        }

        // VSM range update. Clamp to the variable's extent so a
        // transfer-overflow does not scribble on a neighbour's shadow.
        let clamped = match self.buffers.read().get(&ev.buffer.0) {
            Some(info) => {
                sections::intersect(ov_addr, ov_addr + ev.len, info.ov_base, info.ov_end())
            }
            None if ev.len > 0 => Some((ov_addr, ov_addr + ev.len)),
            None => None,
        };
        if let Some((lo, hi)) = clamped {
            let op = if ev.unified {
                VsmOp::Flush(d)
            } else {
                match ev.kind {
                    TransferKind::ToDevice => VsmOp::UpdateToDevice(d),
                    TransferKind::FromDevice => VsmOp::UpdateFromDevice(d),
                    TransferKind::DeviceToDevice => VsmOp::UpdateDeviceToDevice {
                        src: ev.src_device.0 as u8,
                        dst: ev.dst_device.0 as u8,
                    },
                }
            };
            if let Some((from, to)) = self.vsm_range(lo, hi - lo, op) {
                self.prov_note(Some(ev.buffer), op, from, to, None, ev.task.0 as u16);
            }
        }
    }

    fn on_access(&self, ev: &AccessEvent) {
        self.stats.accesses.inc();
        self.race_access(ev);

        let (key, loc) = if ev.device.is_host() {
            (ev.addr, StorageLoc::Host)
        } else {
            if !ev.mapped {
                self.report(
                    ReportKind::MappingOverflow,
                    "kernel accessed a variable absent from the device data environment (missing map clause)".into(),
                    ev.buffer,
                    ev.device,
                    ev.addr,
                    ev.size,
                    Some(ev.loc),
                    None,
                    Some(hints::ADD_MAP.into()),
                    Vec::new(),
                );
                return;
            }
            match self.lookup(ev.addr) {
                None => {
                    self.report(
                        ReportKind::MappingOverflow,
                        "kernel access outside every mapped corresponding variable".into(),
                        ev.buffer,
                        ev.device,
                        ev.addr,
                        ev.size,
                        Some(ev.loc),
                        None,
                        Some(hints::CHECK_BOUNDS.into()),
                        Vec::new(),
                    );
                    return;
                }
                Some((lo, _hi, info)) => {
                    if let Some(b) = ev.buffer {
                        if b != info.buffer {
                            // The access landed inside a *different*
                            // variable's CV — the undefined-behaviour case
                            // of §IV-D.
                            self.report(
                                ReportKind::MappingOverflow,
                                format!(
                                    "kernel access to '{}' overflowed into the corresponding variable of '{}'",
                                    self.buffer_name(ev.buffer).unwrap_or_default(),
                                    self.buffer_name(Some(info.buffer)).unwrap_or_default()
                                ),
                                ev.buffer,
                                ev.device,
                                ev.addr,
                                ev.size,
                                Some(ev.loc),
                                None,
                                Some(hints::CHECK_SECTION.into()),
                                Vec::new(),
                            );
                            return;
                        }
                    }
                    (info.ov_addr + (ev.addr - lo), StorageLoc::Device(ev.device.0 as u8))
                }
            }
        };

        let op = if ev.is_write { VsmOp::Write(loc) } else { VsmOp::Read(loc) };
        let (violation, prev) = self.vsm_step(key, op, Some(ev));
        // In May mode the shadow was evicted: decoded states are no longer
        // trustworthy, so a Must claim derived from them would be a false
        // positive. Transitions still commit (re-warming the shadow keeps
        // the accounting honest); only the violation verdict is dropped.
        if self.degraded() {
            return;
        }
        if let Some(v) = violation {
            let (kind, what, fix) = match v.kind {
                ViolationKind::Uum => (
                    ReportKind::MappingUum,
                    "use of uninitialized memory",
                    hints::for_read(ReportKind::MappingUum, ev.device),
                ),
                ViolationKind::Usd => (
                    ReportKind::MappingUsd,
                    "use of stale data",
                    hints::for_read(ReportKind::MappingUsd, ev.device),
                ),
            };
            self.report(
                kind,
                format!(
                    "{what}: read of '{}' on {} did not observe the last write",
                    self.buffer_name(ev.buffer).unwrap_or_default(),
                    ev.device
                ),
                ev.buffer,
                ev.device,
                ev.addr,
                ev.size,
                Some(ev.loc),
                Some(prev),
                Some(fix.to_string()),
                self.prov_chain(ev.buffer),
            );
        }
    }

    fn on_sync(&self, ev: &SyncEvent) {
        let Some(engine) = &self.race else { return };
        match ev {
            SyncEvent::TaskCreate { parent, child } => engine.fork(parent.0, child.0),
            SyncEvent::TaskEnd { task } => engine.end(task.0),
            SyncEvent::TaskJoin { waiter, joined } => engine.join(waiter.0, joined.0),
            SyncEvent::Acquire { task, lock } => engine.acquire(task.0, *lock),
            SyncEvent::Release { task, lock } => engine.release(task.0, *lock),
        }
    }

    fn reports(&self) -> Vec<Report> {
        self.reports.lock().clone()
    }

    fn side_table_bytes(&self) -> u64 {
        let mut bytes = self.shadow.resident_bytes() + self.intervals.read().approx_bytes();
        if let Some(r) = &self.race {
            bytes += r.approx_bytes();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::prelude::*;
    use std::sync::Arc;

    fn harness(cfg: ArbalestConfig) -> (Runtime, Arc<Arbalest>) {
        let tool = Arc::new(Arbalest::new(cfg));
        let rt = Runtime::with_tool(Config::default(), tool.clone());
        (rt, tool)
    }

    fn kinds(tool: &Arbalest) -> Vec<ReportKind> {
        let mut v: Vec<ReportKind> = tool.reports().iter().map(|r| r.kind).collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn clean_program_produces_no_reports() {
        let (rt, tool) = harness(ArbalestConfig::default());
        let a = rt.alloc_with::<f64>("a", 64, |i| i as f64);
        let b = rt.alloc::<f64>("b", 64);
        rt.target().map(Map::to(&a)).map(Map::from(&b)).run(move |k| {
            k.par_for(0..64, |k, i| {
                let v = k.read(&a, i);
                k.write(&b, i, 2.0 * v);
            });
        });
        let sum: f64 = (0..64).map(|i| rt.read(&b, i)).sum();
        assert_eq!(sum, 2.0 * (63.0 * 64.0 / 2.0));
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn figure1_alloc_instead_of_to_is_uum() {
        // DRACC_OMP_022 shape: map(alloc: b) then read b in the kernel.
        let (rt, tool) = harness(ArbalestConfig::default());
        let b = rt.alloc_with::<f64>("b", 32, |_| 1.0);
        let c = rt.alloc_with::<f64>("c", 32, |_| 0.0);
        rt.target().map(Map::alloc(&b)).map(Map::tofrom(&c)).run(move |k| {
            k.for_each(0..32, |k, i| {
                let v = k.read(&b, i); // UUM: CV of b allocated, never filled
                k.write(&c, i, v);
            });
        });
        assert_eq!(kinds(&tool), vec![ReportKind::MappingUum]);
        let r = &tool.reports()[0];
        assert_eq!(r.buffer.as_deref(), Some("b"));
        assert!(r.suggested_fix.is_some());
    }

    #[test]
    fn figure2_map_to_stale_host_read_is_usd() {
        // Fig. 2 lines 1–5: map(to: a); kernel writes a; host reads a.
        let (rt, tool) = harness(ArbalestConfig::default());
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..1, |k, _| {
                let v = k.read(&a, 0);
                k.write(&a, 0, v + 1);
            });
        });
        let _stale = rt.read(&a, 0);
        assert_eq!(kinds(&tool), vec![ReportKind::MappingUsd]);
        assert!(tool.reports()[0].suggested_fix.as_deref().unwrap().contains("tofrom"));
    }

    #[test]
    fn provenance_chain_tells_the_uum_story() {
        // Figure 1 shape with provenance capture on: the report must carry
        // the causal VSM walk — alloc (invalid stays invalid on the read
        // path) followed by the faulting device read.
        let (rt, tool) =
            harness(ArbalestConfig { provenance: true, ..Default::default() });
        let b = rt.alloc_with::<f64>("b", 32, |_| 1.0);
        let c = rt.alloc_with::<f64>("c", 32, |_| 0.0);
        rt.target().map(Map::alloc(&b)).map(Map::tofrom(&c)).run(move |k| {
            k.for_each(0..32, |k, i| {
                let v = k.read(&b, i);
                k.write(&c, i, v);
            });
        });
        let reports = tool.reports();
        let r = reports.iter().find(|r| r.kind == ReportKind::MappingUum).unwrap();
        assert!(!r.provenance.is_empty(), "provenance chain missing");
        let ops: Vec<&str> = r.provenance.iter().map(|s| s.op.as_str()).collect();
        assert!(ops.contains(&"alloc"), "{ops:?}");
        assert!(ops.contains(&"read_target"), "{ops:?}");
        // Edges are in causal order (clock strictly increases) and use the
        // stable state vocabulary.
        for w in r.provenance.windows(2) {
            assert!(w[0].clock < w[1].clock);
        }
        for s in &r.provenance {
            assert!(VSM_STATE_LABELS.contains(&s.from.as_str()), "{s:?}");
            assert!(VSM_STATE_LABELS.contains(&s.to.as_str()), "{s:?}");
        }
        // The faulting read's edge carries its source location.
        let last = r.provenance.last().unwrap();
        assert_eq!(last.op, "read_target");
        assert!(last.loc.is_some());
    }

    #[test]
    fn provenance_chain_tells_the_usd_story() {
        // Figure 2 shape: the chain must show the device write followed by
        // the stale host read, matching the USD hint's vocabulary.
        let (rt, tool) =
            harness(ArbalestConfig { provenance: true, ..Default::default() });
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..1, |k, _| {
                let v = k.read(&a, 0);
                k.write(&a, 0, v + 1);
            });
        });
        let _stale = rt.read(&a, 0);
        let reports = tool.reports();
        let r = reports.iter().find(|r| r.kind == ReportKind::MappingUsd).unwrap();
        let ops: Vec<&str> = r.provenance.iter().map(|s| s.op.as_str()).collect();
        assert!(ops.contains(&"update_target"), "{ops:?}");
        assert!(ops.contains(&"write_target"), "{ops:?}");
        assert_eq!(ops.last(), Some(&"read_host"), "{ops:?}");
        // The decisive edge: the device write left the fresh value on the
        // target, which is exactly what the USD_HOST hint says.
        let w = r.provenance.iter().find(|s| s.op == "write_target").unwrap();
        assert_eq!(w.to, "target");
        assert!(r.suggested_fix.as_deref().unwrap().contains("update from"));
    }

    #[test]
    fn provenance_off_leaves_reports_untouched() {
        // The same buggy trace with capture off and on: identical reports
        // except for the chain itself (off ⇒ empty).
        let run = |provenance: bool| {
            let (rt, tool) = harness(ArbalestConfig { provenance, ..Default::default() });
            let b = rt.alloc_with::<f64>("b", 32, |_| 1.0);
            rt.target().map(Map::alloc(&b)).run(move |k| {
                k.for_each(0..32, |k, i| {
                    let _ = k.read(&b, i);
                });
            });
            tool.reports()
        };
        let off = run(false);
        let on = run(true);
        assert!(off.iter().all(|r| r.provenance.is_empty()));
        assert!(on.iter().any(|r| !r.provenance.is_empty()));
        let mut stripped = on.clone();
        for r in &mut stripped {
            r.provenance.clear();
        }
        assert_eq!(off, stripped);
        // render() ignores the chain entirely.
        assert_eq!(off[0].render(), on[0].render());
    }

    #[test]
    fn provenance_ring_is_bounded() {
        let (rt, tool) =
            harness(ArbalestConfig { provenance: true, ..Default::default() });
        let a = rt.alloc_init::<i64>("a", &[1]);
        // Far more edges than the ring holds: repeated map/unmap churn.
        for _ in 0..PROV_RING_CAP * 4 {
            rt.target().map(Map::to(&a)).run(move |k| {
                k.for_each(0..1, |k, _| {
                    let _ = k.read(&a, 0);
                });
            });
        }
        let _stale_check = rt.read(&a, 0);
        for r in tool.reports() {
            assert!(r.provenance.len() <= PROV_RING_CAP, "{}", r.provenance.len());
        }
    }

    #[test]
    fn kernel_overflow_into_neighbour_cv_is_mapping_bo() {
        let (rt, tool) = harness(ArbalestConfig::default());
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        let b = rt.alloc_with::<f64>("b", 8, |_| 2.0);
        rt.target().map(Map::to(&a)).map(Map::to(&b)).run(move |k| {
            k.for_each(0..1, |k, _| {
                // a[12] lands beyond a's CV. With bump allocation b's CV is
                // nearby; either way it is a mapping-related overflow.
                let _ = k.read(&a, 12);
            });
        });
        assert_eq!(kinds(&tool), vec![ReportKind::MappingOverflow]);
    }

    #[test]
    fn oversized_section_flagged_at_transfer() {
        let (rt, tool) = harness(ArbalestConfig::default());
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        // map(to: a[0:12]) — section exceeds the variable.
        rt.target().map(Map::to_section(&a, 0, 12)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let _ = k.read(&a, i);
            });
        });
        assert!(kinds(&tool).contains(&ReportKind::MappingOverflow));
    }

    #[test]
    fn missing_map_is_reported() {
        let (rt, tool) = harness(ArbalestConfig::default());
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        let b = rt.alloc_with::<f64>("b", 8, |_| 0.0);
        rt.target().map(Map::tofrom(&b)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i); // `a` never mapped
                k.write(&b, i, v);
            });
        });
        let reports = tool.reports();
        assert!(reports.iter().any(|r| r.kind == ReportKind::MappingOverflow
            && r.message.contains("missing map clause")));
    }

    #[test]
    fn update_constructs_restore_consistency() {
        let (rt, tool) = harness(ArbalestConfig::default());
        let a = rt.alloc_init::<i64>("a", &[5; 8]);
        rt.target_data().map(Map::to(&a)).scope(|rt| {
            rt.target().map(Map::to(&a)).run(move |k| {
                k.for_each(0..8, |k, i| {
                    let v = k.read(&a, i);
                    k.write(&a, i, v * 2);
                });
            });
            rt.update_from(&a); // pulls the device values back
            for i in 0..8 {
                assert_eq!(rt.read(&a, i), 10);
            }
        });
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn nowait_exit_transfer_race_is_detected_in_serial_mode() {
        // Fig. 2 lines 7–16, run under Theorem-1 serialization: the VSM
        // sees a deterministic schedule while the race engine still sees
        // the unordered host write vs kernel write.
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default().serialize(true), tool.clone());
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
            rt.target().nowait().run(move |k| {
                k.for_each(0..1, |k, _| k.write(&a, 0, 3));
            });
            rt.write(&a, 0, rt.read(&a, 0) + 1); // races with the kernel
        });
        rt.taskwait();
        assert!(
            tool.reports().iter().any(|r| r.kind == ReportKind::DataRace),
            "expected a data race report: {:?}",
            tool.reports()
        );
    }

    #[test]
    fn unified_memory_flushes_prevent_false_positives() {
        // §III-B: under unified memory, a data-race-free program is free of
        // mapping issues even with map(to) only — the implicit flushes at
        // region boundaries synchronise the views. ARBALEST must not
        // report USD here.
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default().unified(true), tool.clone());
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..1, |k, _| {
                let v = k.read(&a, 0);
                k.write(&a, 0, v + 1);
            });
        });
        assert_eq!(rt.read(&a, 0), 2, "unified memory shares storage");
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn multi_device_stale_second_accelerator() {
        let tool = Arc::new(Arbalest::new(ArbalestConfig { accelerators: 2, ..Default::default() }));
        assert_eq!(tool.layout(), Layout::MultiDevice);
        let rt = Runtime::with_tool(Config::default().accelerators(2), tool.clone());
        let a = rt.alloc_init::<i64>("a", &[7; 4]);
        let d0 = DeviceId(1);
        let d1 = DeviceId(2);
        // Map to both devices, write on device 0, then read on device 1:
        // device 1's CV is stale.
        rt.target_enter_data(d0, &[Map::to(&a)]);
        rt.target_enter_data(d1, &[Map::to(&a)]);
        rt.target().on_device(d0).map(Map::to(&a)).run(move |k| {
            k.for_each(0..4, |k, i| k.write(&a, i, 100));
        });
        rt.target().on_device(d1).map(Map::to(&a)).run(move |k| {
            k.for_each(0..4, |k, i| {
                let _ = k.read(&a, i); // stale
            });
        });
        assert!(kinds(&tool).contains(&ReportKind::MappingUsd));
    }

    #[test]
    fn reports_deduplicate_per_site() {
        let (rt, tool) = harness(ArbalestConfig::default());
        let a = rt.alloc::<f64>("a", 128);
        // 128 faulting reads from one source line → one report.
        for i in 0..128 {
            let _ = rt.read(&a, i);
        }
        assert_eq!(tool.reports().len(), 1);
        assert_eq!(tool.reports()[0].kind, ReportKind::MappingUum);
    }

    #[test]
    fn cache_hit_rate_is_zero_not_nan_before_any_lookup() {
        let tool = Arbalest::new(ArbalestConfig::default());
        let rate = tool.stats().cache_hit_rate();
        assert!(!rate.is_nan());
        assert_eq!(rate, 0.0);
        // Still well-defined with the cache disabled (misses only).
        let (rt, tool) = harness(ArbalestConfig { lookup_cache: false, ..Default::default() });
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v);
            });
        });
        let rate = tool.stats().cache_hit_rate();
        assert!(!rate.is_nan());
        assert_eq!(rate, 0.0);
        assert!(tool.stats().cache_misses.get() > 0);
    }

    #[test]
    fn transition_pairs_and_lookup_depth_are_recorded() {
        let reg = arbalest_obs::Registry::new();
        let tool = Arc::new(Arbalest::with_registry(ArbalestConfig::default(), reg.clone()));
        let rt = Runtime::with_tool(Config::default(), tool.clone());
        let a = rt.alloc_with::<f64>("a", 16, |i| i as f64);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..16, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
        rt.taskwait();
        let snap = reg.snapshot();
        // The per-pair breakdown sums to the aggregate transition count.
        assert_eq!(
            snap.counter_sum("arbalest_detector_vsm_transition_pairs_total"),
            tool.stats().vsm_transitions()
        );
        // map(tofrom) allocates CVs: alloc edges must exist (from the
        // `host` state — the buffer was host-initialised before mapping).
        let allocs: u64 = snap
            .counters_named("arbalest_detector_vsm_transition_pairs_total")
            .filter(|(labels, _)| labels.iter().any(|(k, v)| k == "op" && v == "alloc"))
            .map(|(_, v)| v)
            .sum();
        assert!(allocs > 0, "no alloc transition edges recorded");
        // Device reads resolved through the interval tree record a depth.
        let depth = snap.histogram("arbalest_detector_lookup_depth", &[]).unwrap();
        assert!(depth.count > 0);
        assert!(depth.min >= 1);
        // One CV allocated and deleted through the present table.
        assert_eq!(
            snap.counter("arbalest_detector_present_ops_total", &[("op", "cv_alloc")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("arbalest_detector_present_ops_total", &[("op", "cv_delete")]),
            Some(1)
        );
    }

    #[test]
    fn disabled_registry_detector_still_detects() {
        let reg = arbalest_obs::Registry::disabled();
        let tool = Arc::new(Arbalest::with_registry(ArbalestConfig::default(), reg.clone()));
        let rt = Runtime::with_tool(Config::default(), tool.clone());
        let b = rt.alloc_with::<f64>("b", 8, |_| 1.0);
        rt.target().map(Map::alloc(&b)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let _ = k.read(&b, i); // UUM
            });
        });
        assert_eq!(kinds(&tool), vec![ReportKind::MappingUum]);
        // No metrics recorded, and the stats counters read zero.
        assert!(reg.snapshot().counters.is_empty());
        assert_eq!(tool.stats().accesses.get(), 0);
        assert_eq!(tool.stats().cache_hit_rate(), 0.0);
    }

    #[test]
    fn evict_to_may_sheds_memory_and_suppresses_vsm_claims() {
        let (rt, tool) = harness(ArbalestConfig::default());
        let a = rt.alloc_with::<f64>("a", 100_000, |_| 0.0);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..100_000, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
        let before = tool.side_table_bytes();
        let freed = tool.evict_to_may();
        assert!(tool.degraded());
        assert!(freed > 0, "eviction freed nothing");
        assert!(tool.side_table_bytes() < before, "side tables did not shrink");
        // Post-eviction the granule reads back as the initial state, which
        // would be a UUM claim on a fresh detector; May mode suppresses it.
        let _ = rt.read(&a, 0);
        assert!(tool.reports().is_empty(), "May mode asserted a violation: {:?}", tool.reports());
    }

    #[test]
    fn side_tables_grow_with_footprint() {
        let (rt, tool) = harness(ArbalestConfig::default());
        let base = tool.side_table_bytes();
        let a = rt.alloc_with::<f64>("a", 100_000, |_| 0.0);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..100_000, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
        assert!(tool.side_table_bytes() > base + 100_000, "shadow must be resident");
    }
}
