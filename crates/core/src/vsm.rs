//! The Variable State Machine (VSM) of Fig. 4, as pure transition logic.
//!
//! The paper's four states are the single-accelerator projection of a
//! validity *mask* over storage locations (host OV + per-device CVs):
//!
//! * `invalid`    — `valid_mask == 0`
//! * `host`       — only the OV bit set
//! * `target`     — only one CV bit set
//! * `consistent` — OV and CV bits set
//!
//! Operations transform the mask; a read of a location whose bit is clear
//! has no legal transition — that is a data mapping issue. The §IV-C
//! multi-device extension falls out for free: each accelerator owns a
//! mask bit, state stays O(n+1) bits.
//!
//! Initialisation bits ride along to classify violations: a read of a
//! never-initialised location is a **UUM**, a read of an initialised but
//! stale location a **USD** (§V-B: "UUMs and USDs can not be
//! distinguished by VSM, so ARBALEST uses two additional bits").

use arbalest_shadow::GranuleState;

/// A storage location of a mapped variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageLoc {
    /// The original variable on the host.
    Host,
    /// The corresponding variable on accelerator `d` (1-based mask bit,
    /// `1..=7`).
    Device(u8),
}

impl StorageLoc {
    /// The mask bit for this location.
    #[inline]
    pub fn bit(self) -> u8 {
        match self {
            StorageLoc::Host => 1,
            StorageLoc::Device(d) => {
                debug_assert!((1..8).contains(&d));
                1 << d
            }
        }
    }
}

/// VSM operations (edge labels of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VsmOp {
    /// `read_host` / `read_target`.
    Read(StorageLoc),
    /// `write_host` / `write_target`.
    Write(StorageLoc),
    /// `update_target`: memory transfer OV → CV of device `d`.
    UpdateToDevice(u8),
    /// `update_host`: memory transfer CV of device `d` → OV.
    UpdateFromDevice(u8),
    /// CV allocation on device `d` (fresh, uninitialised).
    Allocate(u8),
    /// CV deallocation on device `d`.
    Release(u8),
    /// Unified-memory coherence flush between the OV and device `d`'s CV
    /// (§III-B): both views now show the shared storage's value, so if
    /// either side was valid, both become valid.
    Flush(u8),
    /// Direct CV → CV copy between accelerators (`omp_target_memcpy`):
    /// the destination takes the source's validity and initialisation.
    UpdateDeviceToDevice {
        /// Source accelerator (mask bit index).
        src: u8,
        /// Destination accelerator.
        dst: u8,
    },
}

/// Violation classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The read location was never initialised.
    Uum,
    /// The read location holds a stale value.
    Usd,
}

/// A read with no legal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// UUM or USD.
    pub kind: ViolationKind,
    /// The location whose read faulted.
    pub loc: StorageLoc,
}

/// Apply `op` to a granule state, returning the successor state and the
/// violation, if the operation is a faulting read.
///
/// Reads never change the validity masks (the paper's VSM reports and
/// keeps going); writes/updates/alloc/release follow Fig. 4.
pub fn apply(mut s: GranuleState, op: VsmOp) -> (GranuleState, Option<Violation>) {
    match op {
        VsmOp::Read(loc) => {
            let bit = loc.bit();
            if s.valid_mask & bit == 0 {
                let kind = if s.init_mask & bit == 0 { ViolationKind::Uum } else { ViolationKind::Usd };
                return (s, Some(Violation { kind, loc }));
            }
            (s, None)
        }
        VsmOp::Write(loc) => {
            // The written location becomes the unique holder of the last
            // value; every other copy is now stale.
            s.valid_mask = loc.bit();
            s.init_mask |= loc.bit();
            (s, None)
        }
        VsmOp::UpdateToDevice(d) => {
            let db = StorageLoc::Device(d).bit();
            let hb = StorageLoc::Host.bit();
            if s.valid_mask & hb != 0 {
                s.valid_mask |= db;
            } else {
                // Copying an invalid OV over the CV destroys the CV's value
                // (host → invalid via update_host's mirror; Fig. 4).
                s.valid_mask &= !db;
            }
            // The CV's contents are now exactly the OV's: initialised iff
            // the OV was.
            if s.init_mask & hb != 0 {
                s.init_mask |= db;
            } else {
                s.init_mask &= !db;
            }
            (s, None)
        }
        VsmOp::UpdateFromDevice(d) => {
            let db = StorageLoc::Device(d).bit();
            let hb = StorageLoc::Host.bit();
            if s.valid_mask & db != 0 {
                s.valid_mask |= hb;
            } else {
                s.valid_mask &= !hb;
            }
            if s.init_mask & db != 0 {
                s.init_mask |= hb;
            } else {
                s.init_mask &= !hb;
            }
            (s, None)
        }
        VsmOp::Allocate(d) => {
            let db = StorageLoc::Device(d).bit();
            s.valid_mask &= !db;
            s.init_mask &= !db;
            (s, None)
        }
        VsmOp::Release(d) => {
            let db = StorageLoc::Device(d).bit();
            s.valid_mask &= !db;
            s.init_mask &= !db;
            (s, None)
        }
        VsmOp::Flush(d) => {
            let db = StorageLoc::Device(d).bit();
            let hb = StorageLoc::Host.bit();
            if s.valid_mask & (db | hb) != 0 {
                s.valid_mask |= db | hb;
            }
            if s.init_mask & (db | hb) != 0 {
                s.init_mask |= db | hb;
            }
            (s, None)
        }
        VsmOp::UpdateDeviceToDevice { src, dst } => {
            let sb = StorageLoc::Device(src).bit();
            let db = StorageLoc::Device(dst).bit();
            if s.valid_mask & sb != 0 {
                s.valid_mask |= db;
            } else {
                s.valid_mask &= !db;
            }
            if s.init_mask & sb != 0 {
                s.init_mask |= db;
            } else {
                s.init_mask &= !db;
            }
            (s, None)
        }
    }
}

/// The paper's four named states, for the single-accelerator projection
/// (device 1). Test and report support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamedState {
    /// Neither storage holds a valid value.
    Invalid,
    /// Only the OV is valid.
    Host,
    /// Only the CV is valid.
    Target,
    /// Both are valid.
    Consistent,
}

/// Project a mask state onto the paper's four states (device 1).
pub fn named(s: GranuleState) -> NamedState {
    match (s.valid_mask & 0b01 != 0, s.valid_mask & 0b10 != 0) {
        (false, false) => NamedState::Invalid,
        (true, false) => NamedState::Host,
        (false, true) => NamedState::Target,
        (true, true) => NamedState::Consistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOST: StorageLoc = StorageLoc::Host;
    const DEV: StorageLoc = StorageLoc::Device(1);

    fn state(valid: u8, init: u8) -> GranuleState {
        GranuleState { valid_mask: valid, init_mask: init, ..Default::default() }
    }

    fn step(s: GranuleState, op: VsmOp) -> GranuleState {
        let (next, v) = apply(s, op);
        assert!(v.is_none(), "unexpected violation for {op:?}");
        next
    }

    // ---- Fig. 4, state `invalid` ----

    #[test]
    fn invalid_reads_fault_as_uum() {
        let s = state(0, 0);
        for loc in [HOST, DEV] {
            let (_, v) = apply(s, VsmOp::Read(loc));
            assert_eq!(v, Some(Violation { kind: ViolationKind::Uum, loc }));
        }
    }

    #[test]
    fn invalid_write_host_goes_host() {
        let s = step(state(0, 0), VsmOp::Write(HOST));
        assert_eq!(named(s), NamedState::Host);
        assert!(s.initialised(0));
    }

    #[test]
    fn invalid_write_target_goes_target() {
        let s = step(state(0, 0), VsmOp::Write(DEV));
        assert_eq!(named(s), NamedState::Target);
        assert!(s.initialised(1));
    }

    #[test]
    fn invalid_other_ops_stay_invalid() {
        for op in [
            VsmOp::UpdateToDevice(1),
            VsmOp::UpdateFromDevice(1),
            VsmOp::Allocate(1),
            VsmOp::Release(1),
        ] {
            let s = step(state(0, 0), op);
            assert_eq!(named(s), NamedState::Invalid, "{op:?}");
        }
    }

    // ---- Fig. 4, state `host` ----

    #[test]
    fn host_read_host_ok_read_target_faults() {
        let s = state(0b01, 0b01);
        assert!(apply(s, VsmOp::Read(HOST)).1.is_none());
        let (_, v) = apply(s, VsmOp::Read(DEV));
        assert_eq!(v.unwrap().kind, ViolationKind::Uum, "CV never initialised");
        // Once the CV was initialised (then invalidated), it's stale data.
        let s = state(0b01, 0b11);
        let (_, v) = apply(s, VsmOp::Read(DEV));
        assert_eq!(v.unwrap().kind, ViolationKind::Usd);
    }

    #[test]
    fn host_write_target_goes_target() {
        let s = step(state(0b01, 0b01), VsmOp::Write(DEV));
        assert_eq!(named(s), NamedState::Target);
    }

    #[test]
    fn host_update_to_device_goes_consistent() {
        let s = step(state(0b01, 0b01), VsmOp::UpdateToDevice(1));
        assert_eq!(named(s), NamedState::Consistent);
        assert!(s.initialised(1), "init propagates with the copy");
    }

    #[test]
    fn host_update_from_device_goes_invalid() {
        // OV overwritten by the invalid CV value.
        let s = step(state(0b01, 0b01), VsmOp::UpdateFromDevice(1));
        assert_eq!(named(s), NamedState::Invalid);
    }

    #[test]
    fn host_allocate_release_stay_host() {
        for op in [VsmOp::Allocate(1), VsmOp::Release(1)] {
            let s = step(state(0b01, 0b01), op);
            assert_eq!(named(s), NamedState::Host, "{op:?}");
        }
    }

    // ---- Fig. 4, state `target` ----

    #[test]
    fn target_read_host_faults() {
        let s = state(0b10, 0b11);
        let (_, v) = apply(s, VsmOp::Read(HOST));
        assert_eq!(v.unwrap().kind, ViolationKind::Usd);
        assert!(apply(s, VsmOp::Read(DEV)).1.is_none());
    }

    #[test]
    fn target_write_host_goes_host() {
        let s = step(state(0b10, 0b10), VsmOp::Write(HOST));
        assert_eq!(named(s), NamedState::Host);
    }

    #[test]
    fn target_update_from_device_goes_consistent() {
        let s = step(state(0b10, 0b10), VsmOp::UpdateFromDevice(1));
        assert_eq!(named(s), NamedState::Consistent);
        assert!(s.initialised(0));
    }

    #[test]
    fn target_update_to_device_goes_invalid() {
        let s = step(state(0b10, 0b10), VsmOp::UpdateToDevice(1));
        assert_eq!(named(s), NamedState::Invalid, "invalid OV overwrote the CV");
    }

    #[test]
    fn target_release_goes_invalid() {
        let s = step(state(0b10, 0b10), VsmOp::Release(1));
        assert_eq!(named(s), NamedState::Invalid);
    }

    // ---- Fig. 4, state `consistent` ----

    #[test]
    fn consistent_reads_ok() {
        let s = state(0b11, 0b11);
        assert!(apply(s, VsmOp::Read(HOST)).1.is_none());
        assert!(apply(s, VsmOp::Read(DEV)).1.is_none());
    }

    #[test]
    fn consistent_write_host_goes_host() {
        let s = step(state(0b11, 0b11), VsmOp::Write(HOST));
        assert_eq!(named(s), NamedState::Host);
    }

    #[test]
    fn consistent_write_target_goes_target() {
        let s = step(state(0b11, 0b11), VsmOp::Write(DEV));
        assert_eq!(named(s), NamedState::Target);
    }

    #[test]
    fn consistent_updates_stay_consistent() {
        for op in [VsmOp::UpdateToDevice(1), VsmOp::UpdateFromDevice(1)] {
            let s = step(state(0b11, 0b11), op);
            assert_eq!(named(s), NamedState::Consistent, "{op:?}");
        }
    }

    #[test]
    fn consistent_release_goes_host() {
        let s = step(state(0b11, 0b11), VsmOp::Release(1));
        assert_eq!(named(s), NamedState::Host);
    }

    // ---- multi-device extension (§IV-C) ----

    #[test]
    fn write_on_one_device_invalidates_all_others() {
        let s = state(0b0111, 0b0111); // host + dev1 + dev2 valid
        let (s, _) = apply(s, VsmOp::Write(StorageLoc::Device(2)));
        assert_eq!(s.valid_mask, 0b100);
        let (_, v) = apply(s, VsmOp::Read(StorageLoc::Device(1)));
        assert_eq!(v.unwrap().kind, ViolationKind::Usd);
        let (_, v) = apply(s, VsmOp::Read(HOST));
        assert_eq!(v.unwrap().kind, ViolationKind::Usd);
    }

    #[test]
    fn updates_fan_out_to_multiple_devices() {
        let s = state(0b001, 0b001);
        let (s, _) = apply(s, VsmOp::UpdateToDevice(1));
        let (s, _) = apply(s, VsmOp::UpdateToDevice(2));
        assert_eq!(s.valid_mask, 0b111);
        // Write on device 2, pull back to host, push to device 1.
        let (s, _) = apply(s, VsmOp::Write(StorageLoc::Device(2)));
        let (s, _) = apply(s, VsmOp::UpdateFromDevice(2));
        let (s, _) = apply(s, VsmOp::UpdateToDevice(1));
        assert_eq!(s.valid_mask, 0b111);
    }

    #[test]
    fn uninitialised_update_propagates_uninit() {
        // `to`-mapping an uninitialised OV leaves the CV uninitialised:
        // a subsequent CV read is a UUM, not a USD.
        let s = state(0, 0);
        let (s, _) = apply(s, VsmOp::Allocate(1));
        let (s, _) = apply(s, VsmOp::UpdateToDevice(1));
        let (_, v) = apply(s, VsmOp::Read(DEV));
        assert_eq!(v.unwrap().kind, ViolationKind::Uum);
    }

    #[test]
    fn unified_flush_synchronises_either_direction() {
        // Host-valid: flush makes both valid.
        let s = step(state(0b01, 0b01), VsmOp::Flush(1));
        assert_eq!(named(s), NamedState::Consistent);
        // Target-valid: flush makes both valid too (shared storage).
        let s = step(state(0b10, 0b10), VsmOp::Flush(1));
        assert_eq!(named(s), NamedState::Consistent);
        // Invalid: a flush of uninitialised storage synchronises nothing.
        let s = step(state(0, 0), VsmOp::Flush(1));
        assert_eq!(named(s), NamedState::Invalid);
    }

    #[test]
    fn realloc_clears_init_from_prior_epoch() {
        // CV written, released, re-allocated: old init must not leak.
        let s = state(0, 0);
        let (s, _) = apply(s, VsmOp::Write(DEV));
        let (s, _) = apply(s, VsmOp::Release(1));
        let (s, _) = apply(s, VsmOp::Allocate(1));
        let (_, v) = apply(s, VsmOp::Read(DEV));
        assert_eq!(v.unwrap().kind, ViolationKind::Uum);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;

    /// Deterministic xorshift64* generator: the proptest strategies these
    /// properties were written with are replayed as seeded loops so the
    /// suite builds hermetically (no external crates).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_op(rng: &mut Rng) -> VsmOp {
        let d = 1 + rng.below(3) as u8;
        match rng.below(9) {
            0 => VsmOp::Read(StorageLoc::Host),
            1 => VsmOp::Read(StorageLoc::Device(d)),
            2 => VsmOp::Write(StorageLoc::Host),
            3 => VsmOp::Write(StorageLoc::Device(d)),
            4 => VsmOp::UpdateToDevice(d),
            5 => VsmOp::UpdateFromDevice(d),
            6 => VsmOp::Allocate(d),
            7 => VsmOp::Release(d),
            _ => VsmOp::Flush(d),
        }
    }

    fn random_loc(rng: &mut Rng) -> StorageLoc {
        match rng.below(4) as u8 {
            0 => StorageLoc::Host,
            d => StorageLoc::Device(d),
        }
    }

    /// Invariant: a location is valid only if it is initialised —
    /// validity implies initialisation, for every operation sequence.
    #[test]
    fn valid_implies_initialised() {
        for seed in 1..=256u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15));
            let mut s = GranuleState::default();
            for _ in 0..64 {
                let op = random_op(&mut rng);
                let (next, _) = apply(s, op);
                assert_eq!(
                    next.valid_mask & !next.init_mask,
                    0,
                    "valid but uninitialised after {op:?} (seed {seed})"
                );
                s = next;
            }
        }
    }

    /// Reads never alter the state.
    #[test]
    fn reads_are_pure() {
        for seed in 1..=256u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15));
            let mut s = GranuleState::default();
            for _ in 0..32 {
                s = apply(s, random_op(&mut rng)).0;
            }
            let loc = random_loc(&mut rng);
            let (next, _) = apply(s, VsmOp::Read(loc));
            assert_eq!(next, s, "read of {loc:?} mutated state (seed {seed})");
        }
    }

    /// A read immediately after a write to the same location succeeds.
    #[test]
    fn read_after_write_is_legal() {
        for seed in 1..=256u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15));
            let mut s = GranuleState::default();
            for _ in 0..32 {
                s = apply(s, random_op(&mut rng)).0;
            }
            let loc = random_loc(&mut rng);
            let (s, _) = apply(s, VsmOp::Write(loc));
            let (_, v) = apply(s, VsmOp::Read(loc));
            assert!(v.is_none(), "read-after-write of {loc:?} flagged (seed {seed})");
        }
    }
}
