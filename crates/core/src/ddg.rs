//! Dynamic data dependence graphs (Fig. 3 of the paper).
//!
//! Fig. 3 explains the Fig. 2 hazard by drawing, for one variable, the
//! value flow of the *observed* schedule: writes, transfers, and reads as
//! nodes; "read receives value from write" as edges. This module builds
//! that graph from a recorded execution trace (see
//! [`arbalest_offload::trace`]) for any chosen buffer, and renders it as
//! Graphviz DOT. Running the same racy program twice typically yields the
//! paper's two alternative graphs.

use arbalest_offload::buffer::BufferId;
use arbalest_offload::events::{TaskId, TransferKind};
use arbalest_offload::trace::TraceEvent;

/// Node classes in the dependence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Write to the OV on the host.
    HostWrite,
    /// Read of the OV on the host.
    HostRead,
    /// Write to a CV in a kernel.
    DeviceWrite,
    /// Read of a CV in a kernel.
    DeviceRead,
    /// OV → CV transfer.
    TransferToDevice,
    /// CV → OV transfer.
    TransferFromDevice,
    /// CV allocation.
    Alloc,
    /// CV deletion.
    Delete,
}

impl NodeKind {
    fn label(self) -> &'static str {
        match self {
            NodeKind::HostWrite => "write_host",
            NodeKind::HostRead => "read_host",
            NodeKind::DeviceWrite => "write_target",
            NodeKind::DeviceRead => "read_target",
            NodeKind::TransferToDevice => "update_target",
            NodeKind::TransferFromDevice => "update_host",
            NodeKind::Alloc => "allocate",
            NodeKind::Delete => "release",
        }
    }
}

/// One node: an operation (or run of identical operations by one task).
#[derive(Debug, Clone)]
pub struct Node {
    /// Node id (index).
    pub id: usize,
    /// Operation class.
    pub kind: NodeKind,
    /// Performing task.
    pub task: TaskId,
    /// How many consecutive identical operations were coalesced.
    pub count: usize,
}

/// A value-flow edge: `to` receives (part of) its value from `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producer node id.
    pub from: usize,
    /// Consumer node id.
    pub to: usize,
}

/// The dependence graph of one buffer in one observed schedule.
#[derive(Debug, Default)]
pub struct Ddg {
    /// Nodes in trace order.
    pub nodes: Vec<Node>,
    /// Value-flow edges.
    pub edges: Vec<Edge>,
}

impl Ddg {
    /// Build the graph for `buffer` from a recorded trace.
    ///
    /// Consecutive events with the same (kind, task) coalesce into one
    /// node — a loop writing 1000 elements is one `write_host` node, as
    /// in the paper's figure.
    pub fn build(trace: &[TraceEvent], buffer: BufferId) -> Ddg {
        let mut g = Ddg::default();
        // Last producer node per side of the variable.
        let mut last_ov: Option<usize> = None;
        let mut last_cv: Option<usize> = None;

        for ev in trace {
            let (kind, task) = match ev {
                TraceEvent::Access(a) if a.buffer == Some(buffer) => {
                    let kind = match (a.device.is_host(), a.is_write) {
                        (true, true) => NodeKind::HostWrite,
                        (true, false) => NodeKind::HostRead,
                        (false, true) => NodeKind::DeviceWrite,
                        (false, false) => NodeKind::DeviceRead,
                    };
                    (kind, a.task)
                }
                TraceEvent::Transfer(t) if t.buffer == buffer && !t.unified => {
                    let kind = match t.kind {
                        TransferKind::ToDevice => NodeKind::TransferToDevice,
                        TransferKind::FromDevice | TransferKind::DeviceToDevice => {
                            NodeKind::TransferFromDevice
                        }
                    };
                    (kind, t.task)
                }
                TraceEvent::DataOp(d) if d.buffer == buffer => {
                    let kind = match d.kind {
                        arbalest_offload::events::DataOpKind::CvAlloc => NodeKind::Alloc,
                        arbalest_offload::events::DataOpKind::CvDelete => NodeKind::Delete,
                    };
                    (kind, d.task)
                }
                _ => continue,
            };

            let node = g.intern(kind, task);
            match kind {
                NodeKind::HostWrite => last_ov = Some(node),
                NodeKind::HostRead => g.link(last_ov, node),
                NodeKind::DeviceWrite => last_cv = Some(node),
                NodeKind::DeviceRead => g.link(last_cv, node),
                NodeKind::TransferToDevice => {
                    g.link(last_ov, node);
                    last_cv = Some(node);
                }
                NodeKind::TransferFromDevice => {
                    g.link(last_cv, node);
                    last_ov = Some(node);
                }
                NodeKind::Alloc => last_cv = Some(node),
                NodeKind::Delete => last_cv = None,
            }
        }
        g
    }

    /// Reuse the previous node when kind and task match (coalescing).
    fn intern(&mut self, kind: NodeKind, task: TaskId) -> usize {
        if let Some(last) = self.nodes.last_mut() {
            if last.kind == kind && last.task == task {
                last.count += 1;
                return last.id;
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Node { id, kind, task, count: 1 });
        id
    }

    fn link(&mut self, from: Option<usize>, to: usize) {
        if let Some(from) = from {
            if from != to {
                let e = Edge { from, to };
                if self.edges.last() != Some(&e) {
                    self.edges.push(e);
                }
            }
        }
    }

    /// Render as Graphviz DOT (one subgraph; host ops drawn as boxes,
    /// device ops as ellipses, transfers as diamonds — the visual grammar
    /// of Fig. 3).
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{title}\" {{\n  rankdir=TB;\n"));
        for n in &self.nodes {
            let shape = match n.kind {
                NodeKind::HostWrite | NodeKind::HostRead => "box",
                NodeKind::DeviceWrite | NodeKind::DeviceRead => "ellipse",
                _ => "diamond",
            };
            let times = if n.count > 1 { format!(" x{}", n.count) } else { String::new() };
            out.push_str(&format!(
                "  n{} [label=\"{}{} (T{})\", shape={}];\n",
                n.id,
                n.kind.label(),
                times,
                n.task.0,
                shape
            ));
        }
        for e in &self.edges {
            out.push_str(&format!("  n{} -> n{};\n", e.from, e.to));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::prelude::*;
    use arbalest_offload::trace::TraceRecorder;
    use std::sync::Arc;

    fn trace_fig2_top() -> (Vec<TraceEvent>, BufferId) {
        // Fig. 2 lines 1–5: map(to: a); kernel a += 1; host reads a.
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..1, |k, _| {
                let v = k.read(&a, 0);
                k.write(&a, 0, v + 1);
            });
        });
        let _ = rt.read(&a, 0);
        (rec.take(), a.id())
    }

    #[test]
    fn fig2_graph_shows_the_broken_value_flow() {
        let (trace, id) = trace_fig2_top();
        let g = Ddg::build(&trace, id);
        let kinds: Vec<NodeKind> = g.nodes.iter().map(|n| n.kind).collect();
        assert_eq!(
            kinds,
            vec![
                NodeKind::HostWrite,        // a = 1
                NodeKind::Alloc,            // CV created
                NodeKind::TransferToDevice, // map(to)
                NodeKind::DeviceRead,       // kernel read
                NodeKind::DeviceWrite,      // kernel write
                NodeKind::Delete,           // region end (map-to: no copy back)
                NodeKind::HostRead,         // stale printf
            ]
        );
        // The stale host read's edge comes from the ORIGINAL host write,
        // not from the kernel's write — exactly Fig. 3's left graph.
        let read_node = g.nodes.iter().find(|n| n.kind == NodeKind::HostRead).unwrap().id;
        let write_node = g.nodes.iter().find(|n| n.kind == NodeKind::HostWrite).unwrap().id;
        assert!(g.edges.contains(&Edge { from: write_node, to: read_node }));
        let device_write = g.nodes.iter().find(|n| n.kind == NodeKind::DeviceWrite).unwrap().id;
        assert!(
            !g.edges.iter().any(|e| e.from == device_write && e.to == read_node),
            "the device write never flows into the host read — that IS the bug"
        );
    }

    #[test]
    fn coalescing_merges_element_loops() {
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        let a = rt.alloc_with::<f64>("a", 64, |_| 1.0);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..64, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
        let g = Ddg::build(&rec.take(), a.id());
        // 64 host writes coalesce to one node; the kernel's alternating
        // read/write per element does NOT fully coalesce (kinds alternate),
        // but the graph stays small and the counts add up.
        let host_writes = g.nodes.iter().find(|n| n.kind == NodeKind::HostWrite).unwrap();
        assert_eq!(host_writes.count, 64);
    }

    #[test]
    fn dot_output_is_wellformed() {
        let (trace, id) = trace_fig2_top();
        let g = Ddg::build(&trace, id);
        let dot = g.to_dot("fig2");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("write_host"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("shape=box").count(), 2, "host read + host write");
    }

    #[test]
    fn fixed_program_flows_device_value_to_host() {
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..1, |k, _| {
                let v = k.read(&a, 0);
                k.write(&a, 0, v + 1);
            });
        });
        let _ = rt.read(&a, 0);
        let g = Ddg::build(&rec.take(), a.id());
        let read_node = g.nodes.iter().find(|n| n.kind == NodeKind::HostRead).unwrap().id;
        let from_dev = g.nodes.iter().find(|n| n.kind == NodeKind::TransferFromDevice).unwrap().id;
        assert!(
            g.edges.contains(&Edge { from: from_dev, to: read_node }),
            "tofrom: the host read receives the copied-back value: {:?}",
            g.edges
        );
    }
}
