//! A reusable, incrementally-fed detector handle.
//!
//! [`certify`](crate::replay::certify) and the offline
//! [`replay`](arbalest_offload::trace::replay) entry points assume the
//! whole event stream is in hand. A long-lived analysis service gets
//! events in batches, interleaved across many concurrent sessions, and
//! needs one detector *per session* that can be fed piecemeal and asked
//! for its findings at the end. [`AnalysisSession`] is that handle: an
//! [`Arbalest`] instance plus event accounting, with the same
//! event-dispatch semantics as a replay (so a session fed a trace yields
//! exactly the reports an in-process replay of that trace yields).

use crate::detector::{Arbalest, ArbalestConfig, DetectorSnapshot, RestoreError};
use arbalest_offload::report::Report;
use arbalest_offload::trace::{apply, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Complete serializable state of an [`AnalysisSession`]: the detector
/// dump plus the fed-event count (recovery uses the count to skip
/// already-applied events when replaying a WAL tail over a snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Events fed when the snapshot was taken.
    pub events: u64,
    /// Detector state.
    pub detector: DetectorSnapshot,
}

/// One analysis session: a private detector fed one event stream.
pub struct AnalysisSession {
    tool: Arbalest,
    events: AtomicU64,
}

impl AnalysisSession {
    /// Open a session with its own detector state.
    pub fn new(cfg: ArbalestConfig) -> AnalysisSession {
        AnalysisSession { tool: Arbalest::new(cfg), events: AtomicU64::new(0) }
    }

    /// Open a session whose detector records metrics into `reg` (the
    /// server shares one registry across all sessions of a shard pool).
    pub fn with_registry(cfg: ArbalestConfig, reg: arbalest_obs::Registry) -> AnalysisSession {
        AnalysisSession { tool: Arbalest::with_registry(cfg, reg), events: AtomicU64::new(0) }
    }

    /// Feed one event, exactly as a live runtime would have delivered it.
    pub fn feed(&self, ev: &TraceEvent) {
        self.events.fetch_add(1, Relaxed);
        apply(ev, &self.tool);
    }

    /// Feed a batch in order.
    pub fn feed_batch(&self, events: &[TraceEvent]) {
        for ev in events {
            self.feed(ev);
        }
    }

    /// Events fed so far.
    pub fn events(&self) -> u64 {
        self.events.load(Relaxed)
    }

    /// Findings so far (the session stays usable).
    pub fn reports(&self) -> Vec<Report> {
        use arbalest_offload::events::Tool;
        self.tool.reports()
    }

    /// Detector side-table footprint in bytes.
    pub fn side_table_bytes(&self) -> u64 {
        use arbalest_offload::events::Tool;
        self.tool.side_table_bytes()
    }

    /// Shed detector side-table memory (shadow pages, race-access history,
    /// lookup cache), switching the session into May mode: VSM violations
    /// are suppressed from here on because the evicted state can no longer
    /// support a Must claim. Returns the approximate bytes freed. One-way.
    pub fn evict_to_may(&self) -> u64 {
        self.tool.evict_to_may()
    }

    /// Whether [`evict_to_may`](Self::evict_to_may) has run: the session
    /// survives under its memory budget but its findings are incomplete.
    pub fn degraded(&self) -> bool {
        self.tool.degraded()
    }

    /// Close the session, returning its findings and freeing all detector
    /// state.
    pub fn finish(self) -> Vec<Report> {
        self.reports()
    }

    /// Dump the session as plain data for a durable snapshot.
    pub fn to_snapshot(&self) -> SessionSnapshot {
        SessionSnapshot { events: self.events(), detector: self.tool.to_snapshot() }
    }

    /// Rebuild a session from a [`SessionSnapshot`], recording metrics
    /// into `reg`. Feeding the restored session the events recorded after
    /// the snapshot yields reports byte-identical to a session that was
    /// never interrupted.
    pub fn from_snapshot(
        snap: &SessionSnapshot,
        reg: arbalest_obs::Registry,
    ) -> Result<AnalysisSession, RestoreError> {
        Ok(AnalysisSession {
            tool: Arbalest::from_snapshot(&snap.detector, reg)?,
            events: AtomicU64::new(snap.events),
        })
    }
}

impl Default for AnalysisSession {
    fn default() -> Self {
        AnalysisSession::new(ArbalestConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::prelude::*;
    use arbalest_offload::trace::{replay, TraceRecorder};
    use std::sync::Arc;

    fn buggy_trace() -> Vec<TraceEvent> {
        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        let a = rt.alloc_init::<i64>("a", &[1; 8]);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1);
            });
        });
        let _ = rt.read(&a, 0);
        rec.take()
    }

    #[test]
    fn batched_feeding_matches_replay() {
        let trace = buggy_trace();
        let whole = Arbalest::new(ArbalestConfig::default());
        replay(&trace, &whole);

        let session = AnalysisSession::default();
        for chunk in trace.chunks(3) {
            session.feed_batch(chunk);
        }
        assert_eq!(session.events(), trace.len() as u64);
        use arbalest_offload::events::Tool;
        assert_eq!(session.finish(), whole.reports());
    }

    #[test]
    fn snapshot_mid_stream_resumes_byte_identical() {
        let trace = buggy_trace();
        let whole = AnalysisSession::default();
        whole.feed_batch(&trace);

        // Cut the stream at every prefix length: snapshot, restore, feed
        // the tail, and demand identical findings and state dumps.
        for cut in 0..=trace.len() {
            let first = AnalysisSession::default();
            first.feed_batch(&trace[..cut]);
            let snap = first.to_snapshot();
            let resumed =
                AnalysisSession::from_snapshot(&snap, arbalest_obs::Registry::new()).unwrap();
            assert_eq!(resumed.events(), cut as u64);
            assert_eq!(resumed.to_snapshot(), snap, "restore must round-trip at cut {cut}");
            resumed.feed_batch(&trace[cut..]);
            assert_eq!(resumed.to_snapshot(), whole.to_snapshot(), "state diverged at cut {cut}");
            assert_eq!(resumed.finish(), whole.reports(), "reports diverged at cut {cut}");
        }
    }

    #[test]
    fn snapshot_restore_rejects_inconsistent_race_flag() {
        use crate::detector::RestoreError;
        let session = AnalysisSession::default();
        let mut snap = session.to_snapshot();
        snap.detector.race = None; // check_races still true
        let err = AnalysisSession::from_snapshot(&snap, arbalest_obs::Registry::new());
        assert_eq!(err.err(), Some(RestoreError::RaceMismatch));
    }

    #[test]
    fn sessions_are_isolated() {
        let trace = buggy_trace();
        let buggy = AnalysisSession::default();
        let idle = AnalysisSession::default();
        buggy.feed_batch(&trace);
        assert!(!buggy.reports().is_empty());
        assert!(idle.finish().is_empty());
    }
}
