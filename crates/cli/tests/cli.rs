//! End-to-end tests of the `arbalest` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_arbalest"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_enumerates_suite() {
    let (ok, stdout, _) = run(&["list"]);
    assert!(ok);
    assert!(stdout.contains("DRACC_OMP_022"));
    assert!(stdout.contains("DRACC_OMP_056"));
    assert!(stdout.contains("postencil"));
    assert!(stdout.contains("554.pcg"));
}

#[test]
fn dracc_detects_seeded_bug() {
    let (ok, stdout, _) = run(&["dracc", "22", "--quiet"]);
    assert!(ok, "exit 0 when the bug is detected");
    assert!(stdout.contains("DETECTED"));
}

#[test]
fn dracc_reports_render_without_quiet() {
    let (_, stdout, _) = run(&["dracc", "26"]);
    assert!(stdout.contains("mapping-issue(USD)"));
    assert!(stdout.contains("Suggested fix"));
}

#[test]
fn baseline_miss_is_nonzero_exit() {
    let (ok, stdout, _) = run(&["dracc", "26", "--tool", "msan", "--quiet"]);
    assert!(!ok, "missed detection should fail the run");
    assert!(stdout.contains("missed"));
}

#[test]
fn multiple_tools_compare() {
    let (_, stdout, _) = run(&["dracc", "23", "--tool", "arbalest", "--tool", "asan", "--tool", "archer", "--quiet"]);
    assert!(stdout.matches("DETECTED").count() == 2, "{stdout}");
    assert!(stdout.contains("missed"));
}

#[test]
fn certify_partitions() {
    let (ok, stdout, _) = run(&["certify", "1"]);
    assert!(ok);
    assert!(stdout.contains("certified=true"));
    let (ok, stdout, _) = run(&["certify", "34"]);
    assert!(ok, "rejection of a buggy benchmark is the expected outcome");
    assert!(stdout.contains("certified=false"));
}

#[test]
fn spec_runs_with_preset() {
    let (ok, stdout, _) = run(&["spec", "pomriq", "--preset", "test", "--quiet"]);
    assert!(ok);
    assert!(stdout.contains("pomriq"));
    assert!(stdout.contains("checksum"));
}

#[test]
fn bad_usage_is_a_clean_error() {
    let (ok, _, stderr) = run(&["dracc", "22", "--tool", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown tool"));
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn unified_mode_changes_verdict() {
    // Benchmark 26's staleness disappears under unified memory (§III-B):
    // detection is "missed" because the issue genuinely does not occur.
    let (ok, stdout, _) = run(&["dracc", "26", "--unified", "--quiet"]);
    assert!(!ok, "no issue manifests under unified memory");
    assert!(stdout.contains("missed"));
}

#[test]
fn lint_flags_buggy_and_clears_correct() {
    let (ok, stdout, _) = run(&["lint", "22"]);
    assert!(ok);
    assert!(stdout.contains("ArbalestStatic"));
    assert!(stdout.contains("[must]"));
    assert!(stdout.contains("Suggested fix"));
    assert!(stdout.contains("FLAGGED"));

    let (ok, stdout, _) = run(&["lint", "1"]);
    assert!(ok);
    assert!(stdout.contains("clean"));
}

#[test]
fn lint_all_covers_dracc_and_spec() {
    let (ok, stdout, _) = run(&["lint", "all", "--quiet"]);
    assert!(ok, "every buggy model flagged, every correct one silent");
    assert_eq!(stdout.matches("FLAGGED").count(), 16, "{stdout}");
    assert_eq!(stdout.lines().count(), 61, "56 DRACC + 5 SPEC rows");
    assert!(stdout.contains("pcg"));
}

#[test]
fn lint_demotes_the_data_dependent_case_to_may() {
    // DRACC 050's input may or may not be initialised (§VI-G): the
    // static verdict stays `may`, everything else buggy draws a `must`.
    let (ok, stdout, _) = run(&["lint", "50", "--quiet"]);
    assert!(ok);
    assert!(stdout.contains(" 0 must,  1 may"), "{stdout}");
}

#[test]
fn json_reports_round_trip() {
    use arbalest_offload::json::Json;
    use arbalest_offload::report::Report;

    for args in [
        vec!["dracc", "26", "--format", "json"],
        vec!["lint", "24", "--format", "json"],
        vec!["spec", "pep", "--format", "json"],
    ] {
        let (_, stdout, _) = run(&args);
        let doc = Json::parse(&stdout).expect("valid JSON");
        let results = doc.get("results").and_then(Json::as_arr).expect("results");
        assert!(!results.is_empty());
        for entry in results {
            let key = if args[0] == "lint" { "diagnostics" } else { "reports" };
            for r in entry.get(key).and_then(Json::as_arr).expect(key) {
                let report = Report::from_json(r).expect("round-trips");
                assert_eq!(report.to_json(), *r);
                assert!(report.suggested_fix.is_some(), "every report carries a hint");
            }
        }
    }
}

#[test]
fn json_mode_emits_nothing_but_json() {
    let (ok, stdout, _) = run(&["dracc", "1", "--format", "json"]);
    assert!(ok);
    assert!(Json::parse_ok(&stdout));
}

use arbalest_offload::json::Json;

trait ParseOk {
    fn parse_ok(text: &str) -> bool;
}
impl ParseOk for Json {
    fn parse_ok(text: &str) -> bool {
        Json::parse(text).is_ok()
    }
}
