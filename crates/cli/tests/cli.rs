//! End-to-end tests of the `arbalest` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_arbalest"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_enumerates_suite() {
    let (ok, stdout, _) = run(&["list"]);
    assert!(ok);
    assert!(stdout.contains("DRACC_OMP_022"));
    assert!(stdout.contains("DRACC_OMP_056"));
    assert!(stdout.contains("postencil"));
    assert!(stdout.contains("554.pcg"));
}

#[test]
fn dracc_detects_seeded_bug() {
    let (ok, stdout, _) = run(&["dracc", "22", "--quiet"]);
    assert!(ok, "exit 0 when the bug is detected");
    assert!(stdout.contains("DETECTED"));
}

#[test]
fn dracc_reports_render_without_quiet() {
    let (_, stdout, _) = run(&["dracc", "26"]);
    assert!(stdout.contains("mapping-issue(USD)"));
    assert!(stdout.contains("Suggested fix"));
}

#[test]
fn baseline_miss_is_nonzero_exit() {
    let (ok, stdout, _) = run(&["dracc", "26", "--tool", "msan", "--quiet"]);
    assert!(!ok, "missed detection should fail the run");
    assert!(stdout.contains("missed"));
}

#[test]
fn multiple_tools_compare() {
    let (_, stdout, _) = run(&["dracc", "23", "--tool", "arbalest", "--tool", "asan", "--tool", "archer", "--quiet"]);
    assert!(stdout.matches("DETECTED").count() == 2, "{stdout}");
    assert!(stdout.contains("missed"));
}

#[test]
fn certify_partitions() {
    let (ok, stdout, _) = run(&["certify", "1"]);
    assert!(ok);
    assert!(stdout.contains("certified=true"));
    let (ok, stdout, _) = run(&["certify", "34"]);
    assert!(ok, "rejection of a buggy benchmark is the expected outcome");
    assert!(stdout.contains("certified=false"));
}

#[test]
fn spec_runs_with_preset() {
    let (ok, stdout, _) = run(&["spec", "pomriq", "--preset", "test", "--quiet"]);
    assert!(ok);
    assert!(stdout.contains("pomriq"));
    assert!(stdout.contains("checksum"));
}

#[test]
fn bad_usage_is_a_clean_error() {
    let (ok, _, stderr) = run(&["dracc", "22", "--tool", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown tool"));
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn unified_mode_changes_verdict() {
    // Benchmark 26's staleness disappears under unified memory (§III-B):
    // detection is "missed" because the issue genuinely does not occur.
    let (ok, stdout, _) = run(&["dracc", "26", "--unified", "--quiet"]);
    assert!(!ok, "no issue manifests under unified memory");
    assert!(stdout.contains("missed"));
}

#[test]
fn lint_flags_buggy_and_clears_correct() {
    let (ok, stdout, _) = run(&["lint", "22"]);
    assert!(ok);
    assert!(stdout.contains("ArbalestStatic"));
    assert!(stdout.contains("[must]"));
    assert!(stdout.contains("Suggested fix"));
    assert!(stdout.contains("FLAGGED"));

    let (ok, stdout, _) = run(&["lint", "1"]);
    assert!(ok);
    assert!(stdout.contains("clean"));
}

#[test]
fn lint_all_covers_dracc_and_spec() {
    let (ok, stdout, _) = run(&["lint", "all", "--quiet"]);
    assert!(ok, "every buggy model flagged, every correct one silent");
    assert_eq!(stdout.matches("FLAGGED").count(), 16, "{stdout}");
    assert_eq!(stdout.lines().count(), 61, "56 DRACC + 5 SPEC rows");
    assert!(stdout.contains("pcg"));
}

#[test]
fn lint_demotes_the_data_dependent_case_to_may() {
    // DRACC 050's input may or may not be initialised (§VI-G): the
    // static verdict stays `may`, everything else buggy draws a `must`.
    let (ok, stdout, _) = run(&["lint", "50", "--quiet"]);
    assert!(ok);
    assert!(stdout.contains(" 0 must,  1 may"), "{stdout}");
}

#[test]
fn json_reports_round_trip() {
    use arbalest_offload::json::Json;
    use arbalest_offload::report::Report;

    for args in [
        vec!["dracc", "26", "--format", "json"],
        vec!["lint", "24", "--format", "json"],
        vec!["spec", "pep", "--format", "json"],
    ] {
        let (_, stdout, _) = run(&args);
        let doc = Json::parse(&stdout).expect("valid JSON");
        let results = doc.get("results").and_then(Json::as_arr).expect("results");
        assert!(!results.is_empty());
        for entry in results {
            let key = if args[0] == "lint" { "diagnostics" } else { "reports" };
            for r in entry.get(key).and_then(Json::as_arr).expect(key) {
                let report = Report::from_json(r).expect("round-trips");
                assert_eq!(report.to_json(), *r);
                assert!(report.suggested_fix.is_some(), "every report carries a hint");
            }
        }
    }
}

#[test]
fn json_mode_emits_nothing_but_json() {
    let (ok, stdout, _) = run(&["dracc", "1", "--format", "json"]);
    assert!(ok);
    assert!(Json::parse_ok(&stdout));
}

use arbalest_offload::json::Json;

trait ParseOk {
    fn parse_ok(text: &str) -> bool;
}
impl ParseOk for Json {
    fn parse_ok(text: &str) -> bool {
        Json::parse(text).is_ok()
    }
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("arbalest-cli-{tag}-{}", std::process::id()))
}

#[test]
fn explain_reconstructs_the_must_class_vsm_path() {
    // DRACC 22 (UUM, statically a `must`): the chain has to walk the
    // stable VSM vocabulary from the host write that never mapped over,
    // through the alloc, to the faulting target read — and the rendered
    // report (with its §III-C hint) must still lead the output.
    let (ok, stdout, _) = run(&["explain", "22"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("mapping-issue(UUM)"));
    assert!(stdout.contains("Suggested fix"));
    assert!(stdout.contains("causal VSM history"));
    assert!(stdout.contains("write_host"), "{stdout}");
    assert!(stdout.contains("invalid -> host"), "{stdout}");
    assert!(stdout.contains("read_target"), "{stdout}");
    // The last edge is the faulting access itself, at the report's line.
    assert!(stdout.contains("buggy.rs:158"), "{stdout}");
}

#[test]
fn explain_reconstructs_the_may_class_vsm_path() {
    // DRACC 50 (statically demoted to `may`, §VI-G): dynamically the
    // uninitialised input is real, and the chain shows why — the buffer
    // never left `invalid` before the target read.
    let (ok, stdout, _) = run(&["explain", "50"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("mapping-issue(UUM)"));
    assert!(stdout.contains("causal VSM history"));
    assert!(stdout.contains("read_target"), "{stdout}");
    assert!(stdout.contains("invalid -> invalid"), "{stdout}");
}

#[test]
fn explain_json_carries_the_provenance_chain() {
    let (ok, stdout, _) = run(&["explain", "22", "--report", "0", "--format", "json"]);
    assert!(ok);
    let doc = Json::parse(&stdout).expect("valid JSON");
    let reports = doc.get("reports").and_then(Json::as_arr).expect("reports");
    assert_eq!(reports.len(), 1);
    let chain = reports[0].get("provenance").and_then(Json::as_arr).expect("provenance");
    assert!(!chain.is_empty());
    for step in chain {
        for key in ["op", "from", "to"] {
            assert!(step.get(key).and_then(Json::as_str).is_some(), "step missing {key}");
        }
    }
}

#[test]
fn explain_rejects_an_out_of_range_report_index() {
    let (ok, _, stderr) = run(&["explain", "22", "--report", "99"]);
    assert!(!ok);
    assert!(stderr.contains("out of range"), "{stderr}");
}

#[test]
fn check_prom_gates_exposition_conformance() {
    let good = temp_path("prom-good");
    std::fs::write(
        &good,
        "# HELP demo_total a demo counter\n# TYPE demo_total counter\ndemo_total 3\n",
    )
    .unwrap();
    let (ok, stdout, _) = run(&["check-prom", good.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("OK"), "{stdout}");

    // A sample with no preceding TYPE line is a conformance violation.
    let bad = temp_path("prom-bad");
    std::fs::write(&bad, "orphan_total 1\n").unwrap();
    let (ok, _, stderr) = run(&["check-prom", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("INVALID"), "{stderr}");
    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(bad);
}

#[test]
fn check_trace_accepts_real_spans_and_rejects_malformed_files() {
    // A genuine trace document out of the flight recorder must pass.
    let reg = arbalest_obs::Registry::new();
    {
        let parent = reg.span(reg.span_name("outer"));
        let _child = reg.span_child(reg.span_name("inner"), parent.context());
    }
    let spans = reg.drain_spans();
    assert!(!spans.is_empty());
    let good = temp_path("trace-good.json");
    std::fs::write(&good, arbalest_obs::chrome_trace_json(&spans)).unwrap();
    let (ok, stdout, _) = run(&["check-trace", good.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("perfetto trace OK"), "{stdout}");

    // No slices at all, and outright non-JSON, must both fail typed.
    let empty = temp_path("trace-empty.json");
    std::fs::write(&empty, "{\"traceEvents\":[]}").unwrap();
    let (ok, _, stderr) = run(&["check-trace", empty.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("INVALID"), "{stderr}");

    let junk = temp_path("trace-junk.json");
    std::fs::write(&junk, "not json at all").unwrap();
    let (ok, _, stderr) = run(&["check-trace", junk.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("not JSON"), "{stderr}");
    for f in [good, empty, junk] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn fix_repairs_a_convicted_model_and_shows_the_diff() {
    let (ok, stdout, _) = run(&["fix", "22"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("REPAIRED (1 edit"), "{stdout}");
    assert!(stdout.contains("-target map(to: a) map(alloc: b)"), "{stdout}");
    assert!(stdout.contains("+target map(to: a) map(to: b)"), "{stdout}");
}

#[test]
fn fix_leaves_clean_and_may_only_models_alone() {
    // The qualified target form pins the namespace (README transcript).
    let (ok, stdout, _) = run(&["fix", "dracc/21"]);
    assert!(ok);
    assert!(stdout.contains("clean"), "{stdout}");
    // DRACC 50 is statically `may`-only (§VI-G): no invented repair.
    let (ok, stdout, _) = run(&["fix", "50"]);
    assert!(ok);
    assert!(stdout.contains(" 0 must,  1 may  clean"), "{stdout}");
}

#[test]
fn fix_all_repairs_every_must_buggy_model() {
    let (ok, stdout, _) = run(&["fix", "all", "--quiet"]);
    assert!(ok, "every Must conviction must get a verified repair\n{stdout}");
    assert_eq!(stdout.matches("REPAIRED").count(), 15, "{stdout}");
    assert!(!stdout.contains("UNREPAIRED"), "{stdout}");
    assert_eq!(stdout.lines().count(), 61, "56 DRACC + 5 SPEC rows");
}

#[test]
fn fix_json_carries_patch_and_apply_check_verdict() {
    let (ok, stdout, _) = run(&["fix", "33", "--format", "json", "--apply-check"]);
    assert!(ok);
    let doc = Json::parse(&stdout).expect("valid JSON");
    assert_eq!(doc.get("command").and_then(Json::as_str), Some("fix"));
    let results = doc.get("results").and_then(Json::as_arr).expect("results");
    assert_eq!(results.len(), 1);
    let r = &results[0];
    assert_eq!(r.get("repaired").and_then(Json::as_bool), Some(true));
    let edits = r.get("patch").and_then(|p| p.get("edits")).and_then(Json::as_arr).expect("edits");
    assert_eq!(edits.len(), 1);
    assert!(edits[0].get("op").and_then(Json::as_str).is_some());
    assert!(edits[0].get("describe").and_then(Json::as_str).is_some());
    // `--apply-check` embeds the same verdict shape fuzz-lint emits.
    let verdict = r.get("verdict").expect("verdict present under --apply-check");
    assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(verdict.get("static_must").and_then(Json::as_u64), Some(0));
}

#[test]
fn optimize_sheds_redundant_transfers_with_parity() {
    let (ok, stdout, _) = run(&["optimize", "spec/pep", "--apply-check"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("saved"), "{stdout}");
    assert!(stdout.contains("[apply-check: verified]"), "{stdout}");
    assert!(stdout.contains("map(alloc: counts)"), "{stdout}");
}

#[test]
fn optimize_json_reports_totals() {
    let (ok, stdout, _) = run(&["optimize", "pep", "--format", "json"]);
    assert!(ok);
    let doc = Json::parse(&stdout).expect("valid JSON");
    assert_eq!(doc.get("command").and_then(Json::as_str), Some("optimize"));
    let saved = doc.get("saved").and_then(Json::as_u64).expect("saved");
    assert!(saved > 0, "{stdout}");
    let results = doc.get("results").and_then(Json::as_arr).expect("results");
    assert!(results[0].get("patch").and_then(|p| p.get("edits")).is_some());
}

#[test]
fn fuzz_lint_json_carries_precision_and_per_case_verdicts() {
    let (ok, stdout, _) = run(&["fuzz-lint", "--seeds", "4", "--format", "json"]);
    assert!(ok);
    let doc = Json::parse(&stdout).expect("valid JSON");
    assert!(doc.get("precision").is_some(), "precision ratio in the document");
    let verdicts = doc.get("verdicts").and_then(Json::as_arr).expect("verdicts");
    // 4 generated seeds + all 56 DRACC models, one verdict each.
    assert_eq!(verdicts.len(), 60, "{stdout}");
    for v in verdicts {
        assert!(v.get("name").and_then(Json::as_str).is_some());
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }
}

#[test]
fn profile_json_is_machine_readable() {
    let (ok, stdout, _) = run(&["profile", "22", "--format", "json"]);
    assert!(ok);
    let doc = Json::parse(&stdout).expect("valid JSON");
    assert_eq!(doc.get("command").and_then(Json::as_str), Some("profile"));
    assert!(doc.get("metrics").is_some(), "metrics document embedded");
    assert!(doc.get("spans").and_then(Json::as_arr).is_some(), "span list embedded");
}
