//! `arbalest` — command-line front end for the reproduction.
//!
//! ```text
//! arbalest list                          enumerate benchmarks & workloads
//! arbalest dracc <id|all> [options]      run DRACC benchmark(s)
//! arbalest spec <name|all> [options]     run a SPEC-like workload
//! arbalest fix <id|name|all>             synthesize verified mapping repairs
//! arbalest optimize <id|name|all>        minimize transfers, proving parity
//! arbalest certify <id|all>              Theorem-1 certification of DRACC
//! arbalest profile <id|all>              run DRACC under the detector and
//!                                        print a hot-path profile
//! arbalest explain <id> [--report N]     re-run with VSM provenance capture
//!                                        and print each report's causal chain
//! arbalest check-prom [file]             validate Prometheus text exposition
//! arbalest check-trace <file>            validate a Perfetto trace file
//! arbalest serve [options]               long-lived analysis service
//! arbalest submit <trace|id> [options]   analyse a trace on a server
//! arbalest record <id> -o <file>         capture a DRACC trace to a file
//! arbalest stats [options]               query server counters
//! arbalest stop [options]                drain and stop a server
//! arbalest store inspect <data-dir>      describe a durable data directory
//! arbalest store compact <data-dir>      prune covered WAL segments
//!
//! options:
//!   --tool arbalest|memcheck|archer|asan|msan   (repeatable; default arbalest)
//!   --preset test|small|medium                  (spec only; default test)
//!   --unified          unified-memory mode (§III-B)
//!   --serialize        Theorem-1 serialized nowait execution
//!   --team <n>         kernel team size (default 4)
//!   --quiet            suppress rendered reports
//!   --faults seed=N,rate=P   deterministic fault injection (rate in [0,1])
//! ```

use arbalest_baselines::{AddressSanitizer, Archer, Memcheck, MemorySanitizer};
use arbalest_core::{certify, Arbalest, ArbalestConfig};
use arbalest_obs::{Registry, SpanEvent};
use arbalest_offload::json::{metrics_json, span_json, Json};
use arbalest_offload::prelude::*;
use arbalest_offload::trace::{TraceEvent, TraceRecorder};
use arbalest_offload::wire;
use arbalest_server::{Client, ListenAddr, Server, ServerConfig};
use arbalest_spec::Preset;
use arbalest_static::{analyze, Severity};
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

struct Options {
    tools: Vec<String>,
    preset: Preset,
    unified: bool,
    serialize: bool,
    team: usize,
    quiet: bool,
    format: OutputFormat,
    faults: FaultConfig,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    no_metrics: bool,
    deny: Option<Severity>,
    seeds: u64,
    /// explain: which report of the case to explain (default: all).
    report: Option<usize>,
    /// fix/optimize: re-run both oracles on the patched program and
    /// include the differential verdict in the output.
    apply_check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            tools: Vec::new(),
            preset: Preset::Test,
            unified: false,
            serialize: false,
            team: 4,
            quiet: false,
            format: OutputFormat::Text,
            faults: FaultConfig::disabled(),
            metrics_out: None,
            trace_out: None,
            no_metrics: false,
            deny: None,
            seeds: 64,
            report: None,
            apply_check: false,
        }
    }
}

/// Parse `seed=N,rate=P` (either key optional, any order) for `--faults`.
fn parse_faults(spec: &str) -> Result<FaultConfig, String> {
    let mut seed = 0u64;
    let mut rate = 0.0f64;
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        match part.split_once('=') {
            Some(("seed", v)) => {
                seed = v.parse().map_err(|_| format!("bad fault seed '{v}'"))?;
            }
            Some(("rate", v)) => {
                rate = v.parse().map_err(|_| format!("bad fault rate '{v}'"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("fault rate {rate} outside [0, 1]"));
                }
            }
            _ => return Err(format!("bad --faults component '{part}' (want seed=N,rate=P)")),
        }
    }
    Ok(FaultConfig::new(seed, rate))
}

fn usage() -> ExitCode {
    eprint!("{}", USAGE);
    ExitCode::from(2)
}

const USAGE: &str = "\
usage: arbalest <command> [options]
  list                       enumerate DRACC benchmarks and SPEC workloads
  dracc <id|all>             run DRACC benchmark(s) under the chosen tools
  spec <name|all>            run SPEC-like workload(s)
  lint <id|name|all>         static data-mapping analysis of a benchmark's
                             IR model (no execution)
  fuzz-lint                  differential soundness gate: generated
                             programs (--seeds) plus all DRACC IR models
                             run under both the static analyzer and the
                             dynamic detector; checks Must ⊆ dynamic and
                             dynamic ⊆ May, prints the precision ratio
  fix <id|name|all>          synthesize a verified mapping repair for each
                             statically convicted model: candidate patches
                             over the IR are ranked by size then modeled
                             transfer bytes and accepted only when both
                             the static re-check and the dynamic detector
                             come back clean (prints a unified IR diff)
  optimize <id|name|all>     delete or narrow provably redundant transfers
                             (tofrom -> to, dead updates, oversized
                             sections) while proving byte-identical
                             diagnostics before and after
  certify <id|all>           Theorem-1 certification of DRACC benchmark(s)
  profile <id|all>           run DRACC benchmark(s) under the arbalest
                             detector and print a hot-path profile
                             (--format json for a machine-readable one)
  explain <id>               re-run a DRACC benchmark with VSM provenance
                             capture and print, for each report, the causal
                             chain of validity-state edges that led to it
  check-prom [file]          validate Prometheus text exposition from a
                             file or stdin (conformance gate for scrapes)
  check-trace <file>         validate a Chrome/Perfetto trace file written
                             by serve --trace-dir (well-formedness gate)
  serve                      run the analysis service (see --listen, --shards)
  submit <trace-file|id>     stream a trace (or a DRACC benchmark's trace)
                             to a server and print its reports
  record <id> -o <file>      capture a DRACC benchmark's trace to a file
  stats                      print a server's counters
                             (--format prom for Prometheus text)
  stop                       drain and stop a server
  store inspect <data-dir>   describe a durable data directory: sessions,
                             WAL segments, snapshots, torn/corrupt tails
  store compact <data-dir>   prune WAL segments covered by each session's
                             newest snapshot
options:
  --listen <addr>            serve: bind address (host:port or unix:<path>;
                             default unix:/tmp/arbalest.sock)
  --connect <addr>           submit/stats/stop: server address
                             (default unix:/tmp/arbalest.sock)
  --shards <n>               serve: analysis worker threads (default 4)
  --queue-cap <n>            serve: per-shard queue bound (default 128)
  --max-session-bytes <n>    serve: per-session memory budget, K/M/G suffix
                             ok (default 0 = unlimited); over budget a
                             session degrades, then fails typed
  --max-inflight <n>         serve: per-session queued-event cap
                             (default 0 = unlimited; beyond it: Busy)
  --max-frame <n>            serve: frame-size ceiling, K/M/G suffix ok
                             (default 32M)
  --idle-timeout <secs>      serve: reap connections idle this long
                             (default 120)
  --request-deadline <secs>  serve: a started frame must complete within
                             this (default 30)
  --drain-deadline <secs>    serve: shutdown waits this long for in-flight
                             connections (default 10)
  --data-dir <dir>           serve: write-ahead log every accepted batch
                             under <dir>, recover unfinished sessions at
                             startup (default: no durability)
  --trace-dir <dir>          serve: write each cleanly finished *traced*
                             session's span tree to <dir>/session-<id>.json
                             (Chrome/Perfetto JSON; untraced sessions write
                             nothing)
  --trace                    submit: stamp every batch with a fresh root
                             span context so the server records the causal
                             tree (client_submit -> wal_append/shard_job)
  --snapshot-every-bytes <n> serve: snapshot+compact a session after this
                             many WAL bytes, K/M/G ok (default 0 = off)
  --snapshot-every-events <n> serve: snapshot+compact after this many
                             events (default 0 = off)
  --fsync-policy <p>         serve: always | group[=bytes] | never
                             (default group=262144)
  --deadline <secs>          submit: total per-operation client deadline
                             (default none)
  --chunk <n>                submit: events per frame (default 1024)
  --resume <id>              submit: reattach to a durable session and
                             stream only the events past its recovered
                             count
  --take <n>                 submit: stream only the first n events
  --no-finish                submit: leave the session open (crash drills
                             resume it with --resume)
  -o <file>                  record: output trace file
  --tool <name>              arbalest|memcheck|archer|asan|msan (repeatable)
  --preset <p>               test|small|medium (spec only)
  --unified                  unified-memory mode
  --serialize                serialize nowait kernels (analysis schedule)
  --team <n>                 kernel team size
  --quiet                    summary only, no rendered reports
  --format text|json         report format for dracc/spec/lint/profile/
                             explain (default text); for stats: text|prom
  --report <n>               explain: explain only the n-th report
                             (0-based; default: all reports of the case)
  --faults seed=N,rate=P     deterministic fault injection (rate in [0,1])
  --deny may|must            lint: exit 3 when any diagnostic at or above
                             the given severity exists (may denies all)
  --seeds <n>                fuzz-lint: number of generated programs
                             (default 64)
  --apply-check              fix/optimize: independently re-run the
                             differential oracle (static + dynamic) on
                             each patched program and report its verdict
  --metrics-out <file>       dracc/spec/profile: write the metrics registry
                             as JSON after the run
  --trace-out <file>         dracc/spec/profile: write captured span events
                             as JSON lines after the run
  --no-metrics               dracc/spec: run with instrumentation disabled
";

fn make_tool(name: &str) -> Option<Arc<dyn Tool>> {
    Some(match name {
        "arbalest" => Arc::new(Arbalest::new(ArbalestConfig::default())),
        "memcheck" | "valgrind" => Arc::new(Memcheck::new()),
        "archer" => Arc::new(Archer::new()),
        "asan" => Arc::new(AddressSanitizer::new()),
        "msan" => Arc::new(MemorySanitizer::new()),
        _ => return None,
    })
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tool" => {
                let v = it.next().ok_or("--tool needs a value")?;
                if make_tool(v).is_none() {
                    return Err(format!("unknown tool '{v}'"));
                }
                opts.tools.push(v.clone());
            }
            "--preset" => {
                opts.preset = match it.next().map(String::as_str) {
                    Some("test") => Preset::Test,
                    Some("small") => Preset::Small,
                    Some("medium") => Preset::Medium,
                    other => return Err(format!("bad --preset {other:?}")),
                };
            }
            "--unified" => opts.unified = true,
            "--serialize" => opts.serialize = true,
            "--team" => {
                opts.team = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--team needs a number")?;
            }
            "--quiet" => opts.quiet = true,
            "--format" => {
                opts.format = match it.next().map(String::as_str) {
                    Some("text") => OutputFormat::Text,
                    Some("json") => OutputFormat::Json,
                    other => return Err(format!("bad --format {other:?} (want text|json)")),
                };
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs seed=N,rate=P")?;
                opts.faults = parse_faults(v)?;
            }
            "--metrics-out" => {
                opts.metrics_out = Some(it.next().ok_or("--metrics-out needs a file path")?.clone());
            }
            "--trace-out" => {
                opts.trace_out = Some(it.next().ok_or("--trace-out needs a file path")?.clone());
            }
            "--no-metrics" => opts.no_metrics = true,
            "--deny" => {
                opts.deny = match it.next().map(String::as_str) {
                    Some("may") => Some(Severity::May),
                    Some("must") => Some(Severity::Must),
                    other => return Err(format!("bad --deny {other:?} (want may|must)")),
                };
            }
            "--seeds" => {
                opts.seeds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seeds needs a number")?;
            }
            "--report" => {
                opts.report = Some(
                    it.next().and_then(|s| s.parse().ok()).ok_or("--report needs an index")?,
                );
            }
            "--apply-check" => opts.apply_check = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if opts.tools.is_empty() {
        opts.tools.push("arbalest".to_string());
    }
    if opts.no_metrics && (opts.metrics_out.is_some() || opts.trace_out.is_some()) {
        return Err("--no-metrics conflicts with --metrics-out/--trace-out".into());
    }
    Ok(opts)
}

fn runtime_for(opts: &Options, tool: &str, reg: &Registry) -> Runtime {
    let cfg = Config::default()
        .team_size(opts.team)
        .unified(opts.unified)
        .serialize(opts.serialize)
        .fault_config(opts.faults)
        .metrics(reg.clone());
    // The arbalest detector shares the command's registry so its VSM and
    // cache metrics land next to the runtime's; baselines have no metrics.
    let tool: Arc<dyn Tool> = if tool == "arbalest" {
        Arc::new(Arbalest::with_registry(ArbalestConfig::default(), reg.clone()))
    } else {
        make_tool(tool).expect("validated")
    };
    Runtime::with_tool(cfg, tool)
}

/// The registry a run-style command records into: enabled by default,
/// inert under `--no-metrics`.
fn registry_for(opts: &Options) -> Registry {
    if opts.no_metrics {
        Registry::disabled()
    } else {
        Registry::new()
    }
}

/// Honour `--metrics-out` (registry snapshot as one JSON document) and
/// `--trace-out` (one span event per line, JSONL). `spans` must be the
/// events already drained from `reg`'s flight recorder.
fn write_observability(
    reg: &Registry,
    spans: &[SpanEvent],
    opts: &Options,
) -> Result<(), String> {
    if let Some(path) = &opts.metrics_out {
        let doc = metrics_json(&reg.snapshot());
        std::fs::write(path, doc.emit() + "\n").map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = &opts.trace_out {
        let mut out = String::new();
        for e in spans {
            out.push_str(&span_json(e).emit());
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| format!("write {path}: {e}"))?;
        let dropped = reg.dropped_spans();
        if dropped > 0 {
            eprintln!(
                "warning: flight recorder overwrote {dropped} span(s) during the run; \
                 {path} is incomplete (counted in arbalest_obs_dropped_spans_total)"
            );
        }
    }
    Ok(())
}

fn print_reports(rt: &Runtime, quiet: bool) -> usize {
    let reports = rt.reports();
    if !quiet {
        for r in &reports {
            print!("{}", r.render());
        }
    }
    reports.len()
}

fn cmd_list() -> ExitCode {
    println!("DRACC-like benchmarks:");
    for b in arbalest_dracc::all() {
        let effect = b.expected.map(|e| format!("{e}")).unwrap_or_else(|| "ok".into());
        println!("  {:<14} {:<6} {:<30} {}", b.dracc_id(), effect, b.name, b.description);
    }
    println!("\nSPEC-ACCEL-like workloads:");
    for w in arbalest_spec::workloads() {
        println!("  {:<12} ({})", w.name, w.spec_id);
    }
    ExitCode::SUCCESS
}

fn cmd_dracc(target: &str, opts: &Options) -> ExitCode {
    let benches: Vec<_> = if target == "all" {
        arbalest_dracc::all()
    } else {
        match target.parse::<u32>().ok().and_then(arbalest_dracc::by_id) {
            Some(b) => vec![b],
            None => {
                eprintln!("unknown benchmark id '{target}'");
                return ExitCode::from(2);
            }
        }
    };
    let reg = registry_for(opts);
    let mut missed = 0usize;
    let mut results = Vec::new();
    for b in &benches {
        for tool in &opts.tools {
            let rt = runtime_for(opts, tool, &reg);
            b.run(&rt);
            let reports = rt.reports();
            let verdict = match b.expected {
                Some(e) => {
                    let hit = reports.iter().any(|r| r.kind.credits_effect(e));
                    if !hit {
                        missed += 1;
                    }
                    if hit { "DETECTED" } else { "missed" }
                }
                None => {
                    if !reports.is_empty() {
                        missed += 1;
                        "FALSE POSITIVE"
                    } else {
                        "clean"
                    }
                }
            };
            if opts.format == OutputFormat::Json {
                results.push(Json::obj(vec![
                    ("benchmark", Json::Str(b.dracc_id())),
                    ("tool", Json::Str(tool.clone())),
                    ("verdict", Json::Str(verdict.to_string())),
                    ("reports", Json::Arr(reports.iter().map(|r| r.to_json()).collect())),
                ]));
            } else {
                let n = print_reports(&rt, opts.quiet);
                println!("{:<14} {:<10} {:>3} report(s)  {}", b.dracc_id(), tool, n, verdict);
            }
        }
    }
    if opts.format == OutputFormat::Json {
        let doc = Json::obj(vec![
            ("command", Json::Str("dracc".into())),
            ("results", Json::Arr(results)),
        ]);
        println!("{}", doc.emit());
    }
    if let Err(e) = write_observability(&reg, &reg.drain_spans(), opts) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if missed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_spec(target: &str, opts: &Options) -> ExitCode {
    let workloads: Vec<_> = if target == "all" {
        arbalest_spec::workloads()
    } else {
        match arbalest_spec::by_name(target) {
            Some(w) => vec![w],
            None => {
                eprintln!("unknown workload '{target}'");
                return ExitCode::from(2);
            }
        }
    };
    let reg = registry_for(opts);
    let mut results = Vec::new();
    for w in &workloads {
        for tool in &opts.tools {
            let rt = runtime_for(opts, tool, &reg);
            let start = std::time::Instant::now();
            let sum = (w.run)(&rt, opts.preset);
            let wall = start.elapsed();
            if opts.format == OutputFormat::Json {
                let reports = rt.reports();
                results.push(Json::obj(vec![
                    ("workload", Json::Str(w.name.to_string())),
                    ("tool", Json::Str(tool.clone())),
                    ("checksum", Json::Num(sum)),
                    ("seconds", Json::Num(wall.as_secs_f64())),
                    ("reports", Json::Arr(reports.iter().map(|r| r.to_json()).collect())),
                ]));
            } else {
                let n = print_reports(&rt, opts.quiet);
                println!(
                    "{:<12} {:<10} {:>8.3}s  checksum {:>14.6}  {} report(s)",
                    w.name,
                    tool,
                    wall.as_secs_f64(),
                    sum,
                    n
                );
            }
        }
    }
    if opts.format == OutputFormat::Json {
        let doc = Json::obj(vec![
            ("command", Json::Str("spec".into())),
            ("results", Json::Arr(results)),
        ]);
        println!("{}", doc.emit());
    }
    if let Err(e) = write_observability(&reg, &reg.drain_spans(), opts) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One program to lint, with the ground-truth expectation for the exit
/// code: buggy DRACC models must draw at least one diagnostic, correct
/// ones (and the SPEC workloads) must stay silent.
struct LintItem {
    program: arbalest_ir::Program,
    bug_expected: bool,
}

fn lint_items(target: &str, opts: &Options) -> Result<Vec<LintItem>, String> {
    let dracc_item = |b: &arbalest_dracc::Benchmark| LintItem {
        program: arbalest_dracc::ir_models::ir_model(b.id).expect("model for every id"),
        bug_expected: b.expected.is_some(),
    };
    let spec_item = |name: &str| {
        arbalest_spec::ir_models::ir_model(name, opts.preset)
            .map(|program| LintItem { program, bug_expected: false })
    };
    if target == "all" {
        let mut items: Vec<LintItem> =
            arbalest_dracc::all().iter().map(dracc_item).collect();
        items.extend(
            arbalest_spec::workloads()
                .iter()
                .map(|w| spec_item(w.name).expect("model for every workload")),
        );
        return Ok(items);
    }
    // Qualified forms pin the namespace: `dracc/21`, `spec/pep`.
    if let Some(rest) = target.strip_prefix("dracc/") {
        return rest
            .parse::<u32>()
            .ok()
            .and_then(arbalest_dracc::by_id)
            .map(|b| vec![dracc_item(&b)])
            .ok_or_else(|| format!("'{rest}' is not a DRACC benchmark id"));
    }
    if let Some(rest) = target.strip_prefix("spec/") {
        return spec_item(rest)
            .map(|item| vec![item])
            .ok_or_else(|| format!("'{rest}' is not a SPEC workload name"));
    }
    if let Some(b) = target.parse::<u32>().ok().and_then(arbalest_dracc::by_id) {
        return Ok(vec![dracc_item(&b)]);
    }
    if let Some(item) = spec_item(target) {
        return Ok(vec![item]);
    }
    Err(format!("'{target}' is neither a DRACC benchmark id nor a workload name"))
}

fn cmd_lint(target: &str, opts: &Options) -> ExitCode {
    let items = match lint_items(target, opts) {
        Ok(items) => items,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut wrong = 0usize;
    let mut results = Vec::new();
    let (mut total_must, mut total_may) = (0usize, 0usize);
    for item in &items {
        let diags = analyze(&item.program);
        let must = diags.iter().filter(|d| d.severity == Severity::Must).count();
        let may = diags.len() - must;
        total_must += must;
        total_may += may;
        // A correct program must draw nothing; a seeded bug must draw at
        // least one diagnostic (the data-dependent cases only a `may`).
        let ok = if item.bug_expected { !diags.is_empty() } else { diags.is_empty() };
        if !ok {
            wrong += 1;
        }
        if opts.format == OutputFormat::Json {
            results.push(Json::obj(vec![
                ("program", Json::Str(item.program.name.clone())),
                ("bug_expected", Json::Bool(item.bug_expected)),
                ("must", Json::int(must as u64)),
                ("may", Json::int(may as u64)),
                (
                    "diagnostics",
                    Json::Arr(diags.iter().map(|d| d.to_report().to_json()).collect()),
                ),
            ]));
        } else {
            if !opts.quiet {
                for d in &diags {
                    print!("{}", d.to_report().render());
                }
            }
            let verdict = match (item.bug_expected, diags.is_empty()) {
                (true, false) => "FLAGGED",
                (true, true) => "missed",
                (false, true) => "clean",
                (false, false) => "FALSE POSITIVE",
            };
            println!(
                "{:<14} {:>2} must, {:>2} may  {}",
                item.program.name, must, may, verdict
            );
        }
    }
    if opts.format == OutputFormat::Json {
        let doc = Json::obj(vec![
            ("command", Json::Str("lint".into())),
            ("results", Json::Arr(results)),
        ]);
        println!("{}", doc.emit());
    }
    if wrong != 0 {
        return ExitCode::FAILURE;
    }
    // Exit-code policy: `--deny must` fails the run on any must-level
    // diagnostic, `--deny may` on any diagnostic at all (exit 3), so CI
    // can gate on "no findings" regardless of the expectation check.
    let denied = match opts.deny {
        Some(Severity::Must) => total_must > 0,
        Some(Severity::May) => total_must + total_may > 0,
        None => false,
    };
    if denied {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// `arbalest fuzz-lint`: the differential soundness gate. Generated
/// programs (`--seeds`) and all 56 DRACC IR models run through both the
/// static analyzer and the dynamic detector; every static `Must` needs a
/// dynamic confirmation and every dynamic report a static anticipation.
fn cmd_fuzz_lint(opts: &Options) -> ExitCode {
    use arbalest_static::differential::{check_program, check_seed, FuzzSummary};
    let mut cases = Vec::new();
    for seed in 0..opts.seeds {
        cases.push(check_seed(seed));
    }
    for b in arbalest_dracc::all() {
        let model = arbalest_dracc::ir_models::ir_model(b.id).expect("model for every id");
        cases.push(check_program(&b.dracc_id(), &model, &arbalest_ir::Binding::new()));
    }
    let mut summary = FuzzSummary::default();
    for c in &cases {
        summary.absorb(c);
    }
    if opts.format == OutputFormat::Json {
        let doc = Json::obj(vec![
            ("command", Json::Str("fuzz-lint".into())),
            ("seeds", Json::int(opts.seeds)),
            ("cases", Json::int(summary.cases as u64)),
            ("static_must", Json::int(summary.static_must as u64)),
            ("static_may", Json::int(summary.static_may as u64)),
            ("dynamic", Json::int(summary.dynamic as u64)),
            ("confirmed", Json::int(summary.confirmed as u64)),
            ("precision", Json::Num(summary.precision())),
            ("verdicts", Json::Arr(cases.iter().map(case_json).collect())),
            (
                "violations",
                Json::Arr(summary.violations.iter().map(|v| Json::Str(v.clone())).collect()),
            ),
        ]);
        println!("{}", doc.emit());
    } else {
        if !opts.quiet {
            for v in &summary.violations {
                println!("VIOLATION {v}");
            }
        }
        println!(
            "fuzz-lint: {} cases ({} seeds + DRACC), {} must / {} may static, \
             {} dynamic, {} confirmed, precision {:.2}: {}",
            summary.cases,
            opts.seeds,
            summary.static_must,
            summary.static_may,
            summary.dynamic,
            summary.confirmed,
            summary.precision(),
            if summary.ok() { "PASS" } else { "FAIL" },
        );
    }
    if summary.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One differential verdict as JSON — shared between `fuzz-lint
/// --format json` (the per-case `verdicts` array) and the `fix
/// --apply-check` re-verification of each patched program.
fn case_json(c: &arbalest_static::differential::CaseOutcome) -> Json {
    Json::obj(vec![
        ("name", Json::Str(c.name.clone())),
        ("static_must", Json::int(c.static_must as u64)),
        ("static_may", Json::int(c.static_may as u64)),
        ("dynamic", Json::int(c.dynamic as u64)),
        ("confirmed", Json::int(c.confirmed as u64)),
        ("ok", Json::Bool(c.ok())),
        (
            "violations",
            Json::Arr(c.violations.iter().map(|v| Json::Str(v.clone())).collect()),
        ),
    ])
}

/// `arbalest fix`: synthesize a verified mapping repair for every
/// statically convicted model in the target set. A program counts as a
/// failure when the analyzer convicts it at `Must` but no candidate
/// patch clears both oracles, or when `--apply-check` re-verification
/// of an accepted patch disagrees.
fn cmd_fix(target: &str, opts: &Options) -> ExitCode {
    use arbalest_static::repair::synthesize_fix;
    let items = match lint_items(target, opts) {
        Ok(items) => items,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let binding = arbalest_ir::Binding::new();
    let mut wrong = 0usize;
    let mut results = Vec::new();
    for item in &items {
        let out = synthesize_fix(&item.program.name, &item.program, &binding);
        // `--apply-check`: re-run the full differential oracle on the
        // patched program, independently of the synthesis loop's own
        // acceptance test.
        let verdict = if opts.apply_check {
            let checked = out.patched.as_ref().unwrap_or(&item.program);
            Some(arbalest_static::differential::check_program(&out.name, checked, &binding))
        } else {
            None
        };
        let verified = verdict.as_ref().map(|v| v.ok());
        if !out.ok() || verified == Some(false) {
            wrong += 1;
        }
        if opts.format == OutputFormat::Json {
            let patch = match (&out.patch, &out.patched) {
                (Some(p), Some(_)) => {
                    p.to_json(&item.program).unwrap_or(Json::Null)
                }
                _ => Json::Null,
            };
            let mut fields = vec![
                ("program", Json::Str(out.name.clone())),
                ("baseline_must", Json::int(out.baseline_must as u64)),
                ("baseline_may", Json::int(out.baseline_may as u64)),
                ("repaired", Json::Bool(out.repaired())),
                ("candidates_tried", Json::int(out.candidates_tried as u64)),
                ("bytes_before", Json::int(out.bytes_before)),
                ("bytes_after", Json::int(out.bytes_after)),
                ("patch", patch),
                ("diff", Json::Str(out.diff.clone())),
            ];
            if let Some(v) = &verdict {
                fields.push(("verdict", case_json(v)));
            }
            results.push(Json::obj(fields));
        } else {
            if !opts.quiet && !out.diff.is_empty() {
                print!("{}", out.diff);
            }
            let status = if out.clean() {
                "clean".to_string()
            } else if out.repaired() {
                let patch = out.patch.as_ref().expect("repaired implies patch");
                format!(
                    "REPAIRED ({} edit{}, {} candidates, bytes {} -> {})",
                    patch.edits.len(),
                    if patch.edits.len() == 1 { "" } else { "s" },
                    out.candidates_tried,
                    out.bytes_before,
                    out.bytes_after,
                )
            } else {
                format!("UNREPAIRED ({} candidates exhausted)", out.candidates_tried)
            };
            let check = match verified {
                Some(true) => "  [apply-check: verified]",
                Some(false) => "  [apply-check: FAILED]",
                None => "",
            };
            println!(
                "{:<14} {:>2} must, {:>2} may  {status}{check}",
                out.name, out.baseline_must, out.baseline_may
            );
        }
    }
    if opts.format == OutputFormat::Json {
        let doc = Json::obj(vec![
            ("command", Json::Str("fix".into())),
            ("results", Json::Arr(results)),
        ]);
        println!("{}", doc.emit());
    }
    if wrong == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `arbalest optimize`: delete or narrow provably redundant transfers
/// while holding the diagnostic surface fixed. Parity is enforced by
/// the engine (every accepted edit keeps static diagnostics
/// byte-identical and dynamic reports unchanged), so the command only
/// fails when `--apply-check` re-verification disagrees.
fn cmd_optimize(target: &str, opts: &Options) -> ExitCode {
    use arbalest_static::repair::minimize_transfers;
    let items = match lint_items(target, opts) {
        Ok(items) => items,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let binding = arbalest_ir::Binding::new();
    let mut wrong = 0usize;
    let mut results = Vec::new();
    let (mut total_before, mut total_after) = (0u64, 0u64);
    for item in &items {
        let out = minimize_transfers(&item.program.name, &item.program, &binding);
        total_before += out.bytes_before;
        total_after += out.bytes_after;
        let verdict = if opts.apply_check {
            Some(arbalest_static::differential::check_program(&out.name, &out.patched, &binding))
        } else {
            None
        };
        let verified = verdict.as_ref().map(|v| v.ok());
        if verified == Some(false) {
            wrong += 1;
        }
        if opts.format == OutputFormat::Json {
            let patch = out.patch.to_json(&item.program).unwrap_or(Json::Null);
            let mut fields = vec![
                ("program", Json::Str(out.name.clone())),
                ("bytes_before", Json::int(out.bytes_before)),
                ("bytes_after", Json::int(out.bytes_after)),
                ("saved", Json::int(out.saved())),
                ("edits", Json::int(out.patch.edits.len() as u64)),
                ("rounds", Json::int(out.rounds as u64)),
                ("patch", patch),
                ("diff", Json::Str(out.diff.clone())),
            ];
            if let Some(v) = &verdict {
                fields.push(("verdict", case_json(v)));
            }
            results.push(Json::obj(fields));
        } else {
            if !opts.quiet && !out.diff.is_empty() {
                print!("{}", out.diff);
            }
            let check = match verified {
                Some(true) => "  [apply-check: verified]",
                Some(false) => "  [apply-check: FAILED]",
                None => "",
            };
            println!(
                "{:<14} bytes {:>7} -> {:>7}  saved {:>7}  ({} edit{}, {} round{}){check}",
                out.name,
                out.bytes_before,
                out.bytes_after,
                out.saved(),
                out.patch.edits.len(),
                if out.patch.edits.len() == 1 { "" } else { "s" },
                out.rounds,
                if out.rounds == 1 { "" } else { "s" },
            );
        }
    }
    if opts.format == OutputFormat::Json {
        let doc = Json::obj(vec![
            ("command", Json::Str("optimize".into())),
            ("bytes_before", Json::int(total_before)),
            ("bytes_after", Json::int(total_after)),
            ("saved", Json::int(total_before - total_after)),
            ("results", Json::Arr(results)),
        ]);
        println!("{}", doc.emit());
    } else if items.len() > 1 {
        println!(
            "total          bytes {:>7} -> {:>7}  saved {:>7}",
            total_before,
            total_after,
            total_before - total_after
        );
    }
    if wrong == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_certify(target: &str, opts: &Options) -> ExitCode {
    let benches: Vec<_> = if target == "all" {
        arbalest_dracc::all()
    } else {
        match target.parse::<u32>().ok().and_then(arbalest_dracc::by_id) {
            Some(b) => vec![b],
            None => {
                eprintln!("unknown benchmark id '{target}'");
                return ExitCode::from(2);
            }
        }
    };
    let mut wrong = 0usize;
    for b in &benches {
        let cfg = Config::default().team_size(opts.team).unified(opts.unified);
        let cert = certify(cfg, |rt| b.run(rt));
        let expected_clean = b.expected.is_none();
        let ok = cert.certified() == expected_clean;
        if !ok {
            wrong += 1;
        }
        println!(
            "{:<14} certified={:<5} mapping_issues={:<3} races={:<3} {}",
            b.dracc_id(),
            cert.certified(),
            cert.mapping_issues.len(),
            cert.races.len(),
            if ok { "(as expected)" } else { "(UNEXPECTED)" }
        );
    }
    if wrong == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_profile(target: &str, opts: &Options) -> ExitCode {
    let benches: Vec<_> = if target == "all" {
        arbalest_dracc::all()
    } else {
        match target.parse::<u32>().ok().and_then(arbalest_dracc::by_id) {
            Some(b) => vec![b],
            None => {
                eprintln!("unknown benchmark id '{target}'");
                return ExitCode::from(2);
            }
        }
    };
    let reg = Registry::new();
    let start = std::time::Instant::now();
    let mut reports = 0usize;
    for b in &benches {
        // Fresh detector state per benchmark; the registry is shared, so
        // the profile aggregates the whole sweep.
        let rt = runtime_for(opts, "arbalest", &reg);
        b.run(&rt);
        reports += rt.reports().len();
    }
    let wall = start.elapsed();
    let spans = reg.drain_spans();
    if opts.format == OutputFormat::Json {
        // Same registry snapshot the text profile reads, as one document a
        // dashboard can ingest without scraping the table layout.
        let doc = Json::obj(vec![
            ("command", Json::Str("profile".into())),
            ("benchmarks", Json::int(benches.len() as u64)),
            ("reports", Json::int(reports as u64)),
            ("seconds", Json::Num(wall.as_secs_f64())),
            ("metrics", metrics_json(&reg.snapshot())),
            ("spans", Json::Arr(spans.iter().map(span_json).collect())),
        ]);
        println!("{}", doc.emit());
    } else {
        print_profile(&reg.snapshot(), &spans, benches.len(), reports, wall);
    }
    if let Err(e) = write_observability(&reg, &spans, opts) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Render the hot-path table `arbalest profile` prints: runtime phases by
/// total time, detector totals, and the hottest VSM transition edges.
fn print_profile(
    snap: &arbalest_obs::Snapshot,
    spans: &[SpanEvent],
    benches: usize,
    reports: usize,
    wall: std::time::Duration,
) {
    println!(
        "profiled {benches} benchmark(s) in {:.3}s  ({reports} report(s))",
        wall.as_secs_f64()
    );

    let phases = [
        ("target kernels", snap.histogram("arbalest_rt_target_nanos", &[])),
        ("entry maps", snap.histogram("arbalest_rt_map_nanos", &[("phase", "entry")])),
        ("exit maps", snap.histogram("arbalest_rt_map_nanos", &[("phase", "exit")])),
        ("update directives", snap.histogram("arbalest_rt_update_nanos", &[])),
    ];
    let mut rows: Vec<_> = phases.iter().filter_map(|(n, h)| h.as_ref().map(|h| (*n, *h))).collect();
    rows.sort_by_key(|(_, h)| std::cmp::Reverse(h.sum));
    println!("\nhot paths (runtime phases, by total time)");
    println!(
        "  {:<20} {:>10} {:>12} {:>11} {:>11}",
        "phase", "count", "total ms", "mean us", "max us"
    );
    for (name, h) in rows {
        println!(
            "  {:<20} {:>10} {:>12.3} {:>11.2} {:>11.2}",
            name,
            h.count,
            h.sum as f64 / 1e6,
            h.mean() / 1e3,
            h.max as f64 / 1e3
        );
    }

    let hit = |r| snap.counter("arbalest_detector_lookup_cache_total", &[("result", r)]);
    let (hits, misses) = (hit("hit").unwrap_or(0), hit("miss").unwrap_or(0));
    let rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
    println!("\ndetector");
    println!("  accesses            {:>14}", snap.counter_sum("arbalest_detector_accesses_total"));
    println!(
        "  vsm transitions     {:>14}",
        snap.counter_sum("arbalest_detector_vsm_transition_pairs_total")
    );
    println!("  lookup cache        {:>13.1}% hit ({misses} miss(es))", rate * 100.0);
    println!(
        "  shadow CAS retries  {:>14}",
        snap.counter_sum("arbalest_detector_shadow_cas_retries_total")
    );
    if let Some(depth) = snap.histogram("arbalest_detector_lookup_depth", &[]) {
        println!(
            "  tree lookup depth   {:>9.1} mean, {} max ({} uncached lookup(s))",
            depth.mean(),
            depth.max,
            depth.count
        );
    }

    let mut edges: Vec<(String, u64)> = snap
        .counters_named("arbalest_detector_vsm_transition_pairs_total")
        .filter(|&(_, v)| v > 0)
        .map(|(labels, v)| {
            let get = |key: &str| {
                labels
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, val)| val.as_str())
                    .unwrap_or("?")
            };
            (format!("{} -> {}", get("from"), get("op")), v)
        })
        .collect();
    edges.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if !edges.is_empty() {
        println!("\nhottest VSM transition edges");
        for (edge, n) in edges.iter().take(8) {
            println!("  {:<32} {:>12}", edge, n);
        }
    }
    println!("\nflight recorder: {} span event(s) captured", spans.len());
}

/// `arbalest explain <id>`: re-run one DRACC benchmark with the detector's
/// VSM provenance capture enabled and print, for each report, the causal
/// chain of validity-state edges (oldest first) that carried the buffer
/// into the faulting state. The rendered report itself is byte-identical
/// to a default run — provenance rides alongside, never inside it.
fn cmd_explain(target: &str, opts: &Options) -> ExitCode {
    let Some(bench) = target.parse::<u32>().ok().and_then(arbalest_dracc::by_id) else {
        eprintln!("unknown benchmark id '{target}' (explain takes one DRACC id)");
        return ExitCode::from(2);
    };
    let reg = registry_for(opts);
    let cfg = Config::default()
        .team_size(opts.team)
        .unified(opts.unified)
        .serialize(opts.serialize)
        .metrics(reg.clone());
    let tool = Arc::new(Arbalest::with_registry(
        ArbalestConfig { provenance: true, ..ArbalestConfig::default() },
        reg.clone(),
    ));
    let rt = Runtime::with_tool(cfg, tool);
    bench.run(&rt);
    let reports = rt.reports();
    if reports.is_empty() {
        println!("{}: no reports — nothing to explain", bench.dracc_id());
        return ExitCode::SUCCESS;
    }
    let picked: Vec<(usize, _)> = match opts.report {
        Some(n) => match reports.get(n) {
            Some(r) => vec![(n, r)],
            None => {
                eprintln!(
                    "--report {n} out of range: {} produced {} report(s)",
                    bench.dracc_id(),
                    reports.len()
                );
                return ExitCode::from(2);
            }
        },
        None => reports.iter().enumerate().collect(),
    };
    if opts.format == OutputFormat::Json {
        let doc = Json::obj(vec![
            ("command", Json::Str("explain".into())),
            ("benchmark", Json::Str(bench.dracc_id())),
            ("reports", Json::Arr(picked.iter().map(|(_, r)| r.to_json()).collect())),
        ]);
        println!("{}", doc.emit());
        return ExitCode::SUCCESS;
    }
    for (i, r) in &picked {
        print!("{}", r.render());
        if r.provenance.is_empty() {
            println!("report {i}: no VSM provenance recorded for this report kind");
        } else {
            println!(
                "report {i}: causal VSM history ({} edge(s), oldest first)",
                r.provenance.len()
            );
            for (j, step) in r.provenance.iter().enumerate() {
                println!("  {:>2}. {}", j + 1, step.describe());
            }
        }
        println!();
    }
    println!(
        "{}: explained {} of {} report(s)",
        bench.dracc_id(),
        picked.len(),
        reports.len()
    );
    ExitCode::SUCCESS
}

/// `arbalest check-prom [file]`: run Prometheus text exposition (from a
/// file or stdin) through the conformance checker — the same gate the
/// exposition unit tests apply, available to shell pipelines so CI can
/// validate a live `stats --format prom` scrape.
fn cmd_check_prom(path: Option<&str>) -> ExitCode {
    let text = match path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("read {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            use std::io::Read as _;
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("read stdin: {e}");
                return ExitCode::from(2);
            }
            buf
        }
    };
    match arbalest_obs::check_exposition(&text) {
        Ok(s) => {
            println!(
                "prometheus exposition OK: {} familie(s), {} sample(s), {} histogram(s) verified",
                s.families, s.samples, s.histograms
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("prometheus exposition INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validate one Chrome/Perfetto trace-event document: the `traceEvents`
/// envelope, per-event required fields, and the causal-id hex encoding on
/// every slice. Returns (slices, distinct trace ids, root spans).
fn check_trace_text(text: &str) -> Result<(usize, usize, usize), String> {
    let doc = Json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents array at the top level")?;
    let is_hex = |s: &str, width: usize| {
        s.len() == width && s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    };
    let mut slices = 0usize;
    let mut traces = std::collections::BTreeSet::new();
    let mut roots = 0usize;
    for (i, e) in events.iter().enumerate() {
        e.get("name").and_then(Json::as_str).ok_or(format!("event {i}: missing name"))?;
        e.get("pid").and_then(Json::as_u64).ok_or(format!("event {i}: missing pid"))?;
        let ph = e.get("ph").and_then(Json::as_str).ok_or(format!("event {i}: missing ph"))?;
        match ph {
            "M" => {} // process/thread metadata carries no timing or args
            "X" => {
                e.get("tid")
                    .and_then(Json::as_u64)
                    .ok_or(format!("event {i}: slice missing tid"))?;
                for key in ["ts", "dur"] {
                    match e.get(key) {
                        Some(Json::Num(_)) => {}
                        _ => return Err(format!("event {i}: slice missing numeric {key}")),
                    }
                }
                let args = e.get("args").ok_or(format!("event {i}: slice missing args"))?;
                let field = |k: &str, width: usize| {
                    let v = args
                        .get(k)
                        .and_then(Json::as_str)
                        .ok_or(format!("event {i}: args.{k} missing"))?;
                    if !is_hex(v, width) {
                        return Err(format!(
                            "event {i}: args.{k} '{v}' is not {width}-digit lowercase hex"
                        ));
                    }
                    Ok(v.to_string())
                };
                let trace = field("trace", 32)?;
                field("span", 16)?;
                let parent = field("parent", 16)?;
                if trace.bytes().all(|b| b == b'0') {
                    return Err(format!("event {i}: zero trace id on a slice"));
                }
                slices += 1;
                traces.insert(trace);
                if parent.bytes().all(|b| b == b'0') {
                    roots += 1;
                }
            }
            other => return Err(format!("event {i}: unexpected ph '{other}' (want X or M)")),
        }
    }
    if slices == 0 {
        return Err("no ph:\"X\" slices in traceEvents".into());
    }
    Ok((slices, traces.len(), roots))
}

/// `arbalest check-trace <file>`: well-formedness gate for the trace files
/// `serve --trace-dir` writes, so CI smoke tests can assert the causal
/// tree landed without hand-parsing JSON.
fn cmd_check_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match check_trace_text(&text) {
        Ok((slices, traces, roots)) => {
            println!(
                "{path}: perfetto trace OK: {slices} slice(s) across {traces} trace id(s), \
                 {roots} root span(s)"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID perfetto trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Options for the networked subcommands (`serve`, `submit`, `record`,
/// `stats`, `stop`).
struct NetOptions {
    addr: String,
    shards: usize,
    queue_cap: usize,
    chunk: usize,
    out: Option<String>,
    quiet: bool,
    /// `stats` output: "text" (human summary) or "prom" (the server's full
    /// metrics registry in Prometheus text format).
    format: String,
    /// serve: per-session byte budget (`0` = unlimited).
    max_session_bytes: u64,
    /// serve: per-session inflight-event cap (`0` = unlimited).
    max_inflight: u64,
    /// serve: per-instance frame-size ceiling.
    max_frame: u32,
    /// serve: idle-connection reap timeout.
    idle_timeout: std::time::Duration,
    /// serve: per-request (frame-completion) deadline.
    request_deadline: std::time::Duration,
    /// serve: shutdown drain deadline.
    drain_deadline: std::time::Duration,
    /// serve: worker-side chaos injection.
    faults: FaultConfig,
    /// submit: total client-side deadline per operation.
    deadline: Option<std::time::Duration>,
    /// serve: durable-session data directory (`None` = no durability).
    data_dir: Option<String>,
    /// serve: directory for per-session Perfetto trace files (`None` = the
    /// server still buffers spans for `TraceSnapshot`, but writes nothing).
    trace_dir: Option<String>,
    /// submit: stamp batches with root span contexts (causal tracing).
    trace: bool,
    /// serve: snapshot a session after this many WAL bytes (0 = off).
    snapshot_every_bytes: u64,
    /// serve: snapshot a session after this many events (0 = off).
    snapshot_every_events: u64,
    /// serve: WAL fsync policy.
    fsync: arbalest_store::FsyncPolicy,
    /// submit: durable session id to resume instead of opening fresh.
    resume: Option<u64>,
    /// submit: stream only the first N events of the trace.
    take: Option<usize>,
    /// submit: leave the session open (no `Finish`) — crash-recovery
    /// drills resume it later.
    no_finish: bool,
}

impl Default for NetOptions {
    fn default() -> Self {
        let defaults = ServerConfig::default();
        NetOptions {
            addr: "unix:/tmp/arbalest.sock".into(),
            shards: 4,
            queue_cap: 128,
            chunk: 1024,
            out: None,
            quiet: false,
            format: "text".into(),
            max_session_bytes: defaults.max_session_bytes,
            max_inflight: defaults.max_inflight_events,
            max_frame: defaults.max_frame,
            idle_timeout: defaults.idle_timeout,
            request_deadline: defaults.request_deadline,
            drain_deadline: defaults.drain_deadline,
            faults: FaultConfig::disabled(),
            deadline: None,
            data_dir: None,
            trace_dir: None,
            trace: false,
            snapshot_every_bytes: 0,
            snapshot_every_events: 0,
            fsync: arbalest_store::FsyncPolicy::default(),
            resume: None,
            take: None,
            no_finish: false,
        }
    }
}

/// Parse a byte count with an optional `K`/`M`/`G` suffix.
fn parse_bytes(v: &str) -> Option<u64> {
    let (num, mult) = match v.as_bytes().last()? {
        b'K' | b'k' => (&v[..v.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&v[..v.len() - 1], 1 << 20),
        b'G' | b'g' => (&v[..v.len() - 1], 1 << 30),
        _ => (v, 1),
    };
    num.parse::<u64>().ok()?.checked_mul(mult)
}

/// Parse a duration given in (possibly fractional) seconds.
fn parse_secs(v: &str) -> Option<std::time::Duration> {
    let secs: f64 = v.parse().ok()?;
    (secs >= 0.0).then(|| std::time::Duration::from_secs_f64(secs))
}

fn parse_net_options(args: &[String]) -> Result<NetOptions, String> {
    let mut opts = NetOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" | "--connect" => {
                opts.addr = it.next().ok_or(format!("{arg} needs an address"))?.clone();
            }
            "--shards" => {
                opts.shards =
                    it.next().and_then(|s| s.parse().ok()).ok_or("--shards needs a number")?;
            }
            "--queue-cap" => {
                opts.queue_cap =
                    it.next().and_then(|s| s.parse().ok()).ok_or("--queue-cap needs a number")?;
            }
            "--chunk" => {
                opts.chunk =
                    it.next().and_then(|s| s.parse().ok()).ok_or("--chunk needs a number")?;
            }
            "-o" => {
                opts.out = Some(it.next().ok_or("-o needs a file path")?.clone());
            }
            "--quiet" => opts.quiet = true,
            "--format" => {
                opts.format = match it.next().map(String::as_str) {
                    Some(f @ ("text" | "prom")) => f.to_string(),
                    other => return Err(format!("bad --format {other:?} (want text|prom)")),
                };
            }
            "--max-session-bytes" => {
                opts.max_session_bytes = it
                    .next()
                    .and_then(|s| parse_bytes(s))
                    .ok_or("--max-session-bytes needs a byte count (K/M/G suffix ok)")?;
            }
            "--max-inflight" => {
                opts.max_inflight =
                    it.next().and_then(|s| s.parse().ok()).ok_or("--max-inflight needs a number")?;
            }
            "--max-frame" => {
                let bytes = it
                    .next()
                    .and_then(|s| parse_bytes(s))
                    .ok_or("--max-frame needs a byte count (K/M/G suffix ok)")?;
                opts.max_frame = u32::try_from(bytes).map_err(|_| "--max-frame too large")?;
            }
            "--idle-timeout" => {
                opts.idle_timeout = it
                    .next()
                    .and_then(|s| parse_secs(s))
                    .ok_or("--idle-timeout needs seconds")?;
            }
            "--request-deadline" => {
                opts.request_deadline = it
                    .next()
                    .and_then(|s| parse_secs(s))
                    .ok_or("--request-deadline needs seconds")?;
            }
            "--drain-deadline" => {
                opts.drain_deadline = it
                    .next()
                    .and_then(|s| parse_secs(s))
                    .ok_or("--drain-deadline needs seconds")?;
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs seed=N,rate=P")?;
                opts.faults = parse_faults(v)?;
            }
            "--deadline" => {
                opts.deadline =
                    Some(it.next().and_then(|s| parse_secs(s)).ok_or("--deadline needs seconds")?);
            }
            "--data-dir" => {
                opts.data_dir = Some(it.next().ok_or("--data-dir needs a directory")?.clone());
            }
            "--trace-dir" => {
                opts.trace_dir = Some(it.next().ok_or("--trace-dir needs a directory")?.clone());
            }
            "--trace" => opts.trace = true,
            "--snapshot-every-bytes" => {
                opts.snapshot_every_bytes = it
                    .next()
                    .and_then(|s| parse_bytes(s))
                    .ok_or("--snapshot-every-bytes needs a byte count (K/M/G suffix ok)")?;
            }
            "--snapshot-every-events" => {
                opts.snapshot_every_events = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--snapshot-every-events needs a number")?;
            }
            "--fsync-policy" => {
                let v = it.next().ok_or("--fsync-policy needs always|group[=bytes]|never")?;
                opts.fsync = v.parse()?;
            }
            "--resume" => {
                opts.resume = Some(
                    it.next().and_then(|s| s.parse().ok()).ok_or("--resume needs a session id")?,
                );
            }
            "--take" => {
                opts.take = Some(
                    it.next().and_then(|s| s.parse().ok()).ok_or("--take needs an event count")?,
                );
            }
            "--no-finish" => opts.no_finish = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// Why `record`/`submit` could not obtain a benchmark trace. Typed so the
/// caller can name the offending id in its message and pick the
/// usage-error exit code (2) over the runtime-failure one.
#[derive(Debug, PartialEq, Eq)]
enum RecordError {
    /// The argument parsed as a number but names no benchmark in the
    /// DRACC table.
    UnknownBenchmark {
        /// The id that matched nothing.
        id: u32,
    },
    /// The argument is not a numeric benchmark id at all.
    NotABenchmarkId {
        /// The argument as given.
        arg: String,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::UnknownBenchmark { id } => {
                write!(f, "no DRACC benchmark with id {id} (see `arbalest list`)")
            }
            RecordError::NotABenchmarkId { arg } => {
                write!(f, "'{arg}' is not a DRACC benchmark id")
            }
        }
    }
}

/// Run a DRACC benchmark under the trace recorder and return its events.
fn record_dracc(id: u32) -> Result<Vec<TraceEvent>, RecordError> {
    let bench = arbalest_dracc::by_id(id).ok_or(RecordError::UnknownBenchmark { id })?;
    let recorder = Arc::new(TraceRecorder::new());
    let rt = Runtime::with_tool(Config::default(), recorder.clone());
    bench.run(&rt);
    Ok(recorder.take())
}

/// Parse-then-record: the full typed path from a command-line argument to
/// a trace.
fn record_dracc_arg(target: &str) -> Result<Vec<TraceEvent>, RecordError> {
    let id = target
        .parse::<u32>()
        .map_err(|_| RecordError::NotABenchmarkId { arg: target.to_string() })?;
    record_dracc(id)
}

/// Resolve `submit`'s positional argument: an existing trace file, or a
/// DRACC benchmark id whose trace is recorded on the spot.
fn load_events(target: &str) -> Result<Vec<TraceEvent>, String> {
    if std::path::Path::new(target).is_file() {
        let bytes = std::fs::read(target).map_err(|e| format!("read {target}: {e}"))?;
        return wire::decode_trace(&bytes).map_err(|e| format!("decode {target}: {e}"));
    }
    record_dracc_arg(target).map_err(|e| match e {
        RecordError::NotABenchmarkId { arg } => {
            format!("'{arg}' is neither a trace file nor a DRACC benchmark id")
        }
        unknown => unknown.to_string(),
    })
}

fn cmd_serve(opts: &NetOptions) -> ExitCode {
    let addr = ListenAddr::parse(&opts.addr);
    let cfg = ServerConfig {
        shards: opts.shards,
        queue_cap: opts.queue_cap,
        max_session_bytes: opts.max_session_bytes,
        max_inflight_events: opts.max_inflight,
        max_frame: opts.max_frame,
        idle_timeout: opts.idle_timeout,
        request_deadline: opts.request_deadline,
        drain_deadline: opts.drain_deadline,
        faults: opts.faults,
        data_dir: opts.data_dir.clone().map(std::path::PathBuf::from),
        trace_dir: opts.trace_dir.clone().map(std::path::PathBuf::from),
        store: arbalest_store::StoreConfig {
            fsync: opts.fsync,
            snapshot_every_bytes: opts.snapshot_every_bytes,
            snapshot_every_events: opts.snapshot_every_events,
            ..arbalest_store::StoreConfig::default()
        },
        ..ServerConfig::default()
    };
    match Server::start(&addr, cfg) {
        Ok(server) => {
            if let Some(dir) = &opts.trace_dir {
                println!("arbalest-serve tracing finished sessions into {dir}");
            }
            match &opts.data_dir {
                Some(dir) => println!(
                    "arbalest-serve listening on {} ({} shards, durable in {dir}, fsync {})",
                    server.local_addr(),
                    opts.shards,
                    opts.fsync
                ),
                None => println!(
                    "arbalest-serve listening on {} ({} shards)",
                    server.local_addr(),
                    opts.shards
                ),
            }
            server.wait_for_shutdown();
            server.stop();
            println!("arbalest-serve drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot listen on {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn connect(opts: &NetOptions) -> Result<Client, String> {
    let addr = ListenAddr::parse(&opts.addr);
    let client = Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    Ok(match opts.deadline {
        Some(d) => client.with_deadline(d),
        None => client,
    })
}

fn cmd_submit(target: &str, opts: &NetOptions) -> ExitCode {
    let events = match load_events(target) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let result = connect(opts).and_then(|mut client| {
        if opts.trace {
            // The registry's own spans are discarded on exit; what matters
            // is the contexts stamped on the wire, which the server records
            // into its trace sink (and --trace-dir file, if configured).
            client = client.with_tracing(Registry::new());
        }
        let id = match opts.resume {
            None => client.hello().map_err(|e| e.to_string())?,
            Some(id) => {
                client.hello_resume(Some(id)).map_err(|e| format!("resume session {id}: {e}"))?;
                id
            }
        };
        // How far the session already got: 0 for a fresh one, the durable
        // record's event count when resuming. Stream only past that point.
        let skip = if opts.resume.is_some() {
            let done = client.stats().map_err(|e| e.to_string())?.session_events;
            if done > events.len() as u64 {
                return Err(format!(
                    "session {id} already holds {done} event(s) but the trace has only {}",
                    events.len()
                ));
            }
            eprintln!(
                "resuming session {id}: {done} event(s) already durable, sending {}",
                events.len() as u64 - done
            );
            done as usize
        } else {
            0
        };
        let end = opts.take.map_or(events.len(), |n| n.clamp(skip, events.len()));
        for batch in events[skip..end].chunks(opts.chunk.max(1)) {
            client.send_events(batch).map_err(|e| e.to_string())?;
        }
        if opts.no_finish {
            Ok((id, end, None))
        } else {
            client.finish().map(|reports| (id, end, Some(reports))).map_err(|e| e.to_string())
        }
    });
    match result {
        Ok((id, sent, None)) => {
            println!(
                "{}: session {} left open, {} of {} event(s) streamed",
                target,
                id,
                sent,
                events.len()
            );
            ExitCode::SUCCESS
        }
        Ok((_, _, Some(reports))) => {
            if !opts.quiet {
                for r in &reports {
                    print!("{}", r.render());
                }
            }
            println!("{}: {} event(s), {} report(s)", target, events.len(), reports.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_record(target: &str, opts: &NetOptions) -> ExitCode {
    let Some(out) = &opts.out else {
        eprintln!("record needs -o <file>");
        return ExitCode::from(2);
    };
    let events = match record_dracc_arg(target) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match std::fs::write(out, wire::encode_trace(&events)) {
        Ok(()) => {
            println!("{}: {} event(s) -> {}", target, events.len(), out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_stats(opts: &NetOptions) -> ExitCode {
    if opts.format == "prom" {
        // The Prometheus export reads the same registry cells the binary
        // STATS snapshot does; print it verbatim for scrapers.
        return match connect(opts).and_then(|mut c| c.metrics().map_err(|e| e.to_string())) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = connect(opts).and_then(|mut c| c.stats().map_err(|e| e.to_string()));
    match result {
        Ok(s) => {
            println!(
                "sessions: {} started, {} finished, {} active",
                s.sessions_started,
                s.sessions_finished,
                s.sessions_active()
            );
            println!("events received: {}   busy rejections: {}", s.events_received, s.busy_rejections);
            println!("queue depths: {:?}", s.queue_depths);
            let kinds = ["UUM", "USD", "MappingBO", "DataRace", "Uninit", "HeapBO", "UseAfterFree"];
            for (name, n) in kinds.iter().zip(s.reports_by_kind) {
                if n > 0 {
                    println!("reports[{name}]: {n}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `arbalest store inspect <data-dir>`: describe every unfinished session
/// — WAL segments, decoded event counts, snapshots, and any torn or
/// corrupt tail — without modifying anything (scan only, no repair).
fn cmd_store_inspect(dir: &str) -> ExitCode {
    let root = std::path::Path::new(dir);
    let store = match arbalest_store::Store::open(
        root,
        arbalest_store::StoreConfig::default(),
        &Registry::disabled(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("open {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ids = match store.session_ids() {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("list sessions in {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if ids.is_empty() {
        println!("{dir}: no unfinished sessions");
        return ExitCode::SUCCESS;
    }
    let file_len = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    let mut damaged = false;
    for id in ids {
        let sdir = store.session_dir(id);
        println!("session {id}");
        match arbalest_store::wal::list_segments(&sdir) {
            Ok(segments) => {
                for (start, path) in &segments {
                    println!(
                        "  segment wal-{start:020}.log  first event {start}, {} byte(s)",
                        file_len(path)
                    );
                }
            }
            Err(e) => println!("  cannot list segments: {e}"),
        }
        match store.latest_snapshot(id) {
            Ok(Some(snap)) => println!("  snapshot: {} event(s) captured", snap.events),
            Ok(None) => println!("  snapshot: none"),
            Err(e) => println!("  snapshot: unreadable ({e})"),
        }
        // Scan only (repair=false): inspect never mutates the directory.
        match arbalest_store::read_wal(&sdir, false) {
            Ok(replay) => {
                println!(
                    "  wal: {} event(s) in {} record(s), events {}..{}",
                    replay.events.len(),
                    replay.records,
                    replay.first_event,
                    replay.first_event + replay.events.len() as u64
                );
                if replay.torn || replay.corrupt {
                    damaged = true;
                    println!(
                        "  tail: {}{} — {} byte(s) would be discarded on recovery",
                        if replay.torn { "torn " } else { "" },
                        if replay.corrupt { "corrupt" } else { "" },
                        replay.truncated_bytes
                    );
                }
            }
            Err(e) => {
                damaged = true;
                println!("  wal: unreadable ({e})");
            }
        }
    }
    if damaged {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `arbalest store compact <data-dir>`: for every session, delete WAL
/// segments fully covered by its newest snapshot and drop superseded
/// snapshots (exactly what the serve-side trigger does, offline).
fn cmd_store_compact(dir: &str) -> ExitCode {
    let root = std::path::Path::new(dir);
    let store = match arbalest_store::Store::open(
        root,
        arbalest_store::StoreConfig::default(),
        &Registry::disabled(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("open {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ids = match store.session_ids() {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("list sessions in {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for id in ids {
        let covered = match store.latest_snapshot(id) {
            Ok(Some(snap)) => snap.events,
            Ok(None) => {
                println!("session {id}: no snapshot, nothing coverable");
                continue;
            }
            Err(e) => {
                eprintln!("session {id}: cannot read snapshot: {e}");
                failed = true;
                continue;
            }
        };
        match store.compact(id, covered) {
            Ok(removed) => println!(
                "session {id}: {removed} segment(s) removed (snapshot covers {covered} event(s))"
            ),
            Err(e) => {
                eprintln!("session {id}: compaction failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_stop(opts: &NetOptions) -> ExitCode {
    let result = connect(opts).and_then(|mut c| c.shutdown_server().map_err(|e| e.to_string()));
    match result {
        Ok(()) => {
            println!("server acknowledged shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    match cmd.as_str() {
        "list" => cmd_list(),
        "serve" | "stats" | "stop" => {
            let opts = match parse_net_options(&args[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}\n");
                    return usage();
                }
            };
            match cmd.as_str() {
                "serve" => cmd_serve(&opts),
                "stats" => cmd_stats(&opts),
                _ => cmd_stop(&opts),
            }
        }
        "store" => {
            let (Some(action), Some(dir)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: arbalest store <inspect|compact> <data-dir>\n");
                return usage();
            };
            match action.as_str() {
                "inspect" => cmd_store_inspect(dir),
                "compact" => cmd_store_compact(dir),
                other => {
                    eprintln!("unknown store action '{other}' (want inspect|compact)\n");
                    usage()
                }
            }
        }
        "submit" | "record" => {
            let Some(target) = args.get(1) else { return usage() };
            let opts = match parse_net_options(&args[2..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}\n");
                    return usage();
                }
            };
            if cmd == "submit" {
                cmd_submit(target, &opts)
            } else {
                cmd_record(target, &opts)
            }
        }
        "fuzz-lint" => {
            let opts = match parse_options(&args[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}\n");
                    return usage();
                }
            };
            cmd_fuzz_lint(&opts)
        }
        "check-prom" => cmd_check_prom(args.get(1).map(String::as_str)),
        "check-trace" => {
            let Some(path) = args.get(1) else {
                eprintln!("check-trace needs a trace file\n");
                return usage();
            };
            cmd_check_trace(path)
        }
        "dracc" | "spec" | "lint" | "fix" | "optimize" | "certify" | "profile" | "explain" => {
            let Some(target) = args.get(1) else { return usage() };
            let opts = match parse_options(&args[2..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}\n");
                    return usage();
                }
            };
            match cmd.as_str() {
                "dracc" => cmd_dracc(target, &opts),
                "spec" => cmd_spec(target, &opts),
                "lint" => cmd_lint(target, &opts),
                "fix" => cmd_fix(target, &opts),
                "optimize" => cmd_optimize(target, &opts),
                "profile" => cmd_profile(target, &opts),
                "explain" => cmd_explain(target, &opts),
                _ => cmd_certify(target, &opts),
            }
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'\n");
            usage()
        }
    }
}
