//! Expected-optimization goldens for the SPEC workload models.
//!
//! `arbalest optimize` must keep report parity on all five workloads
//! (byte-identical static diagnostics, identical dynamic reports) and
//! find real transfer savings where the models provably over-copy:
//! `pep` copies back a scratch histogram nobody reads on the host, and
//! `pcg` copies its solution vector back eagerly although the per-
//! iteration `update from` already delivers the residual the host
//! checks. The stencil, by contrast, ping-pongs both grids through
//! per-iteration updates the host reads every sweep — every transfer is
//! load-bearing and must be left alone.

use arbalest_ir::Binding;
use arbalest_spec::ir_models::ir_model;
use arbalest_spec::Preset;
use arbalest_static::repair::minimize_transfers;
use arbalest_static::{analyze, Severity};

#[test]
fn optimize_keeps_parity_and_sheds_redundant_transfers() {
    let mut saved = std::collections::BTreeMap::new();
    for name in ["postencil", "polbm", "pomriq", "pep", "pcg"] {
        let p = ir_model(name, Preset::Test).expect("model exists");
        let before = analyze(&p);
        let out = minimize_transfers(&p.name, &p, &Binding::new());
        let after = analyze(&out.patched);
        assert_eq!(before.len(), after.len(), "{name}: diagnostic count drifted");
        assert!(
            after.iter().all(|d| d.severity != Severity::Must),
            "{name}: optimization introduced a Must diagnostic"
        );
        assert!(out.bytes_after <= out.bytes_before, "{name}");
        saved.insert(name, (out.saved(), out.patch.edits.len(), out.rounds));
    }
    // Redundant copies are found where they exist...
    assert!(saved["pep"].0 > 0, "pep: no savings, {saved:?}");
    assert!(saved["pcg"].0 > 0, "pcg: no savings, {saved:?}");
    // ...and needed ones are pinned by parity.
    assert_eq!(saved["postencil"], (0, 0, 0), "postencil must stay untouched");
}
