//! 503.postencil: 3-D 7-point Jacobi stencil, plus the buggy 1.2 variant.
//!
//! The correct version keeps both grids resident on the device (a
//! persistent data region), alternates their roles explicitly, and pulls
//! the final grid back with `target update from` — the SPEC 1.3 fix.
//!
//! [`run_buggy`] reproduces the 1.2 bug of §VI-D (Fig. 6): after each
//! kernel the *host* swaps its two array handles. The scratch grid was
//! mapped `alloc`, so after an odd number of iterations the results live
//! in a corresponding variable that is never copied back, and the output
//! loop reads stale host memory — the data mapping issue ARBALEST's
//! Fig. 7 report pinpoints.

use crate::Preset;
use arbalest_offload::prelude::*;

/// Grid extents and iteration count per preset.
pub fn dims(preset: Preset) -> (usize, usize, usize, usize) {
    match preset {
        Preset::Test => (8, 8, 4, 2),
        Preset::Small => (32, 32, 16, 4),
        Preset::Medium => (64, 64, 32, 8),
    }
}

#[inline]
fn idx(nx: usize, ny: usize, x: usize, y: usize, z: usize) -> usize {
    x + nx * (y + ny * z)
}

fn init(rt: &Runtime, name: &str, nx: usize, ny: usize, nz: usize) -> Buffer<f64> {
    rt.alloc_with::<f64>(name, nx * ny * nz, |i| {
        let x = i % nx;
        let y = (i / nx) % ny;
        let z = i / (nx * ny);
        (x + 2 * y + 3 * z) as f64 / (nx + ny + nz) as f64
    })
}

fn stencil_kernel(
    k: &KernelCtx,
    src: Buffer<f64>,
    dst: Buffer<f64>,
    nx: usize,
    ny: usize,
    nz: usize,
) {
    const C0: f64 = 0.5;
    const C1: f64 = 1.0 / 12.0;
    k.par_for(1..nz - 1, move |k, z| {
        for y in 1..ny - 1 {
            for x in 1..nx - 1 {
                let c = k.read(&src, idx(nx, ny, x, y, z));
                let sum = k.read(&src, idx(nx, ny, x - 1, y, z))
                    + k.read(&src, idx(nx, ny, x + 1, y, z))
                    + k.read(&src, idx(nx, ny, x, y - 1, z))
                    + k.read(&src, idx(nx, ny, x, y + 1, z))
                    + k.read(&src, idx(nx, ny, x, y, z - 1))
                    + k.read(&src, idx(nx, ny, x, y, z + 1));
                k.write(&dst, idx(nx, ny, x, y, z), C0 * c + C1 * sum);
            }
        }
    });
}

fn checksum(rt: &Runtime, a: &Buffer<f64>) -> f64 {
    let mut sum = 0.0;
    for i in 0..a.len() {
        sum += rt.read(a, i);
    }
    sum
}

/// The correct stencil (SPEC 1.3 shape).
pub fn run(rt: &Runtime, preset: Preset) -> f64 {
    let (nx, ny, nz, iters) = dims(preset);
    let a0 = init(rt, "a0", nx, ny, nz);
    let anext = rt.alloc_with::<f64>("anext", nx * ny * nz, |_| 0.0);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a0), Map::to(&anext)]);
    for step in 0..iters {
        let (src, dst) = if step % 2 == 0 { (a0, anext) } else { (anext, a0) };
        rt.target().map(Map::to(&src)).map(Map::to(&dst)).run(move |k| {
            stencil_kernel(k, src, dst, nx, ny, nz);
        });
    }
    // The final grid depends on the parity of the iteration count.
    let last = if iters % 2 == 0 { a0 } else { anext };
    rt.update_from(&last);
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&a0), Map::release(&anext)]);
    checksum(rt, &last)
}

/// The buggy SPEC 1.2 variant (§VI-D, Fig. 6): host-side handle swap.
///
/// Returns the checksum computed from what the *host* reads at the end —
/// stale data when `iters` is odd.
pub fn run_buggy(rt: &Runtime, preset: Preset) -> f64 {
    let (nx, ny, nz, iters) = dims(preset);
    assert!(iters % 2 == 0, "preset iteration counts are even; the bug needs +1");
    let iters = iters + 1; // odd, like the SPEC reference input
    let mut a0 = init(rt, "a0", nx, ny, nz);
    let mut anext = rt.alloc_with::<f64>("anext", nx * ny * nz, |_| 0.0);
    // BUG (1.2): the scratch grid is mapped alloc; the region relies on
    // the tofrom of `a0` for the copy-back...
    rt.target_data().map(Map::tofrom(&a0)).map(Map::alloc(&anext)).scope(|rt| {
        for _ in 0..iters {
            let (src, dst) = (a0, anext);
            rt.target().map(Map::to(&src)).map(Map::alloc(&dst)).run(move |k| {
                stencil_kernel(k, src, dst, nx, ny, nz);
            });
            // ...but the host swaps its handles after each launch, so
            // after an odd number of iterations the results live in the
            // `alloc`-mapped variable, which is never copied back.
            std::mem::swap(&mut a0, &mut anext);
        }
    });
    // The output loop (Fig. 6 line 139/145): reads stale host data.
    checksum(rt, &a0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_core::{Arbalest, ArbalestConfig};
    use std::sync::Arc;

    #[test]
    fn correct_version_converges_towards_smooth_field() {
        let rt = Runtime::new(Config::default().team_size(2));
        let sum = run(&rt, Preset::Test);
        assert!(sum.is_finite());
        assert!(sum != 0.0);
    }

    #[test]
    fn correct_version_is_clean_under_arbalest() {
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default().team_size(2), tool.clone());
        run(&rt, Preset::Test);
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn buggy_version_reads_stale_data() {
        // Functional evidence: the buggy checksum differs from the
        // correct one for an odd iteration count.
        let rt1 = Runtime::new(Config::default().team_size(2));
        let (nx, ny, nz, iters) = dims(Preset::Test);
        // Reference: run the correct pipeline for iters+1 steps.
        let a0 = init(&rt1, "a0", nx, ny, nz);
        let anext = rt1.alloc_with::<f64>("anext", nx * ny * nz, |_| 0.0);
        rt1.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a0), Map::to(&anext)]);
        for step in 0..iters + 1 {
            let (src, dst) = if step % 2 == 0 { (a0, anext) } else { (anext, a0) };
            rt1.target().map(Map::to(&src)).map(Map::to(&dst)).run(move |k| {
                stencil_kernel(k, src, dst, nx, ny, nz);
            });
        }
        let last = if (iters + 1) % 2 == 0 { a0 } else { anext };
        rt1.update_from(&last);
        let reference = checksum(&rt1, &last);

        let rt2 = Runtime::new(Config::default().team_size(2));
        let buggy = run_buggy(&rt2, Preset::Test);
        assert_ne!(buggy, reference, "the bug must corrupt the output");
    }

    #[test]
    fn arbalest_pinpoints_the_buggy_output_read() {
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default().team_size(2), tool.clone());
        run_buggy(&rt, Preset::Test);
        let reports = tool.reports();
        assert!(
            reports.iter().any(|r| r.kind == ReportKind::MappingUsd),
            "stale access report expected: {reports:?}"
        );
    }
}
