//! Symbolic IR descriptions of the five SPEC-ACCEL-like workloads.
//!
//! Each workload has ONE loop-form, symbolic-length model: buffer
//! extents and iteration counts are program parameters, and a
//! [`SymModel`] carries the recipe that binds them from a [`Preset`]
//! (using the same dimension functions as the runtime programs, so the
//! concretized lengths always agree with what actually runs). The
//! static analyzer checks the symbolic program once — the verdict then
//! holds for *every* preset — while [`ir_model`] instantiates it for
//! trace validation and per-preset lint runs.
//!
//! Kernel access sets over-approximate the real ones. The ping-pong
//! stencils (`postencil`, `polbm`) use a *parity-free* loop body: which
//! grid is source and which is destination depends on the step parity,
//! which an affine loop model cannot express, so each step reads both
//! grids and may-write both. Every real access is inside that cover,
//! and the `update from` of both grids before the host checksum
//! restores full host visibility either way. Gathers with computed
//! indices become whole-buffer reads, as before.

use crate::{pcg, polbm, pomriq, postencil, Preset};
use arbalest_ir::{Binding, BufId, Expr, MapClause, ParamId, Program, ProgramBuilder, Sect, Trip};
use arbalest_offload::mapping::MapType;

fn to(buf: BufId) -> MapClause {
    MapClause { buf, map_type: MapType::To, sect: Sect::Full }
}
fn release(buf: BufId) -> MapClause {
    MapClause { buf, map_type: MapType::Release, sect: Sect::Full }
}

/// How one parameter gets its value from a preset.
type Binder = (ParamId, fn(Preset) -> u64);

/// A symbolic workload model: the loop-form program plus the recipe
/// that binds its parameters from a [`Preset`].
pub struct SymModel {
    /// The symbolic program (loop trips and buffer extents are params).
    pub program: Program,
    binders: Vec<Binder>,
}

impl SymModel {
    /// The parameter binding for one preset.
    pub fn binding(&self, preset: Preset) -> Binding {
        self.binders.iter().fold(Binding::new(), |b, (p, f)| b.set(*p, f(preset)))
    }
}

fn s_postencil() -> SymModel {
    let mut p = ProgramBuilder::new("postencil");
    let cells = p.param("cells", 1, None);
    let iters = p.param("iters", 1, Some(4096));
    let a0 = p.buffer_init_sym("a0", 8, Expr::param(cells));
    let anext = p.buffer_init_sym("anext", 8, Expr::param(cells));
    p.enter_data(vec![to(a0), to(anext)]);
    // Parity-free ping-pong: each step reads the current grid and
    // may-write the other; which is which alternates with the step.
    p.loop_(Trip(Expr::param(iters)), |p| {
        p.target()
            .map_to(a0)
            .map_to(anext)
            .reads(a0)
            .reads(anext)
            .may_writes(a0)
            .may_writes(anext)
            .done();
    });
    p.update_from(a0);
    p.update_from(anext);
    p.exit_data(vec![release(a0), release(anext)]);
    p.host_read(a0);
    p.host_read(anext);
    SymModel {
        program: p.build(),
        binders: vec![
            (cells, |pr| {
                let (nx, ny, nz, _) = postencil::dims(pr);
                (nx * ny * nz) as u64
            }),
            (iters, |pr| postencil::dims(pr).3 as u64),
        ],
    }
}

fn s_polbm() -> SymModel {
    let mut p = ProgramBuilder::new("polbm");
    let cells = p.param("cells", 1, None);
    let steps = p.param("steps", 1, Some(4096));
    let cur = p.buffer_init_sym("f_cur", 8, Expr::param(cells));
    let next = p.buffer_init_sym("f_next", 8, Expr::param(cells));
    p.enter_data(vec![to(cur), to(next)]);
    // Same parity-free double-buffer abstraction as the stencil.
    p.loop_(Trip(Expr::param(steps)), |p| {
        p.target()
            .map_to(cur)
            .map_to(next)
            .reads(cur)
            .reads(next)
            .may_writes(cur)
            .may_writes(next)
            .done();
    });
    p.update_from(cur);
    p.update_from(next);
    p.exit_data(vec![release(cur), release(next)]);
    p.host_read(cur);
    p.host_read(next);
    SymModel {
        program: p.build(),
        binders: vec![
            (cells, |pr| {
                let (n, _) = polbm::dims(pr);
                (n * n * 5) as u64
            }),
            (steps, |pr| polbm::dims(pr).1 as u64),
        ],
    }
}

fn s_pomriq() -> SymModel {
    let mut p = ProgramBuilder::new("pomriq");
    let v = p.param("voxels", 1, None);
    let s = p.param("samples", 1, None);
    let kx = p.buffer_init_sym("kx", 8, Expr::param(s));
    let ky = p.buffer_init_sym("ky", 8, Expr::param(s));
    let kz = p.buffer_init_sym("kz", 8, Expr::param(s));
    let phi_r = p.buffer_init_sym("phiR", 8, Expr::param(s));
    let phi_i = p.buffer_init_sym("phiI", 8, Expr::param(s));
    let x = p.buffer_init_sym("x", 8, Expr::param(v));
    let y = p.buffer_init_sym("y", 8, Expr::param(v));
    let z = p.buffer_init_sym("z", 8, Expr::param(v));
    let qr = p.buffer_sym("Qr", 8, Expr::param(v));
    let qi = p.buffer_sym("Qi", 8, Expr::param(v));
    p.target()
        .map_to(kx)
        .map_to(ky)
        .map_to(kz)
        .map_to(phi_r)
        .map_to(phi_i)
        .map_to(x)
        .map_to(y)
        .map_to(z)
        .map_from(qr)
        .map_from(qi)
        .reads(x)
        .reads(y)
        .reads(z)
        .reads(kx)
        .reads(ky)
        .reads(kz)
        .reads(phi_r)
        .reads(phi_i)
        .writes(qr)
        .writes(qi)
        .done();
    p.host_read(qr);
    p.host_read(qi);
    SymModel {
        program: p.build(),
        binders: vec![
            (v, |pr| pomriq::dims(pr).0 as u64),
            (s, |pr| pomriq::dims(pr).1 as u64),
        ],
    }
}

fn s_pep() -> SymModel {
    // The tally sizes are preset-independent; the model has no params.
    let mut p = ProgramBuilder::new("pep");
    let counts = p.buffer("counts", 8, 10);
    let sums = p.buffer("sums", 8, 2);
    p.target()
        .map_from(counts)
        .map_from(sums)
        .writes(counts)
        .writes_sec(counts, 9, 1)
        .writes(sums)
        .done();
    p.host_read_sec(sums, 0, 1);
    SymModel { program: p.build(), binders: Vec::new() }
}

fn s_pcg() -> SymModel {
    let mut pr = ProgramBuilder::new("pcg");
    let n = pr.param("n", 1, None);
    let iters = pr.param("iters", 1, Some(4096));
    let b = pr.buffer_init_sym("b", 8, Expr::param(n));
    let x = pr.buffer_init_sym("x", 8, Expr::param(n));
    let r = pr.buffer_init_sym("r", 8, Expr::param(n));
    let p = pr.buffer_init_sym("p", 8, Expr::param(n));
    let q = pr.buffer_init_sym("q", 8, Expr::param(n));
    let scalars = pr.buffer("scalars", 8, 2);
    pr.data()
        .map_to(b)
        .map_tofrom(x)
        .map_to(r)
        .map_to(p)
        .map_to(q)
        .map_from(scalars)
        .scope(|pr| {
            // r = b; p = r; rho = r·r.
            pr.target()
                .map_to(b)
                .map_to(r)
                .map_to(p)
                .map_from(scalars)
                .reads(b)
                .writes(r)
                .writes(p)
                .reads(r)
                .writes_sec(scalars, 0, 1)
                .done();
            pr.update_from(scalars);
            pr.host_read_sec(scalars, 0, 1);
            pr.loop_(Trip(Expr::param(iters)), |pr| {
                // q = A p; pq = p·q.
                pr.target()
                    .map_to(p)
                    .map_to(q)
                    .map_from(scalars)
                    .reads(p)
                    .writes(q)
                    .reads(q)
                    .writes_sec(scalars, 0, 1)
                    .done();
                pr.update_from(scalars);
                pr.host_read_sec(scalars, 0, 1);
                // x += alpha p; r -= alpha q; rho' = r·r.
                pr.target()
                    .map_to(p)
                    .map_to(q)
                    .map_tofrom(x)
                    .map_to(r)
                    .map_from(scalars)
                    .reads(x)
                    .reads(p)
                    .writes(x)
                    .reads(r)
                    .reads(q)
                    .writes(r)
                    .writes_sec(scalars, 0, 1)
                    .done();
                pr.update_from(scalars);
                pr.host_read_sec(scalars, 0, 1);
                // p = r + beta p.
                pr.target().map_to(p).map_to(r).reads(r).reads(p).writes(p).done();
            });
        });
    SymModel {
        program: pr.build(),
        binders: vec![
            (n, |p| pcg::dims(p).0 as u64),
            (iters, |p| pcg::dims(p).1 as u64),
        ],
    }
}

/// The symbolic model for one workload name.
pub fn symbolic_model(name: &str) -> Option<SymModel> {
    match name {
        "postencil" => Some(s_postencil()),
        "polbm" => Some(s_polbm()),
        "pomriq" => Some(s_pomriq()),
        "pep" => Some(s_pep()),
        "pcg" => Some(s_pcg()),
        _ => None,
    }
}

/// The concrete IR model for one workload name at a preset — the
/// symbolic model instantiated with that preset's dimensions.
pub fn ir_model(name: &str, preset: Preset) -> Option<Program> {
    let m = symbolic_model(name)?;
    Some(m.program.concretize(&m.binding(preset)).expect("preset binding is in range"))
}

/// IR models for all five workloads at a preset.
pub fn all_models(preset: Preset) -> Vec<Program> {
    crate::workloads()
        .iter()
        .map(|w| ir_model(w.name, preset).expect("model for every workload"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_a_model() {
        for w in crate::workloads() {
            let m = ir_model(w.name, Preset::Test).expect("model");
            assert_eq!(m.name, w.name);
            assert!(!m.buffers.is_empty());
        }
    }

    #[test]
    fn model_lengths_track_the_preset() {
        let small = ir_model("postencil", Preset::Small).unwrap();
        let test = ir_model("postencil", Preset::Test).unwrap();
        assert!(small.buffers[0].len > test.buffers[0].len);
    }

    #[test]
    fn symbolic_models_concretize_at_every_preset() {
        for w in crate::workloads() {
            let m = symbolic_model(w.name).expect("symbolic model");
            for preset in [Preset::Test, Preset::Small, Preset::Medium] {
                let c = m.program.concretize(&m.binding(preset)).expect("in range");
                assert!(c.is_concrete(), "{} at {preset:?}", w.name);
            }
        }
    }
}
