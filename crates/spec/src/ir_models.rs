//! Hand-authored IR descriptions of the five SPEC-ACCEL-like workloads.
//!
//! The models are parameterized by [`Preset`], using the same dimension
//! functions as the runtime programs so buffer lengths and iteration
//! counts always agree with what actually runs. Kernel access sets
//! over-approximate the real ones: the stencil's interior-only writes
//! become whole-grid *may*-writes (every written element is inside the
//! grid, and the `update from` before the host checksum restores full
//! host visibility either way), and gathers with computed indices become
//! whole-buffer reads.

use crate::{pcg, polbm, pomriq, postencil, Preset};
use arbalest_ir::{BufId, MapClause, Program, ProgramBuilder, Sect};
use arbalest_offload::mapping::MapType;

fn to(buf: BufId) -> MapClause {
    MapClause { buf, map_type: MapType::To, sect: Sect::Full }
}
fn release(buf: BufId) -> MapClause {
    MapClause { buf, map_type: MapType::Release, sect: Sect::Full }
}

fn m_postencil(preset: Preset) -> Program {
    let (nx, ny, nz, iters) = postencil::dims(preset);
    let len = (nx * ny * nz) as u64;
    let mut p = ProgramBuilder::new("postencil");
    let a0 = p.buffer_init("a0", 8, len);
    let anext = p.buffer_init("anext", 8, len);
    p.enter_data(vec![to(a0), to(anext)]);
    for step in 0..iters {
        let (src, dst) = if step % 2 == 0 { (a0, anext) } else { (anext, a0) };
        // The stencil writes only the grid interior; a whole-grid
        // may-write is the sound single-interval abstraction.
        p.target().map_to(src).map_to(dst).reads(src).may_writes(dst).done();
    }
    let last = if iters % 2 == 0 { a0 } else { anext };
    p.update_from(last);
    p.exit_data(vec![release(a0), release(anext)]);
    p.host_read(last);
    p.build()
}

fn m_polbm(preset: Preset) -> Program {
    let (n, steps) = polbm::dims(preset);
    let len = (n * n * 5) as u64;
    let mut p = ProgramBuilder::new("polbm");
    let cur = p.buffer_init("f_cur", 8, len);
    let next = p.buffer_init("f_next", 8, len);
    p.enter_data(vec![to(cur), to(next)]);
    for step in 0..steps {
        let (src, dst) = if step % 2 == 0 { (cur, next) } else { (next, cur) };
        p.target().map_to(src).map_to(dst).reads(src).writes(dst).done();
    }
    let last = if steps % 2 == 0 { cur } else { next };
    p.update_from(last);
    p.exit_data(vec![release(cur), release(next)]);
    p.host_read(last);
    p.build()
}

fn m_pomriq(preset: Preset) -> Program {
    let (v, s) = pomriq::dims(preset);
    let (v, s) = (v as u64, s as u64);
    let mut p = ProgramBuilder::new("pomriq");
    let kx = p.buffer_init("kx", 8, s);
    let ky = p.buffer_init("ky", 8, s);
    let kz = p.buffer_init("kz", 8, s);
    let phi_r = p.buffer_init("phiR", 8, s);
    let phi_i = p.buffer_init("phiI", 8, s);
    let x = p.buffer_init("x", 8, v);
    let y = p.buffer_init("y", 8, v);
    let z = p.buffer_init("z", 8, v);
    let qr = p.buffer("Qr", 8, v);
    let qi = p.buffer("Qi", 8, v);
    p.target()
        .map_to(kx)
        .map_to(ky)
        .map_to(kz)
        .map_to(phi_r)
        .map_to(phi_i)
        .map_to(x)
        .map_to(y)
        .map_to(z)
        .map_from(qr)
        .map_from(qi)
        .reads(x)
        .reads(y)
        .reads(z)
        .reads(kx)
        .reads(ky)
        .reads(kz)
        .reads(phi_r)
        .reads(phi_i)
        .writes(qr)
        .writes(qi)
        .done();
    p.host_read(qr);
    p.host_read(qi);
    p.build()
}

fn m_pep(_preset: Preset) -> Program {
    let mut p = ProgramBuilder::new("pep");
    let counts = p.buffer("counts", 8, 10);
    let sums = p.buffer("sums", 8, 2);
    p.target()
        .map_from(counts)
        .map_from(sums)
        .writes(counts)
        .writes_sec(counts, 9, 1)
        .writes(sums)
        .done();
    p.host_read_sec(sums, 0, 1);
    p.build()
}

fn m_pcg(preset: Preset) -> Program {
    let (n, iters) = pcg::dims(preset);
    let n = n as u64;
    let mut pr = ProgramBuilder::new("pcg");
    let b = pr.buffer_init("b", 8, n);
    let x = pr.buffer_init("x", 8, n);
    let r = pr.buffer_init("r", 8, n);
    let p = pr.buffer_init("p", 8, n);
    let q = pr.buffer_init("q", 8, n);
    let scalars = pr.buffer("scalars", 8, 2);
    pr.data()
        .map_to(b)
        .map_tofrom(x)
        .map_to(r)
        .map_to(p)
        .map_to(q)
        .map_from(scalars)
        .scope(|pr| {
            // r = b; p = r; rho = r·r.
            pr.target()
                .map_to(b)
                .map_to(r)
                .map_to(p)
                .map_from(scalars)
                .reads(b)
                .writes(r)
                .writes(p)
                .reads(r)
                .writes_sec(scalars, 0, 1)
                .done();
            pr.update_from(scalars);
            pr.host_read_sec(scalars, 0, 1);
            for _ in 0..iters {
                // q = A p; pq = p·q.
                pr.target()
                    .map_to(p)
                    .map_to(q)
                    .map_from(scalars)
                    .reads(p)
                    .writes(q)
                    .reads(q)
                    .writes_sec(scalars, 0, 1)
                    .done();
                pr.update_from(scalars);
                pr.host_read_sec(scalars, 0, 1);
                // x += alpha p; r -= alpha q; rho' = r·r.
                pr.target()
                    .map_to(p)
                    .map_to(q)
                    .map_tofrom(x)
                    .map_to(r)
                    .map_from(scalars)
                    .reads(x)
                    .reads(p)
                    .writes(x)
                    .reads(r)
                    .reads(q)
                    .writes(r)
                    .writes_sec(scalars, 0, 1)
                    .done();
                pr.update_from(scalars);
                pr.host_read_sec(scalars, 0, 1);
                // p = r + beta p.
                pr.target().map_to(p).map_to(r).reads(r).reads(p).writes(p).done();
            }
        });
    pr.build()
}

/// The IR model for one workload name at a preset.
pub fn ir_model(name: &str, preset: Preset) -> Option<Program> {
    match name {
        "postencil" => Some(m_postencil(preset)),
        "polbm" => Some(m_polbm(preset)),
        "pomriq" => Some(m_pomriq(preset)),
        "pep" => Some(m_pep(preset)),
        "pcg" => Some(m_pcg(preset)),
        _ => None,
    }
}

/// IR models for all five workloads at a preset.
pub fn all_models(preset: Preset) -> Vec<Program> {
    crate::workloads()
        .iter()
        .map(|w| ir_model(w.name, preset).expect("model for every workload"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_a_model() {
        for w in crate::workloads() {
            let m = ir_model(w.name, Preset::Test).expect("model");
            assert_eq!(m.name, w.name);
            assert!(!m.buffers.is_empty());
        }
    }

    #[test]
    fn model_lengths_track_the_preset() {
        let small = ir_model("postencil", Preset::Small).unwrap();
        let test = ir_model("postencil", Preset::Test).unwrap();
        assert!(small.buffers[0].len > test.buffers[0].len);
    }
}
