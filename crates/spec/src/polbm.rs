//! 504.polbm: a lattice-Boltzmann-style kernel — D2Q5 stream + collide
//! on a square grid, double-buffered on the device.

use crate::Preset;
use arbalest_offload::prelude::*;

/// Grid edge and time steps per preset.
pub fn dims(preset: Preset) -> (usize, usize) {
    match preset {
        Preset::Test => (12, 3),
        Preset::Small => (48, 10),
        Preset::Medium => (96, 20),
    }
}

const Q: usize = 5;
/// D2Q5 velocities: rest, +x, -x, +y, -y.
const CX: [isize; Q] = [0, 1, -1, 0, 0];
const CY: [isize; Q] = [0, 0, 0, 1, -1];
const W: [f64; Q] = [1.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0];
const OMEGA: f64 = 1.2;

#[inline]
fn fidx(n: usize, x: usize, y: usize, q: usize) -> usize {
    q + Q * (x + n * y)
}

/// Run the workload; returns total mass (conserved up to round-off).
pub fn run(rt: &Runtime, preset: Preset) -> f64 {
    let (n, steps) = dims(preset);
    let cur = rt.alloc_with::<f64>("f_cur", n * n * Q, |i| {
        let q = i % Q;
        let cell = i / Q;
        W[q] * (1.0 + 0.01 * ((cell % 13) as f64))
    });
    let next = rt.alloc_with::<f64>("f_next", n * n * Q, |_| 0.0);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&cur), Map::to(&next)]);
    for step in 0..steps {
        let (src, dst) = if step % 2 == 0 { (cur, next) } else { (next, cur) };
        rt.target().map(Map::to(&src)).map(Map::to(&dst)).run(move |k| {
            k.par_for(0..n, move |k, y| {
                for x in 0..n {
                    // Gather the post-streaming populations (periodic).
                    let mut f = [0.0f64; Q];
                    let mut rho = 0.0;
                    let mut ux = 0.0;
                    let mut uy = 0.0;
                    for q in 0..Q {
                        let sx = (x as isize - CX[q]).rem_euclid(n as isize) as usize;
                        let sy = (y as isize - CY[q]).rem_euclid(n as isize) as usize;
                        let v = k.read(&src, fidx(n, sx, sy, q));
                        f[q] = v;
                        rho += v;
                        ux += v * CX[q] as f64;
                        uy += v * CY[q] as f64;
                    }
                    if rho > 0.0 {
                        ux /= rho;
                        uy /= rho;
                    }
                    // BGK collision towards a linearised equilibrium.
                    for q in 0..Q {
                        let cu = CX[q] as f64 * ux + CY[q] as f64 * uy;
                        let feq = W[q] * rho * (1.0 + 3.0 * cu);
                        k.write(&dst, fidx(n, x, y, q), f[q] + OMEGA * (feq - f[q]));
                    }
                }
            });
        });
    }
    let last = if steps % 2 == 0 { cur } else { next };
    rt.update_from(&last);
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&cur), Map::release(&next)]);
    let mut mass = 0.0;
    for i in 0..last.len() {
        mass += rt.read(&last, i);
    }
    mass
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_core::{Arbalest, ArbalestConfig};
    use std::sync::Arc;

    #[test]
    fn mass_is_conserved() {
        let rt = Runtime::new(Config::default().team_size(2));
        let (n, _) = dims(Preset::Test);
        let expected: f64 = (0..n * n * Q)
            .map(|i| W[i % Q] * (1.0 + 0.01 * (((i / Q) % 13) as f64)))
            .sum();
        let mass = run(&rt, Preset::Test);
        assert!((mass - expected).abs() < 1e-9 * expected, "{mass} vs {expected}");
    }

    #[test]
    fn clean_under_arbalest() {
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default().team_size(2), tool.clone());
        run(&rt, Preset::Test);
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }
}
