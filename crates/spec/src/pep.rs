//! 552.pep: embarrassingly parallel — per-index deterministic RNG
//! streams, a Box–Muller-style transform, and per-chunk tallies. Almost
//! all work happens in registers, so dynamic tools add comparatively
//! little (the paper's pep bars are among the flattest in Fig. 8).

use crate::Preset;
use arbalest_offload::prelude::*;

/// Sample count per preset.
pub fn samples(preset: Preset) -> usize {
    match preset {
        Preset::Test => 4_096,
        Preset::Small => 131_072,
        Preset::Medium => 524_288,
    }
}

const BINS: usize = 10;

/// splitmix64: a tiny, high-quality per-index generator.
#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Run the workload; returns the sample mean of the generated Gaussians'
/// squared magnitudes (≈ 2 for a standard 2-D Gaussian).
pub fn run(rt: &Runtime, preset: Preset) -> f64 {
    let n = samples(preset);
    let counts = rt.alloc::<i64>("counts", BINS);
    let sums = rt.alloc::<f64>("sums", 2);
    rt.target().map(Map::from(&counts)).map(Map::from(&sums)).run(move |k| {
        k.for_each(0..BINS, |k, b| k.write(&counts, b, 0));
        let (total, count_hits) = k.par_reduce(
            0..n,
            (0.0f64, 0i64),
            move |_k, i| {
                // Two uniforms from independent streams; polar-ish method.
                let u1 = unit(splitmix(i as u64 * 2 + 1)).max(1e-12);
                let u2 = unit(splitmix(i as u64 * 2 + 2));
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = std::f64::consts::TAU * u2;
                let (g1, g2) = (r * theta.cos(), r * theta.sin());
                let m2 = g1 * g1 + g2 * g2;
                let bin = (m2.sqrt().floor() as usize).min(BINS - 1);
                (m2, (bin >= BINS - 1) as i64)
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        // Tally the extreme deviates on the kernel task — the per-chunk
        // partials were combined race-free by the reduction.
        k.write(&counts, BINS - 1, count_hits);
        k.write(&sums, 0, total);
        k.write(&sums, 1, count_hits as f64);
    });
    rt.read(&sums, 0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_core::{Arbalest, ArbalestConfig};
    use std::sync::Arc;

    #[test]
    fn mean_square_magnitude_near_two() {
        let rt = Runtime::new(Config::default().team_size(2));
        let m = run(&rt, Preset::Test);
        assert!((m - 2.0).abs() < 0.2, "E[g1²+g2²] ≈ 2, got {m}");
    }

    #[test]
    fn stable_across_team_sizes() {
        // Partial sums combine in nondeterministic order, so only demand
        // agreement up to floating-point reassociation.
        let rt1 = Runtime::new(Config::default().team_size(1));
        let rt2 = Runtime::new(Config::default().team_size(4));
        let (a, b) = (run(&rt1, Preset::Test), run(&rt2, Preset::Test));
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn clean_under_arbalest() {
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default().team_size(2), tool.clone());
        run(&rt, Preset::Test);
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }
}
