//! 514.pomriq: the MRI-Q kernel — for every voxel, a dense trigonometric
//! inner product over the k-space samples. Compute-bound with a regular
//! access pattern, so tool overhead ratios are lower than on the
//! memory-bound kernels (visible in Fig. 8).

use crate::Preset;
use arbalest_offload::prelude::*;

/// (voxels, samples) per preset.
pub fn dims(preset: Preset) -> (usize, usize) {
    match preset {
        Preset::Test => (64, 16),
        Preset::Small => (768, 96),
        Preset::Medium => (2048, 256),
    }
}

/// Run the workload; returns the norm-ish checksum of Q.
pub fn run(rt: &Runtime, preset: Preset) -> f64 {
    let (v, s) = dims(preset);
    let kx = rt.alloc_with::<f64>("kx", s, |i| 0.1 * (i as f64) / s as f64);
    let ky = rt.alloc_with::<f64>("ky", s, |i| 0.2 * (i as f64) / s as f64);
    let kz = rt.alloc_with::<f64>("kz", s, |i| 0.3 * (i as f64) / s as f64);
    let phi_r = rt.alloc_with::<f64>("phiR", s, |i| ((i % 5) as f64) * 0.25);
    let phi_i = rt.alloc_with::<f64>("phiI", s, |i| ((i % 7) as f64) * 0.125);
    let x = rt.alloc_with::<f64>("x", v, |i| (i % 17) as f64);
    let y = rt.alloc_with::<f64>("y", v, |i| (i % 19) as f64);
    let z = rt.alloc_with::<f64>("z", v, |i| (i % 23) as f64);
    let qr = rt.alloc::<f64>("Qr", v);
    let qi = rt.alloc::<f64>("Qi", v);
    rt.target()
        .map(Map::to(&kx))
        .map(Map::to(&ky))
        .map(Map::to(&kz))
        .map(Map::to(&phi_r))
        .map(Map::to(&phi_i))
        .map(Map::to(&x))
        .map(Map::to(&y))
        .map(Map::to(&z))
        .map(Map::from(&qr))
        .map(Map::from(&qi))
        .run(move |k| {
            k.par_for(0..v, move |k, vi| {
                let (xv, yv, zv) = (k.read(&x, vi), k.read(&y, vi), k.read(&z, vi));
                let mut acc_r = 0.0;
                let mut acc_i = 0.0;
                for si in 0..s {
                    let arg = std::f64::consts::TAU
                        * (k.read(&kx, si) * xv + k.read(&ky, si) * yv + k.read(&kz, si) * zv);
                    let (sin, cos) = arg.sin_cos();
                    let (pr, pi) = (k.read(&phi_r, si), k.read(&phi_i, si));
                    acc_r += pr * cos - pi * sin;
                    acc_i += pi * cos + pr * sin;
                }
                k.write(&qr, vi, acc_r);
                k.write(&qi, vi, acc_i);
            });
        });
    let mut sum = 0.0;
    for i in 0..v {
        let (r, im) = (rt.read(&qr, i), rt.read(&qi, i));
        sum += r * r + im * im;
    }
    sum / v as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_core::{Arbalest, ArbalestConfig};
    use std::sync::Arc;

    #[test]
    fn checksum_positive_and_deterministic() {
        let rt1 = Runtime::new(Config::default().team_size(2));
        let rt2 = Runtime::new(Config::default().team_size(4));
        let a = run(&rt1, Preset::Test);
        let b = run(&rt2, Preset::Test);
        assert!(a > 0.0);
        assert_eq!(a, b, "independent of team size");
    }

    #[test]
    fn clean_under_arbalest() {
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default().team_size(2), tool.clone());
        run(&rt, Preset::Test);
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }
}
