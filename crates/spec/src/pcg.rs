//! 554.pcg: preconditioned conjugate gradient on a 1-D Poisson system
//! (tridiagonal, SPD), with per-iteration host↔device traffic for the
//! scalar reductions — the workload with the chattiest mapping pattern,
//! which is why the paper's pcg bars show large tool overheads.

use crate::Preset;
use arbalest_offload::prelude::*;

/// (unknowns, max iterations) per preset.
pub fn dims(preset: Preset) -> (usize, usize) {
    match preset {
        Preset::Test => (64, 64),
        Preset::Small => (4096, 24),
        Preset::Medium => (16384, 48),
    }
}

/// Apply the 1-D Poisson operator: q = A p with A = tridiag(-1, 2, -1).
fn apply_a(k: &KernelCtx, p: Buffer<f64>, q: Buffer<f64>, n: usize) {
    k.par_for(0..n, move |k, i| {
        let l = if i > 0 { k.read(&p, i - 1) } else { 0.0 };
        let c = k.read(&p, i);
        let r = if i + 1 < n { k.read(&p, i + 1) } else { 0.0 };
        k.write(&q, i, 2.0 * c - l - r);
    });
}

/// Run CG; returns the final squared residual norm (should be tiny
/// relative to the initial one).
pub fn run(rt: &Runtime, preset: Preset) -> f64 {
    let (n, iters) = dims(preset);
    let b = rt.alloc_with::<f64>("b", n, |i| 1.0 + ((i % 9) as f64) * 0.1);
    let x = rt.alloc_with::<f64>("x", n, |_| 0.0);
    let r = rt.alloc_with::<f64>("r", n, |_| 0.0);
    let p = rt.alloc_with::<f64>("p", n, |_| 0.0);
    let q = rt.alloc_with::<f64>("q", n, |_| 0.0);
    let scalars = rt.alloc::<f64>("scalars", 2);

    let mut rho = 0.0;
    rt.target_data()
        .map(Map::to(&b))
        .map(Map::tofrom(&x))
        .map(Map::to(&r))
        .map(Map::to(&p))
        .map(Map::to(&q))
        .map(Map::from(&scalars))
        .scope(|rt| {
            // r = b - A x (x = 0 → r = b); p = r; rho = r·r.
            rt.target().map(Map::to(&b)).map(Map::to(&r)).map(Map::to(&p)).map(Map::from(&scalars)).run(
                move |k| {
                    k.par_for(0..n, move |k, i| {
                        let v = k.read(&b, i);
                        k.write(&r, i, v);
                        k.write(&p, i, v);
                    });
                    let rr = k.par_reduce(0..n, 0.0, move |k, i| {
                        let v = k.read(&r, i);
                        v * v
                    }, |a, b| a + b);
                    k.write(&scalars, 0, rr);
                },
            );
            rt.update_from(&scalars);
            rho = rt.read(&scalars, 0);

            for _ in 0..iters {
                // q = A p; pq = p·q.
                rt.target().map(Map::to(&p)).map(Map::to(&q)).map(Map::from(&scalars)).run(move |k| {
                    apply_a(k, p, q, n);
                    let pq = k
                        .par_reduce(0..n, 0.0, move |k, i| k.read(&p, i) * k.read(&q, i), |a, b| a + b);
                    k.write(&scalars, 0, pq);
                });
                rt.update_from(&scalars);
                let pq = rt.read(&scalars, 0);
                let alpha = rho / pq.max(1e-300);

                // x += alpha p; r -= alpha q; rho' = r·r.
                rt.target()
                    .map(Map::to(&p))
                    .map(Map::to(&q))
                    .map(Map::tofrom(&x))
                    .map(Map::to(&r))
                    .map(Map::from(&scalars))
                    .run(move |k| {
                        k.par_for(0..n, move |k, i| {
                            let xv = k.read(&x, i) + alpha * k.read(&p, i);
                            k.write(&x, i, xv);
                            let rv = k.read(&r, i) - alpha * k.read(&q, i);
                            k.write(&r, i, rv);
                        });
                        let rr = k.par_reduce(0..n, 0.0, move |k, i| {
                            let v = k.read(&r, i);
                            v * v
                        }, |a, b| a + b);
                        k.write(&scalars, 0, rr);
                    });
                rt.update_from(&scalars);
                let rho_next = rt.read(&scalars, 0);
                let beta = rho_next / rho.max(1e-300);
                rho = rho_next;

                // p = r + beta p.
                rt.target().map(Map::to(&p)).map(Map::to(&r)).run(move |k| {
                    k.par_for(0..n, move |k, i| {
                        let v = k.read(&r, i) + beta * k.read(&p, i);
                        k.write(&p, i, v);
                    });
                });
            }
        });
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_core::{Arbalest, ArbalestConfig};
    use std::sync::Arc;

    #[test]
    fn residual_converges() {
        // CG converges in at most n steps in exact arithmetic; the Test
        // preset runs n iterations on n unknowns, so the residual must be
        // at round-off level (the intermediate r·r is not monotone — a
        // plain-Python reference reproduces the same trajectory).
        let rt = Runtime::new(Config::default().team_size(2));
        let (n, _) = dims(Preset::Test);
        let initial: f64 = (0..n).map(|i| {
            let v = 1.0 + ((i % 9) as f64) * 0.1;
            v * v
        }).sum();
        let final_rho = run(&rt, Preset::Test);
        assert!(final_rho.is_finite());
        assert!(final_rho < initial * 1e-12, "CG must converge: {final_rho} vs {initial}");
    }

    #[test]
    fn clean_under_arbalest() {
        let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
        let rt = Runtime::with_tool(Config::default().team_size(2), tool.clone());
        run(&rt, Preset::Test);
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }
}
