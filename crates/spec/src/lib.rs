//! # arbalest-spec
//!
//! SPEC-ACCEL-like workloads for the performance evaluation (§VI-E/F):
//! five kernels with the computational shape of the five OpenMP
//! benchmarks the paper measures, plus the buggy 503.postencil 1.2
//! pointer-swap variant of §VI-D.
//!
//! | Here        | SPEC ACCEL    | Shape |
//! |-------------|---------------|-------|
//! | `postencil` | 503.postencil | 3-D 7-point Jacobi stencil |
//! | `polbm`     | 504.polbm     | lattice-Boltzmann-style stream + collide |
//! | `pomriq`    | 514.pomriq    | MRI-Q: dense trigonometric inner product |
//! | `pep`       | 552.pep       | embarrassingly parallel RNG tallies |
//! | `pcg`       | 554.pcg       | conjugate-gradient iterations |
//!
//! Each workload runs against the offloading runtime (all memory accesses
//! tracked), returns a checksum, and self-verifies at the `Test` preset.

#![warn(missing_docs)]

pub mod ir_models;
pub mod pcg;
pub mod pep;
pub mod polbm;
pub mod pomriq;
pub mod postencil;

use arbalest_offload::prelude::*;

/// Problem size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Tiny: for unit tests (sub-millisecond native).
    Test,
    /// The Fig. 8 / Fig. 9 measurement size (tens of ms native).
    Small,
    /// Larger runs for scaling studies.
    Medium,
}

/// A runnable workload.
pub struct Workload {
    /// Short name.
    pub name: &'static str,
    /// SPEC ACCEL benchmark id it mirrors.
    pub spec_id: &'static str,
    /// Entry point; returns a checksum.
    pub run: fn(&Runtime, Preset) -> f64,
}

/// The five correct workloads, in the paper's order.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload { name: "postencil", spec_id: "503.postencil", run: postencil::run },
        Workload { name: "polbm", spec_id: "504.polbm", run: polbm::run },
        Workload { name: "pomriq", spec_id: "514.pomriq", run: pomriq::run },
        Workload { name: "pep", spec_id: "552.pep", run: pep::run },
        Workload { name: "pcg", spec_id: "554.pcg", run: pcg::run },
    ]
}

/// Look a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_workloads_match_spec_ids() {
        let w = workloads();
        assert_eq!(w.len(), 5);
        assert_eq!(w[0].spec_id, "503.postencil");
        assert_eq!(w[4].spec_id, "554.pcg");
    }

    #[test]
    fn all_run_and_produce_finite_checksums() {
        for w in workloads() {
            let rt = Runtime::new(Config::default().team_size(2));
            let sum = (w.run)(&rt, Preset::Test);
            assert!(sum.is_finite(), "{}", w.name);
        }
    }
}
