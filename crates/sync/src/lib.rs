//! Poison-tolerant synchronisation primitives with a `parking_lot`-style API.
//!
//! The workspace builds hermetically (no registry access), so every external
//! dependency is banned. This crate wraps `std::sync` primitives behind the
//! ergonomic `parking_lot` surface the rest of the workspace was written
//! against: `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s, and a panicking thread never poisons a lock for everyone else —
//! the inner value is recovered and handed to the next waiter. That recovery
//! policy matches the fault-tolerance posture of the runtime: a tool or kernel
//! body that panics must not wedge the whole process.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so that
/// [`Condvar::wait`] can take the guard out and put the re-acquired one back
/// without consuming the caller's binding (the `parking_lot` calling
/// convention).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Poison from a
    /// panicked holder is discarded.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// A condition variable paired with [`Mutex`], `parking_lot`-style: `wait`
/// borrows the guard mutably instead of consuming it.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`] with a timeout; returns `true` if the wait
    /// timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        res.timed_out()
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, discarding poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire exclusive write access, discarding poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A parking_lot-style lock hands the value back regardless.
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
