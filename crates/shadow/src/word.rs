//! Bit-packed shadow state encodings.
//!
//! The default layout is the paper's Table II, 64 bits per 8-byte
//! application granule:
//!
//! | Field              | Size    |
//! |--------------------|---------|
//! | IsOVValid          | 1 bit   |
//! | IsCVValid          | 1 bit   |
//! | IsOVInitialized    | 1 bit   |
//! | IsCVInitialized    | 1 bit   |
//! | TID (thread id)    | 12 bits |
//! | Scalar clock       | 42 bits |
//! | IsWrite            | 1 bit   |
//! | Access size        | 2 bits  |
//! | Address offset     | 3 bits  |
//!
//! The §IV-C multi-device extension widens validity/initialisation to one
//! bit per storage location — host plus up to seven accelerators — by
//! narrowing the scalar clock; state stays O(n+1) bits in a single word,
//! preserving the lock-free CAS update discipline.
//!
//! Both layouts decode to the same [`GranuleState`], which the VSM logic
//! in `arbalest-core` operates on.

/// Decoded per-granule shadow state, layout-independent.
///
/// `valid_mask`/`init_mask` bit 0 describes the OV (host storage); bit
/// `d` (1-based) describes the CV on accelerator `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GranuleState {
    /// Which storage locations hold the last write's value.
    pub valid_mask: u8,
    /// Which storage locations have ever been initialised.
    pub init_mask: u8,
    /// Thread-slot id of the last recorded access.
    pub tid: u16,
    /// Scalar clock of the last recorded access.
    pub clock: u64,
    /// Whether the last recorded access was a write.
    pub is_write: bool,
    /// Size of the last access in bytes (1, 2, 4 or 8).
    pub access_size: u8,
    /// Byte offset (0..7) of the last access within the granule.
    pub addr_offset: u8,
}

impl Default for GranuleState {
    /// The all-zero shadow word: nothing valid, nothing initialised —
    /// VSM's *invalid* starting state. (`access_size` defaults to 1, the
    /// size class encoded by zero bits.)
    fn default() -> Self {
        GranuleState {
            valid_mask: 0,
            init_mask: 0,
            tid: 0,
            clock: 0,
            is_write: false,
            access_size: 1,
            addr_offset: 0,
        }
    }
}

impl GranuleState {
    /// Bit index of the host (OV) in the masks.
    pub const HOST_BIT: u8 = 0;

    /// Mask bit for a storage location: 0 = OV, `d` = accelerator `d`'s CV.
    #[inline]
    pub fn bit(loc: u8) -> u8 {
        1 << loc
    }

    /// Whether the OV currently holds the valid value.
    #[inline]
    pub fn ov_valid(&self) -> bool {
        self.valid_mask & 1 != 0
    }

    /// Whether the CV on location `loc` holds the valid value.
    #[inline]
    pub fn valid(&self, loc: u8) -> bool {
        self.valid_mask & Self::bit(loc) != 0
    }

    /// Whether location `loc` was ever initialised.
    #[inline]
    pub fn initialised(&self, loc: u8) -> bool {
        self.init_mask & Self::bit(loc) != 0
    }
}

/// Size class encoding for the 2-bit access-size field.
#[inline]
fn size_class(size: u8) -> u64 {
    match size {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => 3, // 8
    }
}

#[inline]
fn class_size(class: u64) -> u8 {
    1 << class
}

/// Shadow word layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Exact Table II layout: one accelerator, 42-bit clock.
    TableII,
    /// §IV-C extension: 8-bit validity/init masks (host + 7 accelerators),
    /// 30-bit clock.
    MultiDevice,
}

impl Layout {
    /// Pick the layout for a device count (accelerators, excluding host).
    pub fn for_accelerators(n: u16) -> Layout {
        if n <= 1 {
            Layout::TableII
        } else {
            Layout::MultiDevice
        }
    }

    /// Maximum representable clock value before wrap-around.
    pub fn clock_max(self) -> u64 {
        match self {
            Layout::TableII => (1 << 42) - 1,
            Layout::MultiDevice => (1 << 30) - 1,
        }
    }

    /// Maximum representable thread-slot id.
    pub fn tid_max(self) -> u16 {
        (1 << 12) - 1
    }

    /// Encode a state into a 64-bit shadow word.
    pub fn encode(self, s: GranuleState) -> u64 {
        debug_assert!(s.tid <= self.tid_max());
        let clock = s.clock & self.clock_max();
        match self {
            Layout::TableII => {
                // bit0 IsOVValid | bit1 IsCVValid | bit2 IsOVInit |
                // bit3 IsCVInit | 4..16 TID | 16..58 clock |
                // 58 IsWrite | 59..61 size | 61..64 offset
                let mut w = 0u64;
                w |= (s.valid_mask as u64 & 0b01) | ((s.valid_mask as u64 >> 1) & 0b01) << 1;
                w |= ((s.init_mask as u64 & 0b01) << 2) | (((s.init_mask as u64 >> 1) & 0b01) << 3);
                w |= (s.tid as u64) << 4;
                w |= clock << 16;
                w |= (s.is_write as u64) << 58;
                w |= size_class(s.access_size) << 59;
                w |= (s.addr_offset as u64 & 0b111) << 61;
                w
            }
            Layout::MultiDevice => {
                // 0..8 valid mask | 8..16 init mask | 16..28 TID |
                // 28..58 clock | 58 IsWrite | 59..61 size | 61..64 offset
                let mut w = 0u64;
                w |= s.valid_mask as u64;
                w |= (s.init_mask as u64) << 8;
                w |= (s.tid as u64) << 16;
                w |= clock << 28;
                w |= (s.is_write as u64) << 58;
                w |= size_class(s.access_size) << 59;
                w |= (s.addr_offset as u64 & 0b111) << 61;
                w
            }
        }
    }

    /// Decode a 64-bit shadow word.
    pub fn decode(self, w: u64) -> GranuleState {
        match self {
            Layout::TableII => GranuleState {
                valid_mask: ((w & 0b01) | ((w >> 1) & 0b01) << 1) as u8,
                init_mask: (((w >> 2) & 0b01) | (((w >> 3) & 0b01) << 1)) as u8,
                tid: ((w >> 4) & 0xFFF) as u16,
                clock: (w >> 16) & self.clock_max(),
                is_write: (w >> 58) & 1 != 0,
                access_size: class_size((w >> 59) & 0b11),
                addr_offset: ((w >> 61) & 0b111) as u8,
            },
            Layout::MultiDevice => GranuleState {
                valid_mask: (w & 0xFF) as u8,
                init_mask: ((w >> 8) & 0xFF) as u8,
                tid: ((w >> 16) & 0xFFF) as u16,
                clock: (w >> 28) & self.clock_max(),
                is_write: (w >> 58) & 1 != 0,
                access_size: class_size((w >> 59) & 0b11),
                addr_offset: ((w >> 61) & 0b111) as u8,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GranuleState {
        GranuleState {
            valid_mask: 0b10,
            init_mask: 0b11,
            tid: 0x6AB,
            clock: 123_456_789,
            is_write: true,
            access_size: 4,
            addr_offset: 5,
        }
    }

    #[test]
    fn table_ii_roundtrip() {
        let l = Layout::TableII;
        assert_eq!(l.decode(l.encode(sample())), sample());
    }

    #[test]
    fn multi_device_roundtrip() {
        let l = Layout::MultiDevice;
        let mut s = sample();
        s.valid_mask = 0b1010_0101;
        s.init_mask = 0b1111_0001;
        assert_eq!(l.decode(l.encode(s)), s);
    }

    #[test]
    fn table_ii_field_positions_match_the_paper() {
        let l = Layout::TableII;
        // The all-zero word is the default (invalid) state.
        assert_eq!(l.encode(GranuleState::default()), 0);
        assert_eq!(l.decode(0), GranuleState::default());
        // IsOVValid is bit 0.
        let s = GranuleState { valid_mask: 0b01, ..Default::default() };
        assert_eq!(l.encode(s), 1);
        // IsCVValid is bit 1.
        let s = GranuleState { valid_mask: 0b10, ..Default::default() };
        assert_eq!(l.encode(s), 2);
        // IsOVInitialized is bit 2, IsCVInitialized bit 3.
        let s = GranuleState { init_mask: 0b01, ..Default::default() };
        assert_eq!(l.encode(s), 4);
        let s = GranuleState { init_mask: 0b10, ..Default::default() };
        assert_eq!(l.encode(s), 8);
        // TID occupies bits 4..16 (12 bits).
        let s = GranuleState { tid: 0xFFF, ..Default::default() };
        assert_eq!(l.encode(s), 0xFFF << 4);
        // Clock occupies 42 bits starting at 16.
        let s = GranuleState { clock: l.clock_max(), ..Default::default() };
        assert_eq!(l.encode(s) >> 16 & l.clock_max(), l.clock_max());
    }

    #[test]
    fn clock_wraps_at_capacity() {
        let l = Layout::TableII;
        let s = GranuleState { clock: l.clock_max() + 5, access_size: 1, ..Default::default() };
        assert_eq!(l.decode(l.encode(s)).clock, 4);
    }

    #[test]
    fn access_size_classes() {
        for size in [1u8, 2, 4, 8] {
            for l in [Layout::TableII, Layout::MultiDevice] {
                let s = GranuleState { access_size: size, ..Default::default() };
                assert_eq!(l.decode(l.encode(s)).access_size, size);
            }
        }
    }

    #[test]
    fn layout_choice() {
        assert_eq!(Layout::for_accelerators(0), Layout::TableII);
        assert_eq!(Layout::for_accelerators(1), Layout::TableII);
        assert_eq!(Layout::for_accelerators(2), Layout::MultiDevice);
        assert_eq!(Layout::for_accelerators(7), Layout::MultiDevice);
    }

    #[test]
    fn granule_state_mask_helpers() {
        let s = GranuleState { valid_mask: 0b011, init_mask: 0b100, ..Default::default() };
        assert!(s.ov_valid());
        assert!(s.valid(1));
        assert!(!s.valid(2));
        assert!(s.initialised(2));
        assert!(!s.initialised(0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;

    /// Deterministic xorshift64* generator (hermetic proptest replacement).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_state(rng: &mut Rng, layout: Layout) -> GranuleState {
        let mask_max = match layout {
            Layout::TableII => 0b11u64,
            Layout::MultiDevice => 0xFF,
        };
        GranuleState {
            valid_mask: rng.below(mask_max + 1) as u8,
            init_mask: rng.below(mask_max + 1) as u8,
            tid: rng.below(4096) as u16,
            clock: rng.below(layout.clock_max() + 1),
            is_write: rng.below(2) == 1,
            access_size: [1u8, 2, 4, 8][rng.below(4) as usize],
            addr_offset: rng.below(8) as u8,
        }
    }

    #[test]
    fn table_ii_roundtrips() {
        let l = Layout::TableII;
        let mut rng = Rng(0x1234_5678_9ABC_DEF1);
        for _ in 0..4096 {
            let s = random_state(&mut rng, l);
            assert_eq!(l.decode(l.encode(s)), s, "{s:?}");
        }
    }

    #[test]
    fn multi_roundtrips() {
        let l = Layout::MultiDevice;
        let mut rng = Rng(0x0BAD_CAFE_DEAD_BEEF);
        for _ in 0..4096 {
            let s = random_state(&mut rng, l);
            assert_eq!(l.decode(l.encode(s)), s, "{s:?}");
        }
    }

    #[test]
    fn encodings_are_injective_modulo_fields() {
        let l = Layout::MultiDevice;
        let mut rng = Rng(0x5EED_5EED_5EED_5EED);
        for _ in 0..4096 {
            let a = random_state(&mut rng, l);
            let b = random_state(&mut rng, l);
            if a != b {
                assert_ne!(l.encode(a), l.encode(b), "{a:?} vs {b:?}");
            }
        }
    }
}
