//! Direct-mapped shadow memory.
//!
//! For every aligned 8-byte granule of application memory, the shadow
//! holds `slots` 64-bit cells ("shadow states" in Archer's terminology —
//! Archer keeps four per granule; ARBALEST reserves bits inside them,
//! §V-B). Cells are `AtomicU64`, updated with compare-and-swap, so the
//! analysis is fully concurrent and lock-free on the hot path, as the
//! paper requires (§IV-C).
//!
//! Shadow pages are materialised on first touch; the page table mirrors
//! the direct address mapping of the LLVM sanitizer runtimes. Resident
//! shadow bytes are tracked for the Fig. 9 space measurement.

use arbalest_sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Log2 of the application bytes covered by one shadow page.
const APP_PAGE_SHIFT: u32 = 12;
/// Application bytes covered per shadow page.
const APP_PAGE_BYTES: u64 = 1 << APP_PAGE_SHIFT;
/// Granules per shadow page.
const GRANULES_PER_PAGE: usize = (APP_PAGE_BYTES / 8) as usize;

struct ShadowPage {
    cells: Box<[AtomicU64]>,
}

impl ShadowPage {
    fn new(slots: usize) -> ShadowPage {
        let cells: Vec<AtomicU64> =
            (0..GRANULES_PER_PAGE * slots).map(|_| AtomicU64::new(0)).collect();
        ShadowPage { cells: cells.into_boxed_slice() }
    }
}

/// Sparse direct-mapped shadow over the logical address space.
pub struct ShadowMemory {
    slots: usize,
    pages: RwLock<HashMap<u64, Arc<ShadowPage>>>,
    page_count: AtomicUsize,
}

impl ShadowMemory {
    /// Create a shadow with `slots` 64-bit cells per 8-byte granule.
    pub fn new(slots: usize) -> ShadowMemory {
        assert!(slots >= 1);
        ShadowMemory { slots, pages: RwLock::new(HashMap::new()), page_count: AtomicUsize::new(0) }
    }

    /// Cells per granule.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Resident shadow bytes (Fig. 9 accounting).
    pub fn resident_bytes(&self) -> u64 {
        (self.page_count.load(Ordering::Relaxed) * GRANULES_PER_PAGE * self.slots * 8) as u64
    }

    /// Drop every resident shadow page, returning the bytes freed.
    ///
    /// Evicted granules read back as the all-zero word, so callers that
    /// interpret shadow state must switch to a conservative ("May") mode
    /// after eviction rather than trusting the reset state. This is the
    /// memory-pressure escape hatch for long-lived analysis sessions.
    pub fn evict_all(&self) -> u64 {
        let mut pages = self.pages.write();
        let freed = (pages.len() * GRANULES_PER_PAGE * self.slots * 8) as u64;
        pages.clear();
        self.page_count.store(0, Ordering::Relaxed);
        freed
    }

    #[inline]
    fn page(&self, addr: u64) -> Arc<ShadowPage> {
        let idx = addr >> APP_PAGE_SHIFT;
        if let Some(p) = self.pages.read().get(&idx) {
            return p.clone();
        }
        let mut w = self.pages.write();
        w.entry(idx)
            .or_insert_with(|| {
                self.page_count.fetch_add(1, Ordering::Relaxed);
                Arc::new(ShadowPage::new(self.slots))
            })
            .clone()
    }

    #[inline]
    fn cell_index(&self, addr: u64, slot: usize) -> usize {
        debug_assert!(slot < self.slots);
        let granule = ((addr & (APP_PAGE_BYTES - 1)) >> 3) as usize;
        granule * self.slots + slot
    }

    /// Relaxed load of a shadow cell. Untouched shadow reads as zero.
    #[inline]
    pub fn load(&self, addr: u64, slot: usize) -> u64 {
        let idx = addr >> APP_PAGE_SHIFT;
        match self.pages.read().get(&idx) {
            Some(p) => p.cells[self.cell_index(addr, slot)].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Unconditional store to a shadow cell.
    #[inline]
    pub fn store(&self, addr: u64, slot: usize, value: u64) {
        let page = self.page(addr);
        page.cells[self.cell_index(addr, slot)].store(value, Ordering::Relaxed);
    }

    /// Lock-free read-modify-write of a shadow cell via CAS, the paper's
    /// update discipline. `f` maps the current value to the desired value;
    /// returns the (old, new) pair that finally committed.
    #[inline]
    pub fn update(&self, addr: u64, slot: usize, f: impl FnMut(u64) -> u64) -> (u64, u64) {
        let (old, new, _) = self.update_counted(addr, slot, f);
        (old, new)
    }

    /// [`update`](Self::update) that also reports how many CAS attempts
    /// failed before the write committed (0 on the uncontended fast
    /// path). The detector's observability layer counts these retries.
    #[inline]
    pub fn update_counted(
        &self,
        addr: u64,
        slot: usize,
        mut f: impl FnMut(u64) -> u64,
    ) -> (u64, u64, u32) {
        let page = self.page(addr);
        let cell = &page.cells[self.cell_index(addr, slot)];
        let mut cur = cell.load(Ordering::Relaxed);
        let mut retries = 0u32;
        loop {
            let next = f(cur);
            match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return (cur, next, retries),
                Err(c) => {
                    cur = c;
                    retries = retries.saturating_add(1);
                }
            }
        }
    }

    /// Apply `f` to every granule cell in `[addr, addr + len)` (8-byte
    /// aligned range), slot fixed.
    pub fn update_range(&self, addr: u64, len: u64, slot: usize, mut f: impl FnMut(u64) -> u64) {
        let mut a = addr & !7;
        let end = addr + len;
        while a < end {
            self.update(a, slot, &mut f);
            a += 8;
        }
    }

    /// Copy slot contents for a range from another shadow (used for
    /// definedness propagation across memcpy-style transfers).
    pub fn copy_range_from(&self, src: &ShadowMemory, src_addr: u64, dst_addr: u64, len: u64, slot: usize) {
        let granules = len.div_ceil(8);
        for g in 0..granules {
            let v = src.load(src_addr + g * 8, slot);
            self.store(dst_addr + g * 8, slot, v);
        }
    }

    /// Dump every resident page as a `(page_index, cells)` pair, sorted by
    /// page index so two dumps of identical shadow state are identical
    /// byte-for-byte regardless of hash-map iteration order. Cell layout
    /// inside a page is `granule * slots + slot`, the same order
    /// [`restore_pages`](Self::restore_pages) expects back.
    pub fn snapshot_pages(&self) -> Vec<(u64, Vec<u64>)> {
        let pages = self.pages.read();
        let mut out: Vec<(u64, Vec<u64>)> = pages
            .iter()
            .map(|(&idx, p)| (idx, p.cells.iter().map(|c| c.load(Ordering::Relaxed)).collect()))
            .collect();
        out.sort_unstable_by_key(|&(idx, _)| idx);
        out
    }

    /// Replace all resident state with pages dumped by
    /// [`snapshot_pages`](Self::snapshot_pages). Returns `false` (leaving
    /// the shadow evicted-to-zero) if any page's cell count does not match
    /// this shadow's `slots` layout — a snapshot from a different
    /// configuration must never be installed as wrong state.
    pub fn restore_pages(&self, dump: &[(u64, Vec<u64>)]) -> bool {
        let expect = GRANULES_PER_PAGE * self.slots;
        let mut pages = self.pages.write();
        pages.clear();
        for (idx, cells) in dump {
            if cells.len() != expect {
                pages.clear();
                self.page_count.store(0, Ordering::Relaxed);
                return false;
            }
            let page = ShadowPage::new(self.slots);
            for (cell, &v) in page.cells.iter().zip(cells.iter()) {
                cell.store(v, Ordering::Relaxed);
            }
            pages.insert(*idx, Arc::new(page));
        }
        self.page_count.store(pages.len(), Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_zero_and_store_load() {
        let s = ShadowMemory::new(1);
        assert_eq!(s.load(0x1000, 0), 0);
        assert_eq!(s.resident_bytes(), 0);
        s.store(0x1000, 0, 77);
        assert_eq!(s.load(0x1000, 0), 77);
        assert!(s.resident_bytes() > 0);
    }

    #[test]
    fn slots_are_independent() {
        let s = ShadowMemory::new(3);
        s.store(0x2000, 0, 1);
        s.store(0x2000, 1, 2);
        s.store(0x2000, 2, 3);
        assert_eq!(s.load(0x2000, 0), 1);
        assert_eq!(s.load(0x2000, 1), 2);
        assert_eq!(s.load(0x2000, 2), 3);
    }

    #[test]
    fn granules_are_independent_within_a_page() {
        let s = ShadowMemory::new(2);
        s.store(0x3000, 0, 10);
        s.store(0x3008, 0, 20);
        s.store(0x3000, 1, 11);
        assert_eq!(s.load(0x3000, 0), 10);
        assert_eq!(s.load(0x3008, 0), 20);
        assert_eq!(s.load(0x3008, 1), 0);
    }

    #[test]
    fn sub_granule_addresses_share_a_cell() {
        let s = ShadowMemory::new(1);
        s.store(0x4003, 0, 5);
        assert_eq!(s.load(0x4000, 0), 5);
        assert_eq!(s.load(0x4007, 0), 5);
        assert_eq!(s.load(0x4008, 0), 0);
    }

    #[test]
    fn update_is_atomic_under_contention() {
        let s = Arc::new(ShadowMemory::new(1));
        let mut handles = vec![];
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.update(0x5000, 0, |v| v + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.load(0x5000, 0), 80_000);
    }

    #[test]
    fn update_range_touches_every_granule() {
        let s = ShadowMemory::new(1);
        s.update_range(0x6000, 64, 0, |v| v + 1);
        for g in 0..8 {
            assert_eq!(s.load(0x6000 + g * 8, 0), 1);
        }
        assert_eq!(s.load(0x6040, 0), 0);
    }

    #[test]
    fn update_range_partial_tail_rounds_to_granule() {
        let s = ShadowMemory::new(1);
        s.update_range(0x7000, 12, 0, |_| 9);
        assert_eq!(s.load(0x7000, 0), 9);
        assert_eq!(s.load(0x7008, 0), 9);
        assert_eq!(s.load(0x7010, 0), 0);
    }

    #[test]
    fn copy_range_from_propagates() {
        let a = ShadowMemory::new(1);
        let b = ShadowMemory::new(1);
        a.store(0x100, 0, 42);
        a.store(0x108, 0, 43);
        b.copy_range_from(&a, 0x100, 0x900, 16, 0);
        assert_eq!(b.load(0x900, 0), 42);
        assert_eq!(b.load(0x908, 0), 43);
    }

    #[test]
    fn snapshot_restore_round_trips_and_is_sorted() {
        let s = ShadowMemory::new(2);
        s.store(0x9000, 0, 7);
        s.store(0x9000, 1, 8);
        s.store(0x1000, 0, 9);
        let dump = s.snapshot_pages();
        assert_eq!(dump.len(), 2);
        assert!(dump[0].0 < dump[1].0, "pages must be sorted by index");
        let t = ShadowMemory::new(2);
        assert!(t.restore_pages(&dump));
        assert_eq!(t.load(0x9000, 0), 7);
        assert_eq!(t.load(0x9000, 1), 8);
        assert_eq!(t.load(0x1000, 0), 9);
        assert_eq!(t.resident_bytes(), s.resident_bytes());
        assert_eq!(t.snapshot_pages(), dump);
    }

    #[test]
    fn restore_rejects_mismatched_layout() {
        let s = ShadowMemory::new(1);
        s.store(0x1000, 0, 1);
        let dump = s.snapshot_pages();
        let t = ShadowMemory::new(2);
        assert!(!t.restore_pages(&dump));
        assert_eq!(t.resident_bytes(), 0, "failed restore must leave zero state");
    }

    #[test]
    fn resident_accounting_scales_with_slots() {
        let s1 = ShadowMemory::new(1);
        let s4 = ShadowMemory::new(4);
        s1.store(0x1000, 0, 1);
        s4.store(0x1000, 0, 1);
        assert_eq!(s4.resident_bytes(), 4 * s1.resident_bytes());
    }
}
