//! # arbalest-shadow
//!
//! Shadow memory infrastructure for the ARBALEST reproduction — the
//! analogue of the LLVM sanitizer infrastructure the paper builds on:
//!
//! * [`word`] — bit-packed shadow state encodings: the exact Table II
//!   single-accelerator layout, and the §IV-C multi-device extension.
//! * [`map`] — direct-mapped, page-granular shadow memory over the
//!   simulated logical address space, with lock-free `AtomicU64` cells.
//! * [`interval`] — an augmented AVL interval tree used to map
//!   corresponding-variable (CV) address ranges back to their original
//!   variables, and to detect mapping-related buffer overflows (§IV-D).

#![warn(missing_docs)]

pub mod interval;
pub mod map;
pub mod word;

pub use interval::IntervalTree;
pub use map::ShadowMemory;
pub use word::{GranuleState, Layout};

/// # Example: one shadow word per granule, Table II layout
///
/// ```
/// use arbalest_shadow::{GranuleState, Layout, ShadowMemory};
///
/// let shadow = ShadowMemory::new(1);
/// let layout = Layout::TableII;
///
/// // CAS a state transition into the granule at 0x1000.
/// shadow.update(0x1000, 0, |w| {
///     let mut s = layout.decode(w);
///     s.valid_mask |= 0b01; // OV becomes valid
///     s.init_mask |= 0b01;
///     layout.encode(s)
/// });
/// let s = layout.decode(shadow.load(0x1000, 0));
/// assert!(s.ov_valid());
/// ```
///
/// # Example: interval tree CV lookup
///
/// ```
/// use arbalest_shadow::IntervalTree;
///
/// let mut tree = IntervalTree::new();
/// tree.insert(0x2000, 0x2100, "buffer_a");
/// tree.insert(0x2100, 0x2200, "buffer_b");
/// assert_eq!(tree.stab(0x20ff).unwrap().2, &"buffer_a");
/// assert_eq!(tree.stab(0x2100).unwrap().2, &"buffer_b");
/// assert!(tree.stab(0x2200).is_none());
/// ```
#[doc(hidden)]
pub struct _DoctestAnchor;
