//! Augmented AVL interval tree.
//!
//! ARBALEST keeps one interval per mapped variable / array section,
//! mapping the CV's device address range back to the owning buffer and OV
//! address (§IV-C). Lookups are O(log m) where m is the number of mapped
//! sections; the detector amortises them with a last-lookup cache.
//!
//! Intervals are half-open `[lo, hi)` keyed by `lo`. The tree supports
//! overlapping intervals (needed transiently when stale dead entries
//! coexist with fresh ones), a stabbing query, and an overlap query —
//! the overflow extension (§IV-D) asks "which interval owns this
//! address?" and compares it with the interval the program *meant*.

/// An augmented AVL interval tree with `u64` endpoints.
pub struct IntervalTree<V> {
    root: Option<Box<Node<V>>>,
    len: usize,
}

struct Node<V> {
    lo: u64,
    hi: u64,
    value: V,
    /// Max `hi` in this subtree (the interval-tree augmentation).
    max: u64,
    height: i32,
    left: Option<Box<Node<V>>>,
    right: Option<Box<Node<V>>>,
}

impl<V> Node<V> {
    fn new(lo: u64, hi: u64, value: V) -> Box<Node<V>> {
        Box::new(Node { lo, hi, value, max: hi, height: 1, left: None, right: None })
    }
}

fn height<V>(n: &Option<Box<Node<V>>>) -> i32 {
    n.as_ref().map_or(0, |n| n.height)
}

fn subtree_max<V>(n: &Option<Box<Node<V>>>) -> u64 {
    n.as_ref().map_or(0, |n| n.max)
}

fn fixup<V>(n: &mut Box<Node<V>>) {
    n.height = 1 + height(&n.left).max(height(&n.right));
    n.max = n.hi.max(subtree_max(&n.left)).max(subtree_max(&n.right));
}

fn balance_factor<V>(n: &Node<V>) -> i32 {
    height(&n.left) - height(&n.right)
}

fn rotate_right<V>(mut n: Box<Node<V>>) -> Box<Node<V>> {
    let mut l = n.left.take().expect("rotate_right needs left child");
    n.left = l.right.take();
    fixup(&mut n);
    l.right = Some(n);
    fixup(&mut l);
    l
}

fn rotate_left<V>(mut n: Box<Node<V>>) -> Box<Node<V>> {
    let mut r = n.right.take().expect("rotate_left needs right child");
    n.right = r.left.take();
    fixup(&mut n);
    r.left = Some(n);
    fixup(&mut r);
    r
}

fn rebalance<V>(mut n: Box<Node<V>>) -> Box<Node<V>> {
    fixup(&mut n);
    let bf = balance_factor(&n);
    if bf > 1 {
        if balance_factor(n.left.as_ref().expect("bf>1 implies left")) < 0 {
            n.left = Some(rotate_left(n.left.take().expect("checked")));
        }
        rotate_right(n)
    } else if bf < -1 {
        if balance_factor(n.right.as_ref().expect("bf<-1 implies right")) > 0 {
            n.right = Some(rotate_right(n.right.take().expect("checked")));
        }
        rotate_left(n)
    } else {
        n
    }
}

fn insert_node<V>(slot: Option<Box<Node<V>>>, new: Box<Node<V>>) -> Box<Node<V>> {
    let Some(mut n) = slot else { return new };
    if new.lo < n.lo {
        n.left = Some(insert_node(n.left.take(), new));
    } else if new.lo > n.lo {
        n.right = Some(insert_node(n.right.take(), new));
    } else {
        // `insert` removes an equal key first, so this cannot happen.
        unreachable!("duplicate key reached insert_node");
    }
    rebalance(n)
}

fn take_min<V>(mut n: Box<Node<V>>) -> (Box<Node<V>>, Option<Box<Node<V>>>) {
    if n.left.is_none() {
        let right = n.right.take();
        fixup(&mut n);
        return (n, right);
    }
    let (min, rest) = take_min(n.left.take().expect("checked"));
    n.left = rest;
    (min, Some(rebalance(n)))
}

fn remove_node<V>(slot: Option<Box<Node<V>>>, lo: u64, removed: &mut Option<(u64, u64, V)>) -> Option<Box<Node<V>>> {
    let mut n = slot?;
    if lo < n.lo {
        n.left = remove_node(n.left.take(), lo, removed);
        Some(rebalance(n))
    } else if lo > n.lo {
        n.right = remove_node(n.right.take(), lo, removed);
        Some(rebalance(n))
    } else {
        let left = n.left.take();
        let right = n.right.take();
        *removed = Some((n.lo, n.hi, n.value));
        match (left, right) {
            (None, r) => r,
            (l, None) => l,
            (Some(l), Some(r)) => {
                let (mut min, rest) = take_min(r);
                min.left = Some(l);
                min.right = rest;
                Some(rebalance(min))
            }
        }
    }
}

impl<V> IntervalTree<V> {
    /// An empty tree.
    pub fn new() -> Self {
        IntervalTree { root: None, len: 0 }
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate resident bytes (Fig. 9 accounting).
    pub fn approx_bytes(&self) -> u64 {
        (self.len * std::mem::size_of::<Node<V>>()) as u64
    }

    /// Insert `[lo, hi)` → `value`. Returns the previous value if an
    /// interval with the same `lo` existed (its `hi` is overwritten).
    ///
    /// An empty interval (`lo >= hi`) covers no address and is ignored —
    /// zero-length buffers can legally be mapped, and the tree must not
    /// bring the analysis down over them.
    pub fn insert(&mut self, lo: u64, hi: u64, value: V) -> Option<V> {
        if lo >= hi {
            return None;
        }
        // Handle same-key replacement without the recursive placeholder
        // path: remove first, then insert.
        let old = self.remove(lo).map(|(_, _, v)| v);
        let root = self.root.take();
        self.root = Some(insert_node(root, Node::new(lo, hi, value)));
        self.len += 1;
        old
    }

    /// Remove the interval starting exactly at `lo`.
    pub fn remove(&mut self, lo: u64) -> Option<(u64, u64, V)> {
        let mut removed = None;
        let root = self.root.take();
        self.root = remove_node(root, lo, &mut removed);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Stabbing query: the interval containing `point`, if any. When
    /// several contain it, an arbitrary one is returned (the detector
    /// never keeps live overlapping intervals).
    pub fn stab(&self, point: u64) -> Option<(u64, u64, &V)> {
        self.stab_with_depth(point).map(|(lo, hi, v, _)| (lo, hi, v))
    }

    /// [`stab`](Self::stab) that also reports how many tree nodes the
    /// search visited — the detector's observability layer histograms
    /// this as the effective lookup depth.
    pub fn stab_with_depth(&self, point: u64) -> Option<(u64, u64, &V, u32)> {
        let mut visited = 0u32;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            visited += 1;
            if point < subtree_max(&n.left) && n.left.is_some() {
                // Left subtree may contain it; classic interval search
                // walks left when the left max exceeds the point.
                if let Some((lo, hi, v)) = stab_in(n.left.as_deref(), point, &mut visited) {
                    return Some((lo, hi, v, visited));
                }
            }
            if n.lo <= point && point < n.hi {
                return Some((n.lo, n.hi, &n.value, visited));
            }
            cur = if point < n.lo { n.left.as_deref() } else { n.right.as_deref() };
        }
        None
    }

    /// All intervals overlapping `[lo, hi)`, in ascending `lo` order.
    pub fn overlaps(&self, lo: u64, hi: u64) -> Vec<(u64, u64, &V)> {
        let mut out = Vec::new();
        collect_overlaps(self.root.as_deref(), lo, hi, &mut out);
        out
    }

    /// All intervals in ascending `lo` order.
    pub fn iter_ordered(&self) -> Vec<(u64, u64, &V)> {
        let mut out = Vec::new();
        in_order(self.root.as_deref(), &mut out);
        out
    }

    /// Validate AVL + augmentation invariants (test support).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn check<V>(n: Option<&Node<V>>, min: Option<u64>, max_key: Option<u64>) -> (i32, u64) {
            let Some(n) = n else { return (0, 0) };
            if let Some(m) = min {
                assert!(n.lo > m, "BST order violated");
            }
            if let Some(m) = max_key {
                assert!(n.lo < m, "BST order violated");
            }
            let (lh, lm) = check(n.left.as_deref(), min, Some(n.lo));
            let (rh, rm) = check(n.right.as_deref(), Some(n.lo), max_key);
            assert!((lh - rh).abs() <= 1, "AVL balance violated");
            let h = 1 + lh.max(rh);
            assert_eq!(n.height, h, "height cache wrong");
            let m = n.hi.max(lm).max(rm);
            assert_eq!(n.max, m, "max augmentation wrong");
            (h, m)
        }
        check(self.root.as_deref(), None, None);
    }
}

impl<V> Default for IntervalTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

fn stab_in<'a, V>(
    n: Option<&'a Node<V>>,
    point: u64,
    visited: &mut u32,
) -> Option<(u64, u64, &'a V)> {
    let n = n?;
    *visited += 1;
    if n.max <= point {
        return None;
    }
    if let Some(hit) = stab_in(n.left.as_deref(), point, visited) {
        return Some(hit);
    }
    if n.lo <= point && point < n.hi {
        return Some((n.lo, n.hi, &n.value));
    }
    if point >= n.lo {
        stab_in(n.right.as_deref(), point, visited)
    } else {
        None
    }
}

fn collect_overlaps<'a, V>(n: Option<&'a Node<V>>, lo: u64, hi: u64, out: &mut Vec<(u64, u64, &'a V)>) {
    let Some(n) = n else { return };
    if n.max <= lo {
        return;
    }
    collect_overlaps(n.left.as_deref(), lo, hi, out);
    if n.lo < hi && lo < n.hi {
        out.push((n.lo, n.hi, &n.value));
    }
    if n.lo < hi {
        collect_overlaps(n.right.as_deref(), lo, hi, out);
    }
}

fn in_order<'a, V>(n: Option<&'a Node<V>>, out: &mut Vec<(u64, u64, &'a V)>) {
    let Some(n) = n else { return };
    in_order(n.left.as_deref(), out);
    out.push((n.lo, n.hi, &n.value));
    in_order(n.right.as_deref(), out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_stab_remove() {
        let mut t = IntervalTree::new();
        t.insert(10, 20, "a");
        t.insert(30, 40, "b");
        t.insert(20, 30, "c");
        t.check_invariants();
        assert_eq!(t.len(), 3);
        assert_eq!(t.stab(15).unwrap().2, &"a");
        assert_eq!(t.stab(20).unwrap().2, &"c");
        assert_eq!(t.stab(39).unwrap().2, &"b");
        assert!(t.stab(40).is_none());
        assert!(t.stab(9).is_none());
        let (lo, hi, v) = t.remove(20).unwrap();
        assert_eq!((lo, hi, v), (20, 30, "c"));
        assert!(t.stab(25).is_none());
        t.check_invariants();
    }

    #[test]
    fn empty_interval_is_ignored() {
        let mut t = IntervalTree::new();
        assert_eq!(t.insert(10, 10, "zero"), None);
        assert_eq!(t.insert(20, 10, "inverted"), None);
        assert!(t.is_empty());
        assert!(t.stab(10).is_none());
        t.check_invariants();
    }

    #[test]
    fn same_key_insert_replaces() {
        let mut t = IntervalTree::new();
        t.insert(10, 20, 1);
        let old = t.insert(10, 25, 2);
        assert_eq!(old, Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.stab(22).unwrap().2, &2);
    }

    #[test]
    fn overlaps_query() {
        let mut t = IntervalTree::new();
        for i in 0..10u64 {
            t.insert(i * 100, i * 100 + 50, i);
        }
        let hits = t.overlaps(120, 420);
        let keys: Vec<u64> = hits.iter().map(|(lo, _, _)| *lo).collect();
        assert_eq!(keys, vec![100, 200, 300, 400]);
        assert!(t.overlaps(50, 100).is_empty());
    }

    #[test]
    fn large_sequential_and_random_removal_keeps_invariants() {
        let mut t = IntervalTree::new();
        for i in 0..500u64 {
            t.insert(i * 10, i * 10 + 10, i);
        }
        t.check_invariants();
        assert!(height_of(&t) <= 12, "AVL height must be logarithmic");
        for i in (0..500u64).step_by(2) {
            assert!(t.remove(i * 10).is_some());
        }
        t.check_invariants();
        assert_eq!(t.len(), 250);
        assert!(t.stab(15).is_some());
        assert!(t.stab(5).is_none());
    }

    fn height_of<V>(t: &IntervalTree<V>) -> i32 {
        t.root.as_ref().map_or(0, |n| n.height)
    }

    #[test]
    fn iter_ordered_is_sorted() {
        let mut t = IntervalTree::new();
        for lo in [50u64, 10, 90, 30, 70] {
            t.insert(lo, lo + 5, ());
        }
        let keys: Vec<u64> = t.iter_ordered().iter().map(|(lo, _, _)| *lo).collect();
        assert_eq!(keys, vec![10, 30, 50, 70, 90]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use std::collections::HashMap;

    /// Model: a flat map of lo -> hi (+ value).
    #[derive(Default)]
    struct Model {
        m: HashMap<u64, (u64, u32)>,
    }

    impl Model {
        fn stab(&self, p: u64) -> Option<u32> {
            self.m
                .iter()
                .find(|(lo, (hi, _))| **lo <= p && p < *hi)
                .map(|(_, (_, v))| *v)
        }
    }

    /// Deterministic xorshift64* generator (hermetic proptest replacement).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn behaves_like_model() {
        for seed in 1..=64u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15));
            let mut tree = IntervalTree::new();
            let mut model = Model::default();
            for step in 0..200 {
                let op = rng.below(3) as u8;
                let lo = rng.below(64);
                let len = 1 + rng.below(15);
                let v = rng.next() as u32;
                // Keep model intervals non-overlapping like the detector's:
                // each key owns [lo*100, lo*100+len).
                let lo_scaled = lo * 100;
                let hi = lo_scaled + len;
                match op {
                    0 => {
                        tree.insert(lo_scaled, hi, v);
                        model.m.insert(lo_scaled, (hi, v));
                    }
                    1 => {
                        let a = tree.remove(lo_scaled).map(|(_, _, v)| v);
                        let b = model.m.remove(&lo_scaled).map(|(_, v)| v);
                        assert_eq!(a, b, "remove mismatch (seed {seed} step {step})");
                    }
                    _ => {
                        let p = lo_scaled + len / 2;
                        let a = tree.stab(p).map(|(_, _, v)| *v);
                        let b = model.stab(p);
                        assert_eq!(a, b, "stab mismatch (seed {seed} step {step})");
                    }
                }
                tree.check_invariants();
                assert_eq!(tree.len(), model.m.len(), "len mismatch (seed {seed} step {step})");
            }
        }
    }
}
