//! Affine symbolic bounds: `Expr = c0 + Σ ci·param_i (+ ci·iv)`.
//!
//! Anywhere the IR used to carry a concrete `u64` section bound or buffer
//! length it can now carry an [`Expr`] over declared program parameters
//! ([`ParamDecl`]) and the innermost enclosing loop's induction variable
//! (`iv`). The static checker reasons about these with interval
//! arithmetic ([`Expr::range`]) and three-valued comparisons
//! ([`Expr::le`] and friends return `None` when the parameter ranges
//! cannot decide), and `Program::concretize` evaluates them to plain
//! numbers once a [`crate::Binding`] fixes every parameter.
//!
//! The representation is canonical: terms are sorted by variable and
//! zero coefficients are dropped, so structural equality (`==`, `Hash`)
//! is semantic equality.

use std::fmt;

/// Index of a program parameter declaration within its `Program`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub u32);

/// A declared program parameter with its assumed range. `max == None`
/// means unbounded above. Analysis results hold for every binding inside
/// the range; `concretize` rejects bindings outside it.
#[derive(Debug, Clone)]
pub struct ParamDecl {
    /// Parameter name (for diagnostics).
    pub name: String,
    /// Smallest admissible value.
    pub min: u64,
    /// Largest admissible value, if bounded.
    pub max: Option<u64>,
}

/// A symbolic variable: a declared parameter or the innermost enclosing
/// loop's induction variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Var {
    /// A program parameter.
    Param(ParamId),
    /// The innermost enclosing `Node::Loop`'s induction variable,
    /// ranging over `0 .. trip`.
    Iv,
}

/// An affine expression `c0 + Σ ci·var_i` with `i128` coefficients
/// (wide enough that no `u64` bound arithmetic can overflow). Canonical:
/// terms sorted by variable, no zero coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Expr {
    c0: i128,
    terms: Vec<(Var, i128)>,
}

impl Expr {
    /// The constant zero.
    pub const ZERO: Expr = Expr { c0: 0, terms: Vec::new() };

    /// A constant expression.
    pub fn lit(v: u64) -> Expr {
        Expr { c0: v as i128, terms: Vec::new() }
    }

    /// A (possibly negative) constant expression.
    pub fn lit_i(v: i128) -> Expr {
        Expr { c0: v, terms: Vec::new() }
    }

    /// The parameter `p` with coefficient 1.
    pub fn param(p: ParamId) -> Expr {
        Expr { c0: 0, terms: vec![(Var::Param(p), 1)] }
    }

    /// The innermost loop induction variable with coefficient 1.
    pub fn iv() -> Expr {
        Expr { c0: 0, terms: vec![(Var::Iv, 1)] }
    }

    fn canon(mut self) -> Expr {
        self.terms.sort_by_key(|&(v, _)| v);
        self.terms.dedup_by(|(v2, c2), (v1, c1)| {
            if v1 == v2 {
                *c1 = c1.saturating_add(*c2);
                true
            } else {
                false
            }
        });
        self.terms.retain(|&(_, c)| c != 0);
        self
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Expr) -> Expr {
        let mut e = self.clone();
        e.c0 = e.c0.saturating_add(other.c0);
        e.terms.extend(other.terms.iter().copied());
        e.canon()
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Expr) -> Expr {
        self.add(&other.scale(-1))
    }

    /// `self * k`.
    #[must_use]
    pub fn scale(&self, k: i128) -> Expr {
        Expr {
            c0: self.c0.saturating_mul(k),
            terms: self.terms.iter().map(|&(v, c)| (v, c.saturating_mul(k))).collect(),
        }
        .canon()
    }

    /// `self + k`.
    #[must_use]
    pub fn add_const(&self, k: i128) -> Expr {
        let mut e = self.clone();
        e.c0 = e.c0.saturating_add(k);
        e
    }

    /// The constant value, if the expression has no variable terms.
    pub fn as_const(&self) -> Option<i128> {
        self.terms.is_empty().then_some(self.c0)
    }

    /// Whether the expression mentions the loop induction variable.
    pub fn uses_iv(&self) -> bool {
        self.terms.iter().any(|&(v, _)| v == Var::Iv)
    }

    /// Every parameter the expression mentions.
    pub fn params_used(&self) -> impl Iterator<Item = ParamId> + '_ {
        self.terms.iter().filter_map(|&(v, _)| match v {
            Var::Param(p) => Some(p),
            Var::Iv => None,
        })
    }

    /// Evaluate under a parameter valuation and an innermost-loop iv.
    /// `None` when a mentioned parameter is unbound or `iv` is needed
    /// but absent.
    pub fn eval(&self, param: &dyn Fn(ParamId) -> Option<u64>, iv: Option<u64>) -> Option<i128> {
        let mut acc = self.c0;
        for &(v, c) in &self.terms {
            let val = match v {
                Var::Param(p) => param(p)?,
                Var::Iv => iv?,
            };
            acc = acc.saturating_add(c.saturating_mul(val as i128));
        }
        Some(acc)
    }

    /// Interval bounds of the expression over the declared parameter
    /// ranges, with the iv ranging over `iv_range` (defaults to
    /// `[0, ∞)` when the caller has no trip information). `None` means
    /// unbounded on that side.
    pub fn range(
        &self,
        params: &[ParamDecl],
        iv_range: Option<(u64, Option<u64>)>,
    ) -> (Option<i128>, Option<i128>) {
        let mut lo = Some(self.c0);
        let mut hi = Some(self.c0);
        for &(v, c) in &self.terms {
            let (vmin, vmax) = match v {
                Var::Param(p) => match params.get(p.0 as usize) {
                    Some(d) => (d.min, d.max),
                    None => (0, None),
                },
                Var::Iv => iv_range.unwrap_or((0, None)),
            };
            // An adversarial declaration can invert its range (max < min).
            // No binding satisfies it, so any sound answer is fine — drop
            // the upper bound rather than reasoning from a lie.
            let vmax = vmax.filter(|&m| m >= vmin);
            let at_min = c.saturating_mul(vmin as i128);
            let at_max = vmax.map(|m| c.saturating_mul(m as i128));
            let (term_lo, term_hi) = if c >= 0 { (Some(at_min), at_max) } else { (at_max, Some(at_min)) };
            lo = match (lo, term_lo) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            };
            hi = match (hi, term_hi) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            };
        }
        (lo, hi)
    }

    /// Three-valued `self <= other` over the parameter ranges.
    pub fn le(&self, other: &Expr, params: &[ParamDecl]) -> Option<bool> {
        if self == other {
            return Some(true);
        }
        let diff = other.sub(self);
        let (lo, hi) = diff.range(params, None);
        if matches!(lo, Some(l) if l >= 0) {
            Some(true)
        } else if matches!(hi, Some(h) if h < 0) {
            Some(false)
        } else {
            None
        }
    }

    /// Three-valued `self < other` over the parameter ranges.
    pub fn lt(&self, other: &Expr, params: &[ParamDecl]) -> Option<bool> {
        if self == other {
            return Some(false);
        }
        let diff = other.sub(self);
        let (lo, hi) = diff.range(params, None);
        if matches!(lo, Some(l) if l >= 1) {
            Some(true)
        } else if matches!(hi, Some(h) if h <= 0) {
            Some(false)
        } else {
            None
        }
    }

    /// Three-valued `self == other` over the parameter ranges.
    pub fn eq_sym(&self, other: &Expr, params: &[ParamDecl]) -> Option<bool> {
        if self == other {
            return Some(true);
        }
        match (self.le(other, params), other.le(self, params)) {
            (Some(true), Some(true)) => Some(true),
            (Some(false), _) | (_, Some(false)) => Some(false),
            _ => None,
        }
    }
}

impl From<u64> for Expr {
    fn from(v: u64) -> Expr {
        Expr::lit(v)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.c0);
        }
        let mut first = true;
        for &(v, c) in &self.terms {
            if !first {
                write!(f, " {} ", if c < 0 { "-" } else { "+" })?;
            } else if c < 0 {
                write!(f, "-")?;
            }
            first = false;
            let mag = c.unsigned_abs();
            if mag != 1 {
                write!(f, "{mag}*")?;
            }
            match v {
                Var::Param(p) => write!(f, "p{}", p.0)?,
                Var::Iv => write!(f, "iv")?,
            }
        }
        if self.c0 != 0 {
            write!(f, " {} {}", if self.c0 < 0 { "-" } else { "+" }, self.c0.unsigned_abs())?;
        }
        Ok(())
    }
}

/// Loop trip count: the body executes `trip` times with the iv running
/// `0 .. trip`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trip(pub Expr);

impl Trip {
    /// A concrete trip count.
    pub fn lit(n: u64) -> Trip {
        Trip(Expr::lit(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Vec<ParamDecl> {
        vec![
            ParamDecl { name: "n".into(), min: 1, max: Some(100) },
            ParamDecl { name: "m".into(), min: 0, max: None },
        ]
    }

    #[test]
    fn canonical_form_merges_terms() {
        let n = ParamId(0);
        let e = Expr::param(n).add(&Expr::param(n)).add_const(3);
        let f = Expr::param(n).scale(2).add_const(3);
        assert_eq!(e, f);
        let zero = Expr::param(n).sub(&Expr::param(n));
        assert_eq!(zero.as_const(), Some(0));
    }

    #[test]
    fn eval_and_range() {
        let ps = params();
        let n = ParamId(0);
        let m = ParamId(1);
        let e = Expr::param(n).scale(4).add(&Expr::param(m)).add_const(2);
        let val = e.eval(&|p| Some(if p == n { 10 } else { 7 }), None);
        assert_eq!(val, Some(49));
        assert_eq!(e.range(&ps, None), (Some(6), None));
        let bounded = Expr::param(n).scale(4).add_const(2);
        assert_eq!(bounded.range(&ps, None), (Some(6), Some(402)));
        let negated = Expr::param(n).scale(-1);
        assert_eq!(negated.range(&ps, None), (Some(-100), Some(-1)));
    }

    #[test]
    fn three_valued_comparisons() {
        let ps = params();
        let n = Expr::param(ParamId(0)); // 1..=100
        let m = Expr::param(ParamId(1)); // 0..
        assert_eq!(Expr::lit(0).le(&n, &ps), Some(true));
        assert_eq!(Expr::lit(1).le(&n, &ps), Some(true));
        assert_eq!(Expr::lit(101).le(&n, &ps), Some(false));
        assert_eq!(Expr::lit(50).le(&n, &ps), None);
        assert_eq!(n.lt(&n.add_const(1), &ps), Some(true));
        assert_eq!(n.eq_sym(&n, &ps), Some(true));
        assert_eq!(n.eq_sym(&m, &ps), None);
        assert_eq!(n.lt(&Expr::lit(0), &ps), Some(false));
    }

    #[test]
    fn saturating_arithmetic_cannot_wrap() {
        let ps = params();
        let n = ParamId(0);
        // Scaling a near-max constant saturates instead of wrapping.
        let huge = Expr::lit_i(i128::MAX - 1).scale(3);
        assert_eq!(huge.as_const(), Some(i128::MAX));
        assert_eq!(huge.add_const(1).as_const(), Some(i128::MAX));
        let tiny = Expr::lit_i(i128::MIN + 1).scale(5);
        assert_eq!(tiny.as_const(), Some(i128::MIN));
        // Interval evaluation with a huge coefficient over a huge range
        // saturates on both sides and stays ordered (lo <= hi).
        let e = Expr::param(n).scale(i128::MAX).add_const(i128::MAX);
        let (lo, hi) = e.range(&ps, None);
        assert_eq!(hi, Some(i128::MAX));
        assert!(lo.unwrap() <= hi.unwrap());
        // Merging terms saturates too.
        let merged = e.add(&Expr::param(n).scale(i128::MAX));
        let (_, hi2) = merged.range(&ps, None);
        assert_eq!(hi2, Some(i128::MAX));
        // eval saturates with large bound values.
        let v = e.eval(&|_| Some(u64::MAX), None);
        assert_eq!(v, Some(i128::MAX));
    }

    #[test]
    fn empty_and_inverted_param_ranges_stay_sound() {
        // A point range (min == max) evaluates exactly.
        let point = vec![ParamDecl { name: "k".into(), min: 7, max: Some(7) }];
        let k = Expr::param(ParamId(0));
        assert_eq!(k.range(&point, None), (Some(7), Some(7)));
        assert_eq!(k.le(&Expr::lit(7), &point), Some(true));
        assert_eq!(k.lt(&Expr::lit(7), &point), Some(false));
        assert_eq!(k.eq_sym(&Expr::lit(7), &point), Some(true));
        // An inverted declaration (max < min: satisfied by no binding)
        // must not produce an inverted interval; the upper bound is
        // dropped instead.
        let inverted = vec![ParamDecl { name: "k".into(), min: 10, max: Some(2) }];
        let (lo, hi) = k.range(&inverted, None);
        assert_eq!(lo, Some(10));
        assert_eq!(hi, None);
        let (nlo, nhi) = k.scale(-1).range(&inverted, None);
        assert_eq!(nlo, None);
        assert_eq!(nhi, Some(-10));
        // Same guard for an inverted iv range.
        assert_eq!(Expr::iv().range(&inverted, Some((5, Some(1)))), (Some(5), None));
        // An undeclared parameter is treated as [0, ∞), never a panic.
        let dangling = Expr::param(ParamId(9));
        assert_eq!(dangling.range(&point, None), (Some(0), None));
    }

    #[test]
    fn three_valued_comparisons_at_extremes() {
        // Unbounded-above parameter: only one-sided answers are decided.
        let ps = vec![ParamDecl { name: "m".into(), min: 0, max: None }];
        let m = Expr::param(ParamId(0));
        assert_eq!(m.le(&m.add_const(-1), &ps), Some(false));
        assert_eq!(m.lt(&m, &ps), Some(false));
        assert_eq!(m.le(&Expr::lit(5), &ps), None);
        assert_eq!(Expr::lit(0).le(&m, &ps), Some(true));
        assert_eq!(m.eq_sym(&Expr::lit(5), &ps), None);
        // Saturated differences still order correctly: MAX vs MIN.
        let hi = Expr::lit_i(i128::MAX);
        let lo = Expr::lit_i(i128::MIN);
        assert_eq!(lo.le(&hi, &[]), Some(true));
        assert_eq!(hi.le(&lo, &[]), Some(false));
        assert_eq!(hi.lt(&hi, &[]), Some(false));
        assert_eq!(hi.eq_sym(&lo, &[]), Some(false));
        // A difference that saturates to MAX on both sides must not be
        // misread as equality.
        let a = Expr::param(ParamId(0)).scale(i128::MAX);
        assert_eq!(Expr::lit(0).le(&a, &ps), Some(true));
        assert_eq!(a.le(&Expr::lit(0), &ps), None);
    }

    #[test]
    fn iv_ranges_from_zero() {
        let ps = params();
        let e = Expr::iv();
        assert!(e.uses_iv());
        assert_eq!(e.range(&ps, None), (Some(0), None));
        assert_eq!(e.range(&ps, Some((0, Some(7)))), (Some(0), Some(7)));
        assert_eq!(e.eval(&|_| None, Some(3)), Some(3));
        assert_eq!(e.eval(&|_| None, None), None);
    }
}
