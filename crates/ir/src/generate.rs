//! Seeded generator of random well-formed offload programs.
//!
//! The generator drives `arbalest fuzz-lint`: every seed yields one
//! deterministic `(Program, Binding)` pair that the static checker
//! analyses and the [`crate::interp`] module executes, and the two
//! verdicts are compared. The programs are *well-formed but not
//! necessarily correct* — oversized sections, `alloc`/`from` maps whose
//! device views are read uninitialised, stale host reads and redundant
//! remaps are all in-distribution, because those are precisely the bug
//! classes the detectors must agree on.
//!
//! Two structural guarantees keep the comparison deterministic:
//!
//! * every `nowait` target carries a `depend(out)` clause on a single
//!   shared dependence object, so concurrent tasks form a totally
//!   ordered chain (no scheduling-dependent reports), and
//! * a `taskwait` precedes every host access and the program end.
//!
//! Mapping is balanced inside loops and branch arms (no `enter data`
//! there), so the abstract present table converges in one pass.

use crate::rng::SplitMix64;
use crate::{Binding, BufId, Expr, ParamId, Program, ProgramBuilder, Sect, Trip};
use arbalest_offload::mapping::MapType;

/// Everything `fuzz-lint` needs for one case.
pub struct GeneratedCase {
    /// The (possibly symbolic) program.
    pub program: Program,
    /// A binding that concretizes it.
    pub binding: Binding,
}

struct Gen {
    r: SplitMix64,
    bufs: Vec<(BufId, u64, u64)>, // (id, declared len, elem size)
    param: Option<(ParamId, u64)>, // (id, bound value)
    persistent: Vec<BufId>,
    pending: bool,
    dep_buf: BufId,
}

/// Generate the program for `seed`. Deterministic: equal seeds yield
/// structurally equal programs and bindings.
pub fn generate(seed: u64) -> GeneratedCase {
    let mut r = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xF022_D155);
    let mut p = ProgramBuilder::new(&format!("fuzz-{seed:05}"));

    // Parameters: a third of the programs are symbolic.
    let param = if r.chance(1, 3) {
        let id = p.param("n", 1, Some(6));
        Some((id, r.range(1, 6)))
    } else {
        None
    };

    // 1–3 buffers.
    let nbufs = r.range(1, 3);
    let mut bufs = Vec::new();
    for i in 0..nbufs {
        let name = format!("b{i}");
        // Element sizes that divide the 8-byte shadow granule, so that
        // granule-aligned element sections stay byte-aligned transfers.
        let elem = [4u64, 8][r.below(2) as usize];
        let len = r.range(4, 16);
        let id = match (param, r.below(4)) {
            (Some((pid, _)), 0) => {
                // parameter-sized: len = 4*n + c
                let e = Expr::param(pid).scale(4).add_const(r.below(4) as i128);
                if r.chance(1, 2) {
                    p.buffer_init_sym(&name, elem, e)
                } else {
                    p.buffer_sym(&name, elem, e)
                }
            }
            _ => match r.below(4) {
                0 | 1 => p.buffer_init(&name, elem, len),
                2 => p.buffer(&name, elem, len),
                _ => p.buffer_init_may(&name, elem, len),
            },
        };
        bufs.push((id, len, elem));
    }

    let dep_buf = bufs[0].0;
    let mut g = Gen { r, bufs, param, persistent: Vec::new(), pending: false, dep_buf };

    let items = g.r.range(2, 5);
    for _ in 0..items {
        g.item(&mut p, 0);
    }
    // Drain pendings, then observe results from the host.
    g.sync(&mut p);
    for _ in 0..g.r.range(1, 2) {
        g.host_access(&mut p);
    }
    p.taskwait();

    let mut binding = Binding::new().with_choices(seed ^ 0xC01F_11B5);
    if let Some((pid, v)) = g.param {
        binding = binding.set(pid, v);
    }
    GeneratedCase { program: p.try_build().expect("generator invariant"), binding }
}

impl Gen {
    fn pick_buf(&mut self) -> (BufId, u64, u64) {
        self.bufs[self.r.below(self.bufs.len() as u64) as usize]
    }

    fn sync(&mut self, p: &mut ProgramBuilder) {
        if self.pending {
            p.taskwait();
            self.pending = false;
        }
    }

    /// A random section over a buffer of length `len` with `elem`-byte
    /// elements: mostly full, sometimes a strict sub-section,
    /// occasionally oversized (the wrong-array-section bug class).
    /// Section bounds stay 8-byte-granule-aligned so lowered transfers
    /// respect the runtime's shadow-granule alignment contract.
    fn section(&mut self, len: u64, elem: u64, allow_oversized: bool) -> Sect {
        let ge = 8 / elem; // elements per shadow granule
        match self.r.below(6) {
            0 if len / 2 >= ge => {
                let cells = len / ge; // whole granules inside the extent
                let start = self.r.below(cells / 2 + 1).min(cells - 1) * ge;
                let slen = self.r.range(1, cells - start / ge) * ge;
                Sect::Elems { start, len: slen }
            }
            1 if allow_oversized => {
                let total = len.div_ceil(ge) * ge + self.r.range(1, 2) * ge;
                Sect::Elems { start: 0, len: total }
            }
            _ => Sect::Full,
        }
    }

    fn item(&mut self, p: &mut ProgramBuilder, depth: u32) {
        match self.r.below(12) {
            0..=3 => self.target(p),
            4 | 5 => self.data_region(p),
            6 => {
                if depth == 0 {
                    self.enter(p);
                } else {
                    self.target(p);
                }
            }
            7 => {
                if depth == 0 {
                    self.exit(p);
                } else {
                    self.target(p);
                }
            }
            8 => self.update(p),
            9 => {
                if depth == 0 {
                    self.loop_(p);
                } else {
                    self.target(p);
                }
            }
            10 => {
                if depth < 2 {
                    self.branch(p, depth);
                } else {
                    self.target(p);
                }
            }
            _ => {
                self.sync(p);
                self.host_access(p);
            }
        }
    }

    fn map_type(&mut self) -> MapType {
        match self.r.below(8) {
            0..=2 => MapType::ToFrom,
            3 | 4 => MapType::To,
            5 | 6 => MapType::From,
            _ => MapType::Alloc,
        }
    }

    fn target(&mut self, p: &mut ProgramBuilder) {
        let n_access = self.r.range(1, 2);
        let mut chosen = Vec::new();
        for _ in 0..n_access {
            let b = self.pick_buf();
            if !chosen.contains(&b) {
                chosen.push(b);
            }
        }
        let nowait = self.r.chance(1, 5);
        let mut t = p.target();
        for &(b, len, elem) in &chosen {
            if self.persistent.contains(&b) {
                if self.r.chance(1, 2) {
                    t = t.map_to(b); // redundant remap: rc++ only
                }
            } else {
                let mt = self.map_type();
                match self.section(len, elem, true) {
                    Sect::Full => {
                        t = match mt {
                            MapType::To => t.map_to(b),
                            MapType::From => t.map_from(b),
                            MapType::ToFrom => t.map_tofrom(b),
                            _ => t.map_alloc(b),
                        }
                    }
                    Sect::Elems { start, len } => {
                        t = match mt {
                            MapType::To => t.map_to_sec(b, start, len),
                            MapType::From => t.map_from_sec(b, start, len),
                            MapType::ToFrom => t.map_tofrom_sec(b, start, len),
                            _ => t.map_alloc_sec(b, start, len),
                        }
                    }
                    Sect::Sym { .. } => unreachable!(),
                }
            }
        }
        if nowait {
            // Total order over all nowait tasks: one shared out-dependence.
            t = t.nowait().depend_write(self.dep_buf);
            self.pending = true;
        } else {
            // Synchronous targets join the chain too — their entry
            // transfers must not race with in-flight nowait tasks, or
            // the dynamic run becomes scheduling-dependent.
            t = t.depend_write(self.dep_buf);
            self.pending = false;
        }
        let n_ops = self.r.range(1, 3);
        for _ in 0..n_ops {
            let (b, len, elem) = chosen[self.r.below(chosen.len() as u64) as usize];
            let is_write = self.r.chance(1, 2);
            let may = self.r.chance(1, 6);
            let sect = self.section(len, elem, false);
            t = match (sect, is_write, may) {
                (Sect::Full, true, false) => t.writes(b),
                (Sect::Full, true, true) => t.may_writes(b),
                (Sect::Full, false, false) => t.reads(b),
                (Sect::Full, false, true) => t.may_reads(b),
                (Sect::Elems { start, len }, true, _) => t.writes_sec(b, start, len),
                (Sect::Elems { start, len }, false, _) => t.reads_sec(b, start, len),
                (Sect::Sym { .. }, ..) => unreachable!(),
            };
        }
        t.done();
    }

    fn data_region(&mut self, p: &mut ProgramBuilder) {
        let (b, len, _) = self.pick_buf();
        let mapped_here = !self.persistent.contains(&b);
        let mut d = p.data();
        if mapped_here {
            d = match self.map_type() {
                MapType::To => d.map_to(b),
                MapType::From => d.map_from(b),
                MapType::ToFrom => d.map_tofrom(b),
                _ => d.map_alloc(b),
            };
        } else {
            d = d.map_to(b);
        }
        let _ = len;
        let inner = self.r.range(1, 2);
        // The region body: targets over the region-mapped buffer. Inner
        // nowait tasks are joined before the region's exit maps run —
        // unmapping under a live kernel is a scheduling-dependent race.
        d.scope(|p| {
            for _ in 0..inner {
                self.target(p);
            }
            self.sync(p);
        });
    }

    fn enter(&mut self, p: &mut ProgramBuilder) {
        let (b, _, _) = self.pick_buf();
        if self.persistent.contains(&b) {
            return;
        }
        self.sync(p);
        let mt = if self.r.chance(2, 3) { MapType::To } else { MapType::Alloc };
        p.enter_data(vec![crate::MapClause { buf: b, map_type: mt, sect: Sect::Full }]);
        self.persistent.push(b);
    }

    fn exit(&mut self, p: &mut ProgramBuilder) {
        let Some(&b) = self.persistent.last() else { return };
        self.sync(p);
        let mt = if self.r.chance(1, 2) { MapType::From } else { MapType::Release };
        p.exit_data(vec![crate::MapClause { buf: b, map_type: mt, sect: Sect::Full }]);
        self.persistent.pop();
    }

    fn update(&mut self, p: &mut ProgramBuilder) {
        let Some(&b) = self.persistent.first() else { return };
        self.sync(p);
        if self.r.chance(1, 2) {
            p.update_to(b);
        } else {
            p.update_from(b);
        }
    }

    fn loop_(&mut self, p: &mut ProgramBuilder) {
        let trip = match self.param {
            Some((pid, _)) if self.r.chance(1, 2) => Trip(Expr::param(pid)),
            _ => Trip::lit(self.r.range(2, 3)),
        };
        let body = self.r.range(1, 2);
        p.loop_(trip, |p| {
            for _ in 0..body {
                // Loop bodies stay map-balanced: plain targets only.
                self.target(p);
            }
        });
    }

    fn branch(&mut self, p: &mut ProgramBuilder, depth: u32) {
        let may_taken = self.r.chance(1, 2);
        let then_n = self.r.range(1, 2);
        let else_n = self.r.below(2);
        // Branching on pending nowaits would make the taskwait placement
        // path-dependent; sync first so each arm tracks only its own.
        self.sync(p);
        let (mut then_pending, mut else_pending) = (false, false);
        // `if_` invokes both closures synchronously, one after the other,
        // before returning; `self` is not touched in between, so the raw
        // pointer is only dereferenced while the borrow is unique.
        let this: *mut Gen = self;
        p.if_(
            may_taken,
            |p| {
                let g = unsafe { &mut *this };
                for _ in 0..then_n {
                    g.item(p, depth + 1);
                }
                then_pending = std::mem::replace(&mut g.pending, false);
            },
            |p| {
                let g = unsafe { &mut *this };
                for _ in 0..else_n {
                    g.item(p, depth + 1);
                }
                else_pending = std::mem::replace(&mut g.pending, false);
            },
        );
        // Either arm may leave tasks in flight on its path.
        self.pending = then_pending || else_pending;
    }

    fn host_access(&mut self, p: &mut ProgramBuilder) {
        let (b, len, elem) = self.pick_buf();
        let write = self.r.chance(1, 3);
        match (self.section(len, elem, false), write) {
            (Sect::Elems { start, len }, true) => p.host_write_sec(b, start, len),
            (Sect::Elems { start, len }, false) => p.host_read_sec(b, start, len),
            (_, true) => p.host_write(b),
            (_, false) => p.host_read(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_well_formed() {
        for seed in 0..64 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(format!("{:?}", a.program), format!("{:?}", b.program), "seed {seed}");
            // the binding concretizes the program
            let conc = a.program.concretize(&a.binding).expect("binding fits");
            assert!(conc.is_concrete(), "seed {seed}");
        }
    }

    #[test]
    fn some_programs_are_symbolic() {
        let symbolic = (0..64).filter(|&s| !generate(s).program.params.is_empty()).count();
        assert!(symbolic > 4, "expected symbolic programs in the mix, got {symbolic}");
    }
}
